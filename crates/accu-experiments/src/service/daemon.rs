//! The crash-only ACCU service daemon.
//!
//! A [`Daemon`] binds a loopback TCP listener, accepts
//! [`Request`](super::protocol::Request) frames, and executes submitted
//! jobs through the hardened runner. There is no shutdown path to get
//! right because *crash is the shutdown path*: every state transition
//! is a durable registry write, execution is fenced by per-job leases,
//! and a restarted daemon (or a second daemon on the same registry)
//! simply adopts whatever non-terminal jobs have no live lease —
//! resuming their checkpoints instead of recomputing.
//!
//! Concretely, per job:
//!
//! 1. a worker dequeues the id and must win the lease (fresh acquire or
//!    stale-lease takeover) before touching it — at most one executor
//!    per epoch, across any number of daemons;
//! 2. a heartbeat thread renews the lease at TTL/4; a failed renewal
//!    means the job was fenced away and the worker discards its work;
//! 3. the run resumes the job's checkpoint (recovering from torn tails,
//!    which are reported in the status record) and streams progress to
//!    `progress.jsonl` for `watch` clients;
//! 4. results publish only after a final epoch re-check, so a zombie
//!    that lost its lease mid-run can never overwrite its successor.
//!
//! Chaos hooks: the configured [`ChaosPlan`] is attached to the
//! checkpoint (site `"checkpoint"`, including the `kill-after` abort),
//! to registry writes (site `"registry"`), to response frames (site
//! `"socket"` — clients see torn frames and must retry), and to the
//! runner's worker faults. A second kill channel,
//! [`DaemonConfig::kill_after_registry`], aborts the process after N
//! durable registry writes — crashing *between* job-level state
//! transitions rather than inside the run.

use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use accu_core::ChaosPlan;
use accu_telemetry::obs::{BindError, Observer};
use accu_telemetry::{install_panic_dump, Corr, FlightRecorder, Journal, Recorder, Severity};

use crate::chaosfs::{ChaosFile, ChaosSite};
use crate::checkpoint::Checkpoint;
use crate::runner::{run_policy_with, RunOptions, RunnerError, SupervisorConfig};
use crate::service::protocol::{
    read_frame, write_frame, DaemonHealth, JobRow, Request, Response, ServiceSummary,
};
use crate::service::registry::{JobState, JobStatus, Registry, RegistryError, SubmitOutcome};

/// Idle time after which a connection handler gives up waiting for the
/// next request frame.
const CONN_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Poll interval for watch streams and queue waits.
const POLL: Duration = Duration::from_millis(20);

/// Capacity of the always-on flight-recorder ring: enough journal tail
/// to reconstruct several job lifecycles, small enough to be free.
const FLIGHT_CAPACITY: usize = 256;

/// Metric names emitted by the service daemon.
///
/// The `service.*` families are the original job-lifecycle counters;
/// the `serve.*` families are the daemon-operational set added for the
/// metrics endpoint (rendered as `accu_serve_*` by the Prometheus
/// encoder).
pub mod service_metrics {
    /// Counter: submissions accepted (all outcomes).
    pub const SUBMISSIONS: &str = "service.submissions";
    /// Counter: submissions rejected by admission control.
    pub const OVERLOADED: &str = "service.overloaded";
    /// Counter: orphaned jobs adopted by the sweep.
    pub const ADOPTED: &str = "service.adopted";
    /// Counter: jobs finished successfully.
    pub const JOBS_DONE: &str = "service.jobs_done";
    /// Counter: jobs that ended in failure.
    pub const JOBS_FAILED: &str = "service.jobs_failed";
    /// Gauge: jobs waiting in the in-process queue.
    pub const JOBS_QUEUED: &str = "service.jobs_queued";
    /// Gauge: jobs currently executing in this daemon.
    pub const JOBS_RUNNING: &str = "service.jobs_running";
    /// Gauge: queue depth (`accu_serve_queue_depth`).
    pub const QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Gauge: jobs executing in this daemon (`accu_serve_inflight`).
    pub const INFLIGHT: &str = "serve.inflight";
    /// Gauge: oldest running-job lease heartbeat age in milliseconds,
    /// updated every sweep (`accu_serve_lease_heartbeat_age_ms`).
    pub const LEASE_HEARTBEAT_AGE_MS: &str = "serve.lease_heartbeat_age_ms";
    /// Counter: submissions bounced by admission control
    /// (`accu_serve_admission_rejections`).
    pub const ADMISSION_REJECTIONS: &str = "serve.admission_rejections";
    /// Counter: orphans adopted into this daemon's queue by the sweep
    /// (`accu_serve_adoptions`).
    pub const ADOPTIONS: &str = "serve.adoptions";
    /// Counter: stale leases taken over by epoch fencing
    /// (`accu_serve_takeovers`).
    pub const TAKEOVERS: &str = "serve.takeovers";
    /// Counter: executions fenced off before publication
    /// (`accu_serve_fences`).
    pub const FENCES: &str = "serve.fences";
    /// Histogram-name prefix for per-verb wire latency: the verb name
    /// plus `_ns` is appended (`accu_serve_rpc_submit_ns`, ...).
    pub const RPC_NS_PREFIX: &str = "serve.rpc.";
}

/// Configuration for one daemon instance.
#[derive(Debug)]
pub struct DaemonConfig {
    /// Listen address (`127.0.0.1:0` for an ephemeral port).
    pub listen: String,
    /// Registry root directory.
    pub registry: PathBuf,
    /// Worker threads executing jobs. `0` is legal: accept-only mode
    /// (jobs queue but never run here — another daemon on the same
    /// registry adopts them), used by deterministic overload tests.
    pub max_jobs: usize,
    /// Queue capacity; a submission that would enqueue beyond this is
    /// answered with [`Response::Overloaded`].
    pub queue_cap: usize,
    /// Lease TTL: heartbeat silence after which other daemons may adopt
    /// this daemon's jobs.
    pub lease_ttl: Duration,
    /// Chaos schedule injected into checkpoint appends, registry
    /// writes, response frames, and runner worker faults.
    pub chaos: ChaosPlan,
    /// Abort the process after this many durable registry writes
    /// (chaos testing only).
    pub kill_after_registry: Option<u64>,
    /// Supervisor knobs for the in-job runner.
    pub supervisor: SupervisorConfig,
    /// Metrics sink.
    pub recorder: Recorder,
}

impl DaemonConfig {
    /// Defaults for a registry at `root`: ephemeral loopback port, two
    /// workers, queue of 16, 5-second lease TTL, no chaos.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            listen: "127.0.0.1:0".to_string(),
            registry: root.into(),
            max_jobs: 2,
            queue_cap: 16,
            lease_ttl: Duration::from_secs(5),
            chaos: ChaosPlan::none(),
            kill_after_registry: None,
            supervisor: SupervisorConfig::default(),
            recorder: Recorder::disabled(),
        }
    }
}

/// State shared by the accept loop, connection handlers, workers, and
/// the adoption sweeper.
struct Shared {
    registry: Registry,
    queue: Mutex<VecDeque<String>>,
    queue_cv: Condvar,
    /// Jobs currently executing in this process.
    running: Mutex<HashSet<String>>,
    stop: AtomicBool,
    queue_cap: usize,
    lease_ttl: Duration,
    chaos: ChaosPlan,
    supervisor: SupervisorConfig,
    recorder: Recorder,
    /// Failpoint site for response frames, when chaos is attached.
    socket_site: Option<ChaosSite>,
    /// Failpoint site for checkpoint appends, when chaos is attached.
    /// One site for the daemon's lifetime — a retried job must draw the
    /// *next* faults from the stream, not replay the first ones.
    ckpt_site: Option<ChaosSite>,
    /// Correlated event journal at `<root>/journal.jsonl`, shared by
    /// every daemon incarnation serving this registry.
    journal: Journal,
    /// Always-on ring of recent journal events, dumped on crash paths.
    flight: FlightRecorder,
    /// Daemon start time (drives the `health` verb's uptime).
    started: Instant,
    /// Execution attempts per job id within this daemon (the `attempt`
    /// correlation field).
    attempts: Mutex<HashMap<String, u64>>,
    /// Once-per-job latches for the stale-lease-heartbeat alarm.
    alarmed: Mutex<HashSet<String>>,
}

impl Shared {
    /// Pushes `id` unless it is already queued or running here, and
    /// wakes one worker. Returns whether it was enqueued.
    fn enqueue(&self, id: &str) -> bool {
        let mut q = self.queue.lock().expect("queue lock");
        if q.iter().any(|j| j == id) || self.running.lock().expect("running lock").contains(id) {
            return false;
        }
        q.push_back(id.to_string());
        self.set_queue_depth(q.len());
        self.queue_cv.notify_one();
        true
    }

    /// Updates both queue-depth gauges (legacy `service.*` and the
    /// scrape-facing `serve.*` family).
    fn set_queue_depth(&self, depth: usize) {
        self.recorder
            .gauge(service_metrics::JOBS_QUEUED)
            .set(depth as i64);
        self.recorder
            .gauge(service_metrics::QUEUE_DEPTH)
            .set(depth as i64);
    }

    /// Sets the stop flag exactly once, journaling the reason; repeat
    /// calls are no-ops so `Drop` after an explicit stop stays silent.
    fn request_stop(&self, why: &str) {
        if !self.stop.swap(true, Ordering::Relaxed) {
            self.journal
                .info("daemon.stop", &format!("stopping: {why}"), &Corr::none());
        }
        self.queue_cv.notify_all();
    }
}

/// A running service daemon. Dropping it stops the listener, the
/// workers, and the sweeper (gracefully — but the whole design assumes
/// the graceful path is optional).
#[derive(Debug)]
pub struct Daemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("registry", &self.registry.root())
            .field("queue_cap", &self.queue_cap)
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Opens the registry, binds the listener, runs the initial
    /// adoption sweep, and starts the worker and sweeper threads.
    ///
    /// # Errors
    ///
    /// A [`BindError`] naming the listen address (address in use,
    /// permission, parse), or one wrapping any registry I/O failure.
    pub fn start(config: DaemonConfig) -> Result<Daemon, BindError> {
        let ttl_ms = config.lease_ttl.as_millis() as u64;
        let mut registry = Registry::open(&config.registry, ttl_ms.max(1))
            .map_err(|e| BindError::new(config.listen.clone(), e))?;
        registry.attach_chaos(&config.chaos);
        registry.set_kill_after_writes(config.kill_after_registry);
        // Service-grade forensics: the journal appends durably to
        // <root>/journal.jsonl (one file per registry, shared across
        // incarnations), mirrored into the flight ring; the registry's
        // kill channel and a process panic both dump the ring.
        let flight = FlightRecorder::new(FLIGHT_CAPACITY);
        let journal = Journal::append_to(registry.journal_path())
            .map_err(|e| BindError::new(config.listen.clone(), e))?
            .with_flight(flight.clone());
        registry.attach_obs(journal.clone(), flight.clone());
        install_panic_dump(&flight, config.registry.join("flight.jsonl"));
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| BindError::new(config.listen.clone(), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| BindError::new(config.listen.clone(), e))?;
        journal.info(
            "daemon.start",
            &format!(
                "daemon up: pid {}, listening on {addr}, registry {}, \
                 {} worker(s), queue cap {}, lease TTL {}ms",
                std::process::id(),
                config.registry.display(),
                config.max_jobs,
                config.queue_cap,
                ttl_ms
            ),
            &Corr::none(),
        );
        let socket_site =
            (!config.chaos.is_trivial()).then(|| ChaosSite::new(config.chaos, "socket"));
        let ckpt_site =
            (!config.chaos.is_trivial()).then(|| ChaosSite::new(config.chaos, "checkpoint"));
        let shared = Arc::new(Shared {
            registry,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            running: Mutex::new(HashSet::new()),
            stop: AtomicBool::new(false),
            queue_cap: config.queue_cap,
            lease_ttl: config.lease_ttl,
            chaos: config.chaos,
            supervisor: config.supervisor,
            recorder: config.recorder,
            socket_site,
            ckpt_site,
            journal,
            flight,
            started: Instant::now(),
            attempts: Mutex::new(HashMap::new()),
            alarmed: Mutex::new(HashSet::new()),
        });

        let mut threads = Vec::new();
        let accept_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("accu-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &accept_shared))
                .map_err(|e| BindError::new(config.listen.clone(), e))?,
        );
        for worker in 0..config.max_jobs {
            let worker_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("accu-serve-worker-{worker}"))
                    .spawn(move || worker_loop(&worker_shared))
                    .map_err(|e| BindError::new(config.listen.clone(), e))?,
            );
        }
        let sweep_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("accu-serve-sweeper".to_string())
                .spawn(move || sweeper_loop(&sweep_shared))
                .map_err(|e| BindError::new(config.listen, e))?,
        );
        Ok(Daemon {
            addr,
            shared,
            threads,
        })
    }

    /// The actually-bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown request (or [`Daemon::stop`]) has been seen.
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Requests a stop (also triggered by a `shutdown` request).
    pub fn stop(&self) {
        self.shared.request_stop("stop requested");
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until the daemon is asked to stop (protocol `shutdown` or
    /// [`Daemon::stop`] from another thread).
    pub fn wait(&self) {
        while !self.stopping() {
            std::thread::sleep(Duration::from_millis(100));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Accepts connections until stopped, handling each on its own thread.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let conn_shared = Arc::clone(shared);
        // Handlers are detached: they exit when the client disconnects,
        // the idle timeout fires, or the stop flag is set.
        let _ = std::thread::Builder::new()
            .name("accu-serve-conn".to_string())
            .spawn(move || handle_connection(stream, &conn_shared));
    }
}

/// Sends one response frame, through the socket failpoint when chaos is
/// attached (a drawn fault tears the frame client-side).
fn send(stream: &TcpStream, shared: &Shared, resp: &Response) -> std::io::Result<()> {
    let payload = resp.to_json();
    match &shared.socket_site {
        Some(site) => {
            let mut writer = ChaosFile::new(stream, site.clone());
            write_frame(&mut writer, &payload)
        }
        None => write_frame(&mut { stream }, &payload),
    }
}

/// Serves one connection: request frames in, response frames out, until
/// the client disconnects or the daemon stops.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(CONN_IDLE_TIMEOUT));
    let mut reader = match stream.try_clone() {
        Ok(reader) => reader,
        Err(_) => return,
    };
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok(text) = read_frame(&mut reader) else {
            return;
        };
        let request = match Request::from_json(&text) {
            Ok(request) => request,
            Err(message) => {
                let _ = send(&stream, shared, &Response::Err { message });
                continue;
            }
        };
        let done = matches!(request, Request::Shutdown);
        if let Request::Watch { job, from } = &request {
            if serve_watch(&stream, shared, job, *from).is_err() {
                return;
            }
            continue;
        }
        // Per-verb wire latency, one histogram per verb so the scrape
        // exposes `accu_serve_rpc_<verb>_ns` families.
        let verb_started = Instant::now();
        let response = respond(shared, &request);
        shared
            .recorder
            .histogram(format!(
                "{}{}_ns",
                service_metrics::RPC_NS_PREFIX,
                verb_name(&request)
            ))
            .record(verb_started.elapsed().as_nanos() as u64);
        if send(&stream, shared, &response).is_err() {
            return;
        }
        if done {
            shared.request_stop("shutdown verb received");
            return;
        }
    }
}

/// The metric label for a request verb.
fn verb_name(request: &Request) -> &'static str {
    match request {
        Request::Ping => "ping",
        Request::Submit { .. } => "submit",
        Request::Status { .. } => "status",
        Request::Result { .. } => "result",
        Request::Watch { .. } => "watch",
        Request::Cancel { .. } => "cancel",
        Request::Health => "health",
        Request::ServiceStatus { .. } => "service_status",
        Request::Shutdown => "shutdown",
    }
}

/// Computes the response for every non-watch request.
fn respond(shared: &Shared, request: &Request) -> Response {
    match request {
        Request::Ping | Request::Shutdown => Response::Pong {
            pid: std::process::id(),
        },
        Request::Health => Response::Health(health_snapshot(shared)),
        Request::ServiceStatus { tail } => Response::Summary(service_summary(shared, *tail)),
        Request::Submit { job, spec } => submit(shared, job, spec),
        Request::Status { job } => match shared.registry.read_status(job) {
            Ok(status) => Response::Status {
                job: job.clone(),
                status,
            },
            Err(e) => Response::Err {
                message: e.to_string(),
            },
        },
        Request::Result { job } => match shared.registry.read_status(job) {
            Ok(status) if status.state == JobState::Done => {
                match shared.registry.read_result(job) {
                    Ok(csv) => Response::ResultCsv {
                        job: job.clone(),
                        csv,
                    },
                    Err(e) => Response::Err {
                        message: e.to_string(),
                    },
                }
            }
            Ok(status) => Response::Err {
                message: format!("job {job:?} is {}, not done", status.state),
            },
            Err(e) => Response::Err {
                message: e.to_string(),
            },
        },
        Request::Cancel { job } => cancel(shared, job),
        Request::Watch { .. } => unreachable!("watch is streamed by the caller"),
    }
}

/// One pass over the registry for the `health` verb's vitals.
fn health_snapshot(shared: &Shared) -> DaemonHealth {
    let queued = shared.queue.lock().expect("queue lock").len();
    let running = shared.running.lock().expect("running lock").len();
    let mut health = DaemonHealth {
        pid: std::process::id(),
        uptime_ms: shared.started.elapsed().as_millis() as u64,
        queued,
        running,
        ..DaemonHealth::default()
    };
    if let Ok(ids) = shared.registry.jobs() {
        for id in ids {
            health.jobs += 1;
            match shared.registry.read_status(&id).map(|s| s.state) {
                Ok(JobState::Done) => health.done += 1,
                Ok(JobState::Failed) => health.failed += 1,
                _ => {}
            }
        }
    }
    health
}

/// The daemon-wide status report: vitals, every registry job's phase,
/// and the last `tail` journal lines.
fn service_summary(shared: &Shared, tail: u64) -> ServiceSummary {
    let mut jobs = Vec::new();
    if let Ok(mut ids) = shared.registry.jobs() {
        ids.sort();
        for id in ids {
            let Ok(status) = shared.registry.read_status(&id) else {
                continue;
            };
            jobs.push(JobRow {
                job: id,
                state: status.state,
                epoch: status.epoch,
                detail: status.detail,
            });
        }
    }
    let journal_tail = if tail == 0 {
        Vec::new()
    } else {
        let text = std::fs::read_to_string(shared.registry.journal_path()).unwrap_or_default();
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let skip = lines.len().saturating_sub(tail as usize);
        lines[skip..].iter().map(|l| (*l).to_string()).collect()
    };
    ServiceSummary {
        health: health_snapshot(shared),
        jobs,
        journal_tail,
    }
}

/// Idempotent submission with admission control. The capacity check
/// happens *before* any registry mutation, so an `Overloaded` answer
/// really means nothing was accepted (the sweeper will not resurrect a
/// half-admitted job).
fn submit(shared: &Shared, job: &str, spec: &crate::service::spec::JobSpec) -> Response {
    let queue = shared.queue.lock().expect("queue lock");
    let will_enqueue = match shared.registry.read_status(job) {
        Ok(status) => matches!(status.state, JobState::Failed | JobState::Cancelled),
        Err(RegistryError::Rejected(_)) => true, // new job
        Err(RegistryError::Io(e)) => {
            return Response::Err {
                message: format!("registry read failed: {e}"),
            }
        }
    };
    if will_enqueue && queue.len() >= shared.queue_cap {
        shared.recorder.counter(service_metrics::OVERLOADED).incr();
        shared
            .recorder
            .counter(service_metrics::ADMISSION_REJECTIONS)
            .incr();
        shared.journal.warn(
            "job.reject",
            &format!(
                "admission control rejected submission: queue {} at cap {}",
                queue.len(),
                shared.queue_cap
            ),
            &Corr::job(job),
        );
        return Response::Overloaded {
            running: shared.running.lock().expect("running lock").len(),
            queued: queue.len(),
            cap: shared.queue_cap,
        };
    }
    drop(queue);
    match shared.registry.submit(job, spec) {
        Ok(outcome) => {
            shared.recorder.counter(service_metrics::SUBMISSIONS).incr();
            let outcome_name = match outcome {
                SubmitOutcome::Created => "created",
                SubmitOutcome::Cached => "cached",
                SubmitOutcome::Attached => "attached",
                SubmitOutcome::Requeued => "requeued",
            };
            shared.journal.info(
                "job.submit",
                &format!("submission accepted ({outcome_name})"),
                &Corr::job(job),
            );
            if matches!(outcome, SubmitOutcome::Created | SubmitOutcome::Requeued) {
                shared.enqueue(job);
            }
            let state = shared
                .registry
                .read_status(job)
                .map(|s| s.state)
                .unwrap_or(JobState::Queued);
            Response::Accepted {
                job: job.to_string(),
                state,
                cached: outcome == SubmitOutcome::Cached,
                attached: outcome == SubmitOutcome::Attached,
            }
        }
        Err(e) => Response::Err {
            message: e.to_string(),
        },
    }
}

/// Cancels a queued job; running and terminal jobs are not touched
/// (cancel of an already-cancelled job idempotently reports it).
fn cancel(shared: &Shared, job: &str) -> Response {
    let status = match shared.registry.read_status(job) {
        Ok(status) => status,
        Err(e) => {
            return Response::Err {
                message: e.to_string(),
            }
        }
    };
    match status.state {
        JobState::Queued => {
            {
                let mut queue = shared.queue.lock().expect("queue lock");
                queue.retain(|j| j != job);
                shared.set_queue_depth(queue.len());
            }
            let cancelled = JobStatus {
                state: JobState::Cancelled,
                detail: "cancelled while queued".to_string(),
                ..status
            };
            match shared.registry.write_status(job, &cancelled) {
                Ok(()) => {
                    shared
                        .journal
                        .info("job.cancel", "cancelled while queued", &Corr::job(job));
                    Response::Status {
                        job: job.to_string(),
                        status: cancelled,
                    }
                }
                Err(e) => Response::Err {
                    message: format!("cancel failed: {e}"),
                },
            }
        }
        JobState::Running => Response::Err {
            message: format!("job {job:?} is running; only queued jobs can be cancelled"),
        },
        _ => Response::Status {
            job: job.to_string(),
            status,
        },
    }
}

/// Streams progress lines for `job` from sequence `from` until the job
/// is terminal, then sends [`Response::End`]. Lines are the raw
/// `progress.jsonl` entries; the sequence number is the 0-based line
/// index, which is what a reconnecting client passes back as `from`.
fn serve_watch(
    stream: &TcpStream,
    shared: &Arc<Shared>,
    job: &str,
    from: u64,
) -> std::io::Result<()> {
    if let Err(e) = shared.registry.read_status(job) {
        return send(
            stream,
            shared,
            &Response::Err {
                message: e.to_string(),
            },
        );
    }
    let mut next = from;
    loop {
        let text = std::fs::read_to_string(shared.registry.progress_path(job)).unwrap_or_default();
        // The final line of a live stream may still be mid-append; only
        // newline-terminated lines are complete, so count those.
        let complete = text.ends_with('\n');
        let lines: Vec<&str> = text.lines().collect();
        let available = if complete {
            lines.len()
        } else {
            lines.len().saturating_sub(1)
        };
        while (next as usize) < available {
            send(
                stream,
                shared,
                &Response::Event {
                    seq: next,
                    line: lines[next as usize].to_string(),
                },
            )?;
            next += 1;
        }
        let state = shared
            .registry
            .read_status(job)
            .map(|s| s.state)
            .unwrap_or(JobState::Failed);
        if state.is_terminal() && (next as usize) >= available {
            return send(stream, shared, &Response::End { state });
        }
        if shared.stop.load(Ordering::Relaxed) {
            // Stopping mid-stream: just drop; the client reconnects to
            // whoever adopts the job.
            return Ok(());
        }
        std::thread::sleep(POLL);
    }
}

/// Worker body: dequeue → win the lease → execute → publish (fenced).
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    shared.set_queue_depth(queue.len());
                    break job;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = q;
            }
        };
        run_one_job(shared, &job);
    }
}

/// Executes one dequeued job id end to end. Every early return is a
/// case where someone else owns (or finished) the job — never an error
/// the queue needs to care about.
fn run_one_job(shared: &Arc<Shared>, job: &str) {
    use crate::service::lease::now_ms;

    let Ok(status) = shared.registry.read_status(job) else {
        return;
    };
    if status.state.is_terminal() {
        return;
    }
    let attempt = {
        let mut attempts = shared.attempts.lock().expect("attempts lock");
        let n = attempts.entry(job.to_string()).or_insert(0);
        *n += 1;
        *n
    };
    // Win the lease: fresh acquire on a free job, fenced takeover on a
    // stale one, retreat when someone else holds it live.
    let lease_file = shared.registry.lease(job);
    let ttl_ms = shared.lease_ttl.as_millis() as u64;
    let lease = match lease_file.read() {
        Ok(None) => {
            let acquired = lease_file.acquire(status.epoch + 1).unwrap_or(None);
            if let Some(lease) = &acquired {
                shared.journal.info(
                    "lease.acquire",
                    &format!("lease acquired at epoch {}", lease.epoch),
                    &Corr::job(job).epoch(lease.epoch).attempt(attempt),
                );
            }
            acquired
        }
        Ok(Some(current)) if current.is_stale(ttl_ms, now_ms()) => {
            let adopted = lease_file.takeover(&current).unwrap_or(None);
            if let Some(lease) = &adopted {
                shared.recorder.counter(service_metrics::ADOPTED).incr();
                shared.recorder.counter(service_metrics::TAKEOVERS).incr();
                shared.journal.warn(
                    "lease.takeover",
                    &format!(
                        "took over stale lease: previous holder pid {} epoch {} \
                         (heartbeat age {}ms), fenced to epoch {}",
                        current.pid,
                        current.epoch,
                        now_ms().saturating_sub(current.beat_ms),
                        lease.epoch
                    ),
                    &Corr::job(job).epoch(lease.epoch).attempt(attempt),
                );
            }
            adopted
        }
        _ => None,
    };
    let Some(lease) = lease else { return };
    let corr = Corr::job(job).epoch(lease.epoch).attempt(attempt);

    shared
        .running
        .lock()
        .expect("running lock")
        .insert(job.to_string());
    shared.recorder.gauge(service_metrics::JOBS_RUNNING).add(1);
    shared.recorder.gauge(service_metrics::INFLIGHT).add(1);

    let outcome = execute(shared, job, &lease, &corr);

    let _ = lease_file.release(&lease);
    shared.journal.log(
        Severity::Debug,
        "lease.release",
        &format!("lease released at epoch {}", lease.epoch),
        &corr,
    );
    shared.running.lock().expect("running lock").remove(job);
    shared.recorder.gauge(service_metrics::JOBS_RUNNING).sub(1);
    shared.recorder.gauge(service_metrics::INFLIGHT).sub(1);
    match outcome {
        ExecOutcome::Published => shared.recorder.counter(service_metrics::JOBS_DONE).incr(),
        ExecOutcome::Fenced => {} // the successor publishes
        ExecOutcome::Retry => {
            // Crash-only retry: the job is still non-terminal on disk
            // and now leaseless, exactly like a crashed daemon's
            // orphan. Requeue immediately; the sweep is the backstop.
            shared.enqueue(job);
        }
        ExecOutcome::Failed => shared.recorder.counter(service_metrics::JOBS_FAILED).incr(),
    }
}

/// How one execution attempt ended.
enum ExecOutcome {
    /// The result was published; the job is done.
    Published,
    /// Fenced off mid-run; a successor owns the job now and this
    /// worker's output was discarded.
    Fenced,
    /// A transient failure (checkpoint/progress I/O, including injected
    /// chaos). The job stays non-terminal and leaseless, so adoption
    /// retries it — resuming whatever the checkpoint already holds.
    Retry,
    /// A permanent failure, published as `Failed`.
    Failed,
}

/// Why a job body could not produce a result.
enum JobError {
    /// Worth retrying from the durable checkpoint (I/O trouble).
    Transient(String),
    /// Retrying cannot help (bad spec, exhausted supervision).
    Fatal(String),
}

/// Runs the job under `lease` and reports how the attempt ended.
fn execute(
    shared: &Arc<Shared>,
    job: &str,
    lease: &crate::service::lease::Lease,
    corr: &Corr,
) -> ExecOutcome {
    let lease_file = shared.registry.lease(job);
    let running = JobStatus {
        state: JobState::Running,
        detail: String::new(),
        recovered_lines: 0,
        resumed_networks: 0,
        epoch: lease.epoch,
    };
    if shared.registry.write_status(job, &running).is_err() {
        return ExecOutcome::Retry;
    }
    shared.journal.info(
        "job.run",
        &format!("attempt started under epoch {}", lease.epoch),
        corr,
    );

    // Heartbeat: renew at TTL/4; a failed renewal (epoch moved) means
    // this worker has been fenced off and must discard its work.
    let hb_done = Arc::new(AtomicBool::new(false));
    let hb_fenced = Arc::new(AtomicBool::new(false));
    let hb = {
        let done = Arc::clone(&hb_done);
        let fenced = Arc::clone(&hb_fenced);
        let lease_file = lease_file.clone();
        let lease = *lease;
        let interval = (shared.lease_ttl / 4).max(Duration::from_millis(10));
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if done.load(Ordering::Relaxed) {
                    break;
                }
                match lease_file.renew(&lease) {
                    Ok(true) => {}
                    Ok(false) => {
                        fenced.store(true, Ordering::Relaxed);
                        break;
                    }
                    // Transient I/O on a renew is survivable until the
                    // TTL runs out; keep trying.
                    Err(_) => {}
                }
            }
        })
    };

    let result = run_job_body(shared, job, corr);

    hb_done.store(true, Ordering::Relaxed);
    let _ = hb.join();

    // Fencing checks: the heartbeat's verdict plus one final epoch read
    // immediately before publication.
    let still_owner = !hb_fenced.load(Ordering::Relaxed)
        && matches!(lease_file.read(), Ok(Some(current)) if current.epoch == lease.epoch);
    if !still_owner {
        shared.recorder.counter(service_metrics::FENCES).incr();
        shared.journal.warn(
            "lease.fenced",
            &format!(
                "fenced off at epoch {}: a successor holds the lease, discarding work",
                lease.epoch
            ),
            corr,
        );
        return ExecOutcome::Fenced;
    }

    match result {
        Ok((csv, mut status)) => {
            status.epoch = lease.epoch;
            if shared.registry.write_result(job, &csv).is_err()
                || shared.registry.write_status(job, &status).is_err()
            {
                // The result did not land durably: same as crashing
                // before publication — the next owner republishes.
                return ExecOutcome::Retry;
            }
            shared.journal.info(
                "job.publish",
                &format!("result published at epoch {}", lease.epoch),
                corr,
            );
            ExecOutcome::Published
        }
        Err(JobError::Transient(message)) => {
            eprintln!("accu-serve: job {job} hit transient trouble, will retry: {message}");
            shared.journal.warn(
                "job.retry",
                &format!("transient trouble, will retry: {message}"),
                corr,
            );
            ExecOutcome::Retry
        }
        Err(JobError::Fatal(message)) => {
            shared
                .journal
                .error("job.fail", &format!("fatal failure: {message}"), corr);
            let _ = shared.flight.dump(shared.registry.flight_path(job));
            let _ = shared.registry.write_status(
                job,
                &JobStatus {
                    state: JobState::Failed,
                    detail: message,
                    recovered_lines: 0,
                    resumed_networks: 0,
                    epoch: lease.epoch,
                },
            );
            ExecOutcome::Failed
        }
    }
}

/// The computation itself: resolve the spec, resume the checkpoint, run
/// the hardened runner, render the CSV. Returns the result CSV and the
/// `Done` status to publish (the caller stamps the epoch and decides
/// whether publication is still allowed).
fn run_job_body(
    shared: &Arc<Shared>,
    job: &str,
    corr: &Corr,
) -> Result<(String, JobStatus), JobError> {
    let spec = shared.registry.read_spec(job).map_err(|e| match e {
        RegistryError::Io(e) => JobError::Transient(format!("spec read failed: {e}")),
        RegistryError::Rejected(m) => JobError::Fatal(m),
    })?;
    let figure = spec.figure().map_err(JobError::Fatal)?;
    let policy = spec.policy_kind().map_err(JobError::Fatal)?;
    let mut checkpoint = Checkpoint::open(shared.registry.checkpoint_path(job), true)
        .map_err(|e| JobError::Transient(format!("checkpoint open failed: {e}")))?;
    match &shared.ckpt_site {
        Some(site) => checkpoint.attach_chaos_site(site),
        None => checkpoint.attach_chaos(&shared.chaos),
    }
    checkpoint.attach_obs(shared.journal.clone(), shared.flight.clone(), corr.clone());
    // Progress restarts from sequence 0 on every (re)execution: the
    // stream documents *this* attempt, and watch clients treat a seq
    // reset after reconnect as a new attempt.
    let observer = Observer::to_path_quiet(shared.registry.progress_path(job))
        .map_err(|e| JobError::Transient(format!("progress sink failed: {e}")))?;
    let report = run_policy_with(
        &figure,
        policy,
        RunOptions {
            recorder: shared.recorder.clone(),
            observer,
            checkpoint: Some(&mut checkpoint),
            max_workers: Some(2),
            chaos: shared.chaos,
            supervisor: shared.supervisor,
            journal: shared.journal.clone(),
            corr: corr.clone(),
            ..RunOptions::default()
        },
    )
    .map_err(|e| match e {
        // Checkpoint I/O trouble (including injected chaos) is the
        // crash-shaped failure: whatever prefix landed durably, a
        // re-adoption resumes it. Everything else is a real failure.
        RunnerError::Checkpoint(e) => JobError::Transient(format!("checkpoint I/O failed: {e}")),
        other => JobError::Fatal(other.to_string()),
    })?;

    let mut notes = Vec::new();
    if report.checkpoint_skipped_lines > 0 {
        notes.push(format!(
            "recovered from torn checkpoint ({} line{} dropped)",
            report.checkpoint_skipped_lines,
            if report.checkpoint_skipped_lines == 1 {
                ""
            } else {
                "s"
            }
        ));
    }
    if report.resumed_networks > 0 {
        notes.push(format!(
            "resumed {} network(s) from checkpoint",
            report.resumed_networks
        ));
    }
    let csv = crate::service::spec::result_csv(&figure, policy, &report.accumulator);
    Ok((
        csv,
        JobStatus {
            state: JobState::Done,
            detail: notes.join("; "),
            recovered_lines: report.checkpoint_skipped_lines,
            resumed_networks: report.resumed_networks,
            epoch: 0, // stamped by the caller
        },
    ))
}

/// Adoption sweeper: runs a sweep immediately at startup (crash-only
/// recovery is just "start"), then re-sweeps at half the lease TTL so
/// stale leases are adopted promptly after they expire.
fn sweeper_loop(shared: &Arc<Shared>) {
    let interval = (shared.lease_ttl / 2).max(Duration::from_millis(50));
    loop {
        if let Ok(orphans) = shared.registry.orphans() {
            for id in orphans {
                if shared.enqueue(&id) {
                    shared.recorder.counter(service_metrics::ADOPTIONS).incr();
                    shared.journal.info(
                        "job.adopt",
                        "adoption sweep requeued leaseless non-terminal job",
                        &Corr::job(&id),
                    );
                }
            }
        }
        watch_lease_heartbeats(shared);
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        std::thread::sleep(interval);
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
    }
}

/// Stale-lease watchdog: a job whose on-disk status says `Running` but
/// whose lease heartbeat is older than the TTL has lost its worker (or
/// the worker is wedged). Publishes the worst heartbeat age as a gauge
/// and raises a once-per-job `obs.alarm` journal event with a flight
/// dump so the wedge is diagnosable after the fact.
fn watch_lease_heartbeats(shared: &Arc<Shared>) {
    use crate::service::lease::now_ms;

    let ttl_ms = shared.lease_ttl.as_millis() as u64;
    let Ok(jobs) = shared.registry.jobs() else {
        return;
    };
    let mut worst_age: u64 = 0;
    for job in jobs {
        let Ok(status) = shared.registry.read_status(&job) else {
            continue;
        };
        if status.state != JobState::Running {
            continue;
        }
        let Ok(Some(lease)) = shared.registry.lease(&job).read() else {
            continue;
        };
        let age = now_ms().saturating_sub(lease.beat_ms);
        worst_age = worst_age.max(age);
        if age > ttl_ms {
            let first = shared
                .alarmed
                .lock()
                .expect("alarmed lock")
                .insert(job.clone());
            if first {
                shared.journal.error(
                    "obs.alarm",
                    &format!(
                        "stale lease heartbeat: job still running but last beat {age}ms ago \
                         (TTL {ttl_ms}ms) at epoch {}",
                        lease.epoch
                    ),
                    &Corr::job(&job).epoch(lease.epoch),
                );
                let _ = shared.flight.dump(shared.registry.flight_path(&job));
                eprintln!(
                    "accu-serve: WATCHDOG job {job} lease heartbeat is {age}ms old (TTL {ttl_ms}ms)"
                );
            }
        }
    }
    shared
        .recorder
        .gauge(service_metrics::LEASE_HEARTBEAT_AGE_MS)
        .set(worst_age as i64);
}
