//! The crash-only ACCU service daemon.
//!
//! A [`Daemon`] binds a loopback TCP listener, accepts
//! [`Request`](super::protocol::Request) frames, and executes submitted
//! jobs through the hardened runner. There is no shutdown path to get
//! right because *crash is the shutdown path*: every state transition
//! is a durable registry write, execution is fenced by per-job leases,
//! and a restarted daemon (or a second daemon on the same registry)
//! simply adopts whatever non-terminal jobs have no live lease —
//! resuming their checkpoints instead of recomputing.
//!
//! Concretely, per job:
//!
//! 1. a worker dequeues the id and must win the lease (fresh acquire or
//!    stale-lease takeover) before touching it — at most one executor
//!    per epoch, across any number of daemons;
//! 2. a heartbeat thread renews the lease at TTL/4; a failed renewal
//!    means the job was fenced away and the worker discards its work;
//! 3. the run resumes the job's checkpoint (recovering from torn tails,
//!    which are reported in the status record) and streams progress to
//!    `progress.jsonl` for `watch` clients;
//! 4. results publish only after a final epoch re-check, so a zombie
//!    that lost its lease mid-run can never overwrite its successor.
//!
//! Chaos hooks: the configured [`ChaosPlan`] is attached to the
//! checkpoint (site `"checkpoint"`, including the `kill-after` abort),
//! to registry writes (site `"registry"`), to response frames (site
//! `"socket"` — clients see torn frames and must retry), and to the
//! runner's worker faults. A second kill channel,
//! [`DaemonConfig::kill_after_registry`], aborts the process after N
//! durable registry writes — crashing *between* job-level state
//! transitions rather than inside the run.

use std::collections::{HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use accu_core::ChaosPlan;
use accu_telemetry::obs::{BindError, Observer};
use accu_telemetry::Recorder;

use crate::chaosfs::{ChaosFile, ChaosSite};
use crate::checkpoint::Checkpoint;
use crate::runner::{run_policy_with, RunOptions, RunnerError, SupervisorConfig};
use crate::service::protocol::{read_frame, write_frame, Request, Response};
use crate::service::registry::{JobState, JobStatus, Registry, RegistryError, SubmitOutcome};

/// Idle time after which a connection handler gives up waiting for the
/// next request frame.
const CONN_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Poll interval for watch streams and queue waits.
const POLL: Duration = Duration::from_millis(20);

/// Metric names emitted by the service daemon.
pub mod service_metrics {
    /// Counter: submissions accepted (all outcomes).
    pub const SUBMISSIONS: &str = "service.submissions";
    /// Counter: submissions rejected by admission control.
    pub const OVERLOADED: &str = "service.overloaded";
    /// Counter: orphaned jobs adopted by the sweep.
    pub const ADOPTED: &str = "service.adopted";
    /// Counter: jobs finished successfully.
    pub const JOBS_DONE: &str = "service.jobs_done";
    /// Counter: jobs that ended in failure.
    pub const JOBS_FAILED: &str = "service.jobs_failed";
    /// Gauge: jobs waiting in the in-process queue.
    pub const JOBS_QUEUED: &str = "service.jobs_queued";
    /// Gauge: jobs currently executing in this daemon.
    pub const JOBS_RUNNING: &str = "service.jobs_running";
}

/// Configuration for one daemon instance.
#[derive(Debug)]
pub struct DaemonConfig {
    /// Listen address (`127.0.0.1:0` for an ephemeral port).
    pub listen: String,
    /// Registry root directory.
    pub registry: PathBuf,
    /// Worker threads executing jobs. `0` is legal: accept-only mode
    /// (jobs queue but never run here — another daemon on the same
    /// registry adopts them), used by deterministic overload tests.
    pub max_jobs: usize,
    /// Queue capacity; a submission that would enqueue beyond this is
    /// answered with [`Response::Overloaded`].
    pub queue_cap: usize,
    /// Lease TTL: heartbeat silence after which other daemons may adopt
    /// this daemon's jobs.
    pub lease_ttl: Duration,
    /// Chaos schedule injected into checkpoint appends, registry
    /// writes, response frames, and runner worker faults.
    pub chaos: ChaosPlan,
    /// Abort the process after this many durable registry writes
    /// (chaos testing only).
    pub kill_after_registry: Option<u64>,
    /// Supervisor knobs for the in-job runner.
    pub supervisor: SupervisorConfig,
    /// Metrics sink.
    pub recorder: Recorder,
}

impl DaemonConfig {
    /// Defaults for a registry at `root`: ephemeral loopback port, two
    /// workers, queue of 16, 5-second lease TTL, no chaos.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            listen: "127.0.0.1:0".to_string(),
            registry: root.into(),
            max_jobs: 2,
            queue_cap: 16,
            lease_ttl: Duration::from_secs(5),
            chaos: ChaosPlan::none(),
            kill_after_registry: None,
            supervisor: SupervisorConfig::default(),
            recorder: Recorder::disabled(),
        }
    }
}

/// State shared by the accept loop, connection handlers, workers, and
/// the adoption sweeper.
struct Shared {
    registry: Registry,
    queue: Mutex<VecDeque<String>>,
    queue_cv: Condvar,
    /// Jobs currently executing in this process.
    running: Mutex<HashSet<String>>,
    stop: AtomicBool,
    queue_cap: usize,
    lease_ttl: Duration,
    chaos: ChaosPlan,
    supervisor: SupervisorConfig,
    recorder: Recorder,
    /// Failpoint site for response frames, when chaos is attached.
    socket_site: Option<ChaosSite>,
    /// Failpoint site for checkpoint appends, when chaos is attached.
    /// One site for the daemon's lifetime — a retried job must draw the
    /// *next* faults from the stream, not replay the first ones.
    ckpt_site: Option<ChaosSite>,
}

impl Shared {
    /// Pushes `id` unless it is already queued or running here, and
    /// wakes one worker. Returns whether it was enqueued.
    fn enqueue(&self, id: &str) -> bool {
        let mut q = self.queue.lock().expect("queue lock");
        if q.iter().any(|j| j == id) || self.running.lock().expect("running lock").contains(id) {
            return false;
        }
        q.push_back(id.to_string());
        self.recorder
            .gauge(service_metrics::JOBS_QUEUED)
            .set(q.len() as i64);
        self.queue_cv.notify_one();
        true
    }
}

/// A running service daemon. Dropping it stops the listener, the
/// workers, and the sweeper (gracefully — but the whole design assumes
/// the graceful path is optional).
#[derive(Debug)]
pub struct Daemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("registry", &self.registry.root())
            .field("queue_cap", &self.queue_cap)
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Opens the registry, binds the listener, runs the initial
    /// adoption sweep, and starts the worker and sweeper threads.
    ///
    /// # Errors
    ///
    /// A [`BindError`] naming the listen address (address in use,
    /// permission, parse), or one wrapping any registry I/O failure.
    pub fn start(config: DaemonConfig) -> Result<Daemon, BindError> {
        let ttl_ms = config.lease_ttl.as_millis() as u64;
        let mut registry = Registry::open(&config.registry, ttl_ms.max(1))
            .map_err(|e| BindError::new(config.listen.clone(), e))?;
        registry.attach_chaos(&config.chaos);
        registry.set_kill_after_writes(config.kill_after_registry);
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| BindError::new(config.listen.clone(), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| BindError::new(config.listen.clone(), e))?;
        let socket_site =
            (!config.chaos.is_trivial()).then(|| ChaosSite::new(config.chaos, "socket"));
        let ckpt_site =
            (!config.chaos.is_trivial()).then(|| ChaosSite::new(config.chaos, "checkpoint"));
        let shared = Arc::new(Shared {
            registry,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            running: Mutex::new(HashSet::new()),
            stop: AtomicBool::new(false),
            queue_cap: config.queue_cap,
            lease_ttl: config.lease_ttl,
            chaos: config.chaos,
            supervisor: config.supervisor,
            recorder: config.recorder,
            socket_site,
            ckpt_site,
        });

        let mut threads = Vec::new();
        let accept_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("accu-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &accept_shared))
                .map_err(|e| BindError::new(config.listen.clone(), e))?,
        );
        for worker in 0..config.max_jobs {
            let worker_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("accu-serve-worker-{worker}"))
                    .spawn(move || worker_loop(&worker_shared))
                    .map_err(|e| BindError::new(config.listen.clone(), e))?,
            );
        }
        let sweep_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("accu-serve-sweeper".to_string())
                .spawn(move || sweeper_loop(&sweep_shared))
                .map_err(|e| BindError::new(config.listen, e))?,
        );
        Ok(Daemon {
            addr,
            shared,
            threads,
        })
    }

    /// The actually-bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown request (or [`Daemon::stop`]) has been seen.
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Requests a stop (also triggered by a `shutdown` request).
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.queue_cv.notify_all();
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until the daemon is asked to stop (protocol `shutdown` or
    /// [`Daemon::stop`] from another thread).
    pub fn wait(&self) {
        while !self.stopping() {
            std::thread::sleep(Duration::from_millis(100));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Accepts connections until stopped, handling each on its own thread.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let conn_shared = Arc::clone(shared);
        // Handlers are detached: they exit when the client disconnects,
        // the idle timeout fires, or the stop flag is set.
        let _ = std::thread::Builder::new()
            .name("accu-serve-conn".to_string())
            .spawn(move || handle_connection(stream, &conn_shared));
    }
}

/// Sends one response frame, through the socket failpoint when chaos is
/// attached (a drawn fault tears the frame client-side).
fn send(stream: &TcpStream, shared: &Shared, resp: &Response) -> std::io::Result<()> {
    let payload = resp.to_json();
    match &shared.socket_site {
        Some(site) => {
            let mut writer = ChaosFile::new(stream, site.clone());
            write_frame(&mut writer, &payload)
        }
        None => write_frame(&mut { stream }, &payload),
    }
}

/// Serves one connection: request frames in, response frames out, until
/// the client disconnects or the daemon stops.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(CONN_IDLE_TIMEOUT));
    let mut reader = match stream.try_clone() {
        Ok(reader) => reader,
        Err(_) => return,
    };
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok(text) = read_frame(&mut reader) else {
            return;
        };
        let request = match Request::from_json(&text) {
            Ok(request) => request,
            Err(message) => {
                let _ = send(&stream, shared, &Response::Err { message });
                continue;
            }
        };
        let done = matches!(request, Request::Shutdown);
        if let Request::Watch { job, from } = &request {
            if serve_watch(&stream, shared, job, *from).is_err() {
                return;
            }
            continue;
        }
        let response = respond(shared, &request);
        if send(&stream, shared, &response).is_err() {
            return;
        }
        if done {
            shared.stop.store(true, Ordering::Relaxed);
            shared.queue_cv.notify_all();
            return;
        }
    }
}

/// Computes the response for every non-watch request.
fn respond(shared: &Shared, request: &Request) -> Response {
    match request {
        Request::Ping | Request::Shutdown => Response::Pong {
            pid: std::process::id(),
        },
        Request::Submit { job, spec } => submit(shared, job, spec),
        Request::Status { job } => match shared.registry.read_status(job) {
            Ok(status) => Response::Status {
                job: job.clone(),
                status,
            },
            Err(e) => Response::Err {
                message: e.to_string(),
            },
        },
        Request::Result { job } => match shared.registry.read_status(job) {
            Ok(status) if status.state == JobState::Done => {
                match shared.registry.read_result(job) {
                    Ok(csv) => Response::ResultCsv {
                        job: job.clone(),
                        csv,
                    },
                    Err(e) => Response::Err {
                        message: e.to_string(),
                    },
                }
            }
            Ok(status) => Response::Err {
                message: format!("job {job:?} is {}, not done", status.state),
            },
            Err(e) => Response::Err {
                message: e.to_string(),
            },
        },
        Request::Cancel { job } => cancel(shared, job),
        Request::Watch { .. } => unreachable!("watch is streamed by the caller"),
    }
}

/// Idempotent submission with admission control. The capacity check
/// happens *before* any registry mutation, so an `Overloaded` answer
/// really means nothing was accepted (the sweeper will not resurrect a
/// half-admitted job).
fn submit(shared: &Shared, job: &str, spec: &crate::service::spec::JobSpec) -> Response {
    let queue = shared.queue.lock().expect("queue lock");
    let will_enqueue = match shared.registry.read_status(job) {
        Ok(status) => matches!(status.state, JobState::Failed | JobState::Cancelled),
        Err(RegistryError::Rejected(_)) => true, // new job
        Err(RegistryError::Io(e)) => {
            return Response::Err {
                message: format!("registry read failed: {e}"),
            }
        }
    };
    if will_enqueue && queue.len() >= shared.queue_cap {
        shared.recorder.counter(service_metrics::OVERLOADED).incr();
        return Response::Overloaded {
            running: shared.running.lock().expect("running lock").len(),
            queued: queue.len(),
            cap: shared.queue_cap,
        };
    }
    drop(queue);
    match shared.registry.submit(job, spec) {
        Ok(outcome) => {
            shared.recorder.counter(service_metrics::SUBMISSIONS).incr();
            if matches!(outcome, SubmitOutcome::Created | SubmitOutcome::Requeued) {
                shared.enqueue(job);
            }
            let state = shared
                .registry
                .read_status(job)
                .map(|s| s.state)
                .unwrap_or(JobState::Queued);
            Response::Accepted {
                job: job.to_string(),
                state,
                cached: outcome == SubmitOutcome::Cached,
                attached: outcome == SubmitOutcome::Attached,
            }
        }
        Err(e) => Response::Err {
            message: e.to_string(),
        },
    }
}

/// Cancels a queued job; running and terminal jobs are not touched
/// (cancel of an already-cancelled job idempotently reports it).
fn cancel(shared: &Shared, job: &str) -> Response {
    let status = match shared.registry.read_status(job) {
        Ok(status) => status,
        Err(e) => {
            return Response::Err {
                message: e.to_string(),
            }
        }
    };
    match status.state {
        JobState::Queued => {
            {
                let mut queue = shared.queue.lock().expect("queue lock");
                queue.retain(|j| j != job);
                shared
                    .recorder
                    .gauge(service_metrics::JOBS_QUEUED)
                    .set(queue.len() as i64);
            }
            let cancelled = JobStatus {
                state: JobState::Cancelled,
                detail: "cancelled while queued".to_string(),
                ..status
            };
            match shared.registry.write_status(job, &cancelled) {
                Ok(()) => Response::Status {
                    job: job.to_string(),
                    status: cancelled,
                },
                Err(e) => Response::Err {
                    message: format!("cancel failed: {e}"),
                },
            }
        }
        JobState::Running => Response::Err {
            message: format!("job {job:?} is running; only queued jobs can be cancelled"),
        },
        _ => Response::Status {
            job: job.to_string(),
            status,
        },
    }
}

/// Streams progress lines for `job` from sequence `from` until the job
/// is terminal, then sends [`Response::End`]. Lines are the raw
/// `progress.jsonl` entries; the sequence number is the 0-based line
/// index, which is what a reconnecting client passes back as `from`.
fn serve_watch(
    stream: &TcpStream,
    shared: &Arc<Shared>,
    job: &str,
    from: u64,
) -> std::io::Result<()> {
    if let Err(e) = shared.registry.read_status(job) {
        return send(
            stream,
            shared,
            &Response::Err {
                message: e.to_string(),
            },
        );
    }
    let mut next = from;
    loop {
        let text = std::fs::read_to_string(shared.registry.progress_path(job)).unwrap_or_default();
        // The final line of a live stream may still be mid-append; only
        // newline-terminated lines are complete, so count those.
        let complete = text.ends_with('\n');
        let lines: Vec<&str> = text.lines().collect();
        let available = if complete {
            lines.len()
        } else {
            lines.len().saturating_sub(1)
        };
        while (next as usize) < available {
            send(
                stream,
                shared,
                &Response::Event {
                    seq: next,
                    line: lines[next as usize].to_string(),
                },
            )?;
            next += 1;
        }
        let state = shared
            .registry
            .read_status(job)
            .map(|s| s.state)
            .unwrap_or(JobState::Failed);
        if state.is_terminal() && (next as usize) >= available {
            return send(stream, shared, &Response::End { state });
        }
        if shared.stop.load(Ordering::Relaxed) {
            // Stopping mid-stream: just drop; the client reconnects to
            // whoever adopts the job.
            return Ok(());
        }
        std::thread::sleep(POLL);
    }
}

/// Worker body: dequeue → win the lease → execute → publish (fenced).
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    shared
                        .recorder
                        .gauge(service_metrics::JOBS_QUEUED)
                        .set(queue.len() as i64);
                    break job;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = q;
            }
        };
        run_one_job(shared, &job);
    }
}

/// Executes one dequeued job id end to end. Every early return is a
/// case where someone else owns (or finished) the job — never an error
/// the queue needs to care about.
fn run_one_job(shared: &Arc<Shared>, job: &str) {
    use crate::service::lease::now_ms;

    let Ok(status) = shared.registry.read_status(job) else {
        return;
    };
    if status.state.is_terminal() {
        return;
    }
    // Win the lease: fresh acquire on a free job, fenced takeover on a
    // stale one, retreat when someone else holds it live.
    let lease_file = shared.registry.lease(job);
    let ttl_ms = shared.lease_ttl.as_millis() as u64;
    let lease = match lease_file.read() {
        Ok(None) => lease_file.acquire(status.epoch + 1).unwrap_or(None),
        Ok(Some(current)) if current.is_stale(ttl_ms, now_ms()) => {
            let adopted = lease_file.takeover(&current).unwrap_or(None);
            if adopted.is_some() {
                shared.recorder.counter(service_metrics::ADOPTED).incr();
            }
            adopted
        }
        _ => None,
    };
    let Some(lease) = lease else { return };

    shared
        .running
        .lock()
        .expect("running lock")
        .insert(job.to_string());
    shared.recorder.gauge(service_metrics::JOBS_RUNNING).add(1);

    let outcome = execute(shared, job, &lease);

    let _ = lease_file.release(&lease);
    shared.running.lock().expect("running lock").remove(job);
    shared.recorder.gauge(service_metrics::JOBS_RUNNING).sub(1);
    match outcome {
        ExecOutcome::Published => shared.recorder.counter(service_metrics::JOBS_DONE).incr(),
        ExecOutcome::Fenced => {} // the successor publishes
        ExecOutcome::Retry => {
            // Crash-only retry: the job is still non-terminal on disk
            // and now leaseless, exactly like a crashed daemon's
            // orphan. Requeue immediately; the sweep is the backstop.
            shared.enqueue(job);
        }
        ExecOutcome::Failed => shared.recorder.counter(service_metrics::JOBS_FAILED).incr(),
    }
}

/// How one execution attempt ended.
enum ExecOutcome {
    /// The result was published; the job is done.
    Published,
    /// Fenced off mid-run; a successor owns the job now and this
    /// worker's output was discarded.
    Fenced,
    /// A transient failure (checkpoint/progress I/O, including injected
    /// chaos). The job stays non-terminal and leaseless, so adoption
    /// retries it — resuming whatever the checkpoint already holds.
    Retry,
    /// A permanent failure, published as `Failed`.
    Failed,
}

/// Why a job body could not produce a result.
enum JobError {
    /// Worth retrying from the durable checkpoint (I/O trouble).
    Transient(String),
    /// Retrying cannot help (bad spec, exhausted supervision).
    Fatal(String),
}

/// Runs the job under `lease` and reports how the attempt ended.
fn execute(shared: &Arc<Shared>, job: &str, lease: &crate::service::lease::Lease) -> ExecOutcome {
    let lease_file = shared.registry.lease(job);
    let running = JobStatus {
        state: JobState::Running,
        detail: String::new(),
        recovered_lines: 0,
        resumed_networks: 0,
        epoch: lease.epoch,
    };
    if shared.registry.write_status(job, &running).is_err() {
        return ExecOutcome::Retry;
    }

    // Heartbeat: renew at TTL/4; a failed renewal (epoch moved) means
    // this worker has been fenced off and must discard its work.
    let hb_done = Arc::new(AtomicBool::new(false));
    let hb_fenced = Arc::new(AtomicBool::new(false));
    let hb = {
        let done = Arc::clone(&hb_done);
        let fenced = Arc::clone(&hb_fenced);
        let lease_file = lease_file.clone();
        let lease = *lease;
        let interval = (shared.lease_ttl / 4).max(Duration::from_millis(10));
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if done.load(Ordering::Relaxed) {
                    break;
                }
                match lease_file.renew(&lease) {
                    Ok(true) => {}
                    Ok(false) => {
                        fenced.store(true, Ordering::Relaxed);
                        break;
                    }
                    // Transient I/O on a renew is survivable until the
                    // TTL runs out; keep trying.
                    Err(_) => {}
                }
            }
        })
    };

    let result = run_job_body(shared, job);

    hb_done.store(true, Ordering::Relaxed);
    let _ = hb.join();

    // Fencing checks: the heartbeat's verdict plus one final epoch read
    // immediately before publication.
    let still_owner = !hb_fenced.load(Ordering::Relaxed)
        && matches!(lease_file.read(), Ok(Some(current)) if current.epoch == lease.epoch);
    if !still_owner {
        return ExecOutcome::Fenced;
    }

    match result {
        Ok((csv, mut status)) => {
            status.epoch = lease.epoch;
            if shared.registry.write_result(job, &csv).is_err()
                || shared.registry.write_status(job, &status).is_err()
            {
                // The result did not land durably: same as crashing
                // before publication — the next owner republishes.
                return ExecOutcome::Retry;
            }
            ExecOutcome::Published
        }
        Err(JobError::Transient(message)) => {
            eprintln!("accu-serve: job {job} hit transient trouble, will retry: {message}");
            ExecOutcome::Retry
        }
        Err(JobError::Fatal(message)) => {
            let _ = shared.registry.write_status(
                job,
                &JobStatus {
                    state: JobState::Failed,
                    detail: message,
                    recovered_lines: 0,
                    resumed_networks: 0,
                    epoch: lease.epoch,
                },
            );
            ExecOutcome::Failed
        }
    }
}

/// The computation itself: resolve the spec, resume the checkpoint, run
/// the hardened runner, render the CSV. Returns the result CSV and the
/// `Done` status to publish (the caller stamps the epoch and decides
/// whether publication is still allowed).
fn run_job_body(shared: &Arc<Shared>, job: &str) -> Result<(String, JobStatus), JobError> {
    let spec = shared.registry.read_spec(job).map_err(|e| match e {
        RegistryError::Io(e) => JobError::Transient(format!("spec read failed: {e}")),
        RegistryError::Rejected(m) => JobError::Fatal(m),
    })?;
    let figure = spec.figure().map_err(JobError::Fatal)?;
    let policy = spec.policy_kind().map_err(JobError::Fatal)?;
    let mut checkpoint = Checkpoint::open(shared.registry.checkpoint_path(job), true)
        .map_err(|e| JobError::Transient(format!("checkpoint open failed: {e}")))?;
    match &shared.ckpt_site {
        Some(site) => checkpoint.attach_chaos_site(site),
        None => checkpoint.attach_chaos(&shared.chaos),
    }
    // Progress restarts from sequence 0 on every (re)execution: the
    // stream documents *this* attempt, and watch clients treat a seq
    // reset after reconnect as a new attempt.
    let observer = Observer::to_path_quiet(shared.registry.progress_path(job))
        .map_err(|e| JobError::Transient(format!("progress sink failed: {e}")))?;
    let report = run_policy_with(
        &figure,
        policy,
        RunOptions {
            recorder: shared.recorder.clone(),
            observer,
            checkpoint: Some(&mut checkpoint),
            max_workers: Some(2),
            chaos: shared.chaos,
            supervisor: shared.supervisor,
            ..RunOptions::default()
        },
    )
    .map_err(|e| match e {
        // Checkpoint I/O trouble (including injected chaos) is the
        // crash-shaped failure: whatever prefix landed durably, a
        // re-adoption resumes it. Everything else is a real failure.
        RunnerError::Checkpoint(e) => JobError::Transient(format!("checkpoint I/O failed: {e}")),
        other => JobError::Fatal(other.to_string()),
    })?;

    let mut notes = Vec::new();
    if report.checkpoint_skipped_lines > 0 {
        notes.push(format!(
            "recovered from torn checkpoint ({} line{} dropped)",
            report.checkpoint_skipped_lines,
            if report.checkpoint_skipped_lines == 1 {
                ""
            } else {
                "s"
            }
        ));
    }
    if report.resumed_networks > 0 {
        notes.push(format!(
            "resumed {} network(s) from checkpoint",
            report.resumed_networks
        ));
    }
    let csv = crate::service::spec::result_csv(&figure, policy, &report.accumulator);
    Ok((
        csv,
        JobStatus {
            state: JobState::Done,
            detail: notes.join("; "),
            recovered_lines: report.checkpoint_skipped_lines,
            resumed_networks: report.resumed_networks,
            epoch: 0, // stamped by the caller
        },
    ))
}

/// Adoption sweeper: runs a sweep immediately at startup (crash-only
/// recovery is just "start"), then re-sweeps at half the lease TTL so
/// stale leases are adopted promptly after they expire.
fn sweeper_loop(shared: &Arc<Shared>) {
    let interval = (shared.lease_ttl / 2).max(Duration::from_millis(50));
    loop {
        if let Ok(orphans) = shared.registry.orphans() {
            for id in orphans {
                shared.enqueue(&id);
            }
        }
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        std::thread::sleep(interval);
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
    }
}
