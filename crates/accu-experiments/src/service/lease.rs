//! Advisory job leases: at-most-once execution over a shared on-disk
//! registry, built from two filesystem atomics and no `unsafe`.
//!
//! A lease is a single file (`<job>/lease`) holding the owner's pid, a
//! monotonically increasing *epoch*, and the last heartbeat timestamp.
//! Three operations cover the whole lifecycle, each arbitrated by an
//! operation POSIX makes atomic:
//!
//! * **acquire** — write a complete temp sibling, then
//!   `fs::hard_link(tmp, lease)`. Creating a link fails with
//!   `AlreadyExists` when the name is taken, so exactly one of any
//!   number of racing daemons obtains a free lease.
//! * **renew** — the owner re-reads the file, bails if the epoch is no
//!   longer its own (it has been fenced off), and otherwise replaces
//!   the file via temp + `rename` with a fresh heartbeat.
//! * **takeover** — a daemon that observes a *stale* lease (heartbeat
//!   older than the TTL, or a provably dead owner pid) first *fences*
//!   it: `rename(lease, lease.stale.<epoch>.<nonce>)`. Rename of a
//!   missing source fails with `NotFound`, so exactly one of any number
//!   of racing adopters wins the fence; the winner then acquires a
//!   fresh lease at `epoch + 1`.
//!
//! The epoch is the fencing token: a zombie owner that wakes up after a
//! takeover finds a different epoch on its next renew and must discard
//! its work instead of publishing it. The daemon re-checks the epoch
//! once more immediately before writing results, closing the window
//! between the last heartbeat and the final write.
//!
//! ```text
//!              acquire (hard_link wins)
//!    FREE ────────────────────────────────▶ HELD(epoch=e)
//!     ▲                                        │     ▲
//!     │ release (epoch matches)          renew │     │ renew ok
//!     │                                        ▼     │ (epoch = e)
//!     └──────────────────────────────────── HELD(epoch=e)
//!                                              │
//!                                              │ TTL expires / owner dies
//!                                              ▼
//!                                           STALE(epoch=e)
//!                                              │
//!                                              │ takeover: rename fence
//!                                              │ (one winner), re-acquire
//!                                              ▼
//!                                          HELD(epoch=e+1)
//! ```

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Process-unique counter for temp-sibling names, so concurrent
/// acquires within one process never collide on the temp file either.
static TMP_NONCE: AtomicU64 = AtomicU64::new(0);

/// The contents of a lease file: who holds the job, under which fencing
/// epoch, and when they last proved liveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Owner process id (informational plus, on Linux, a liveness
    /// probe).
    pub pid: u32,
    /// Fencing token: strictly increases across takeovers.
    pub epoch: u64,
    /// Last heartbeat, in milliseconds since the Unix epoch.
    pub beat_ms: u64,
}

impl Lease {
    /// Serializes as single-line JSON.
    fn to_json(self) -> String {
        format!(
            "{{\"pid\":{},\"epoch\":{},\"beat_ms\":{}}}",
            self.pid, self.epoch, self.beat_ms
        )
    }

    /// Parses the JSON form; any malformation yields `None` (callers
    /// treat a corrupt lease as maximally stale rather than erroring).
    fn from_json(text: &str) -> Option<Lease> {
        let doc = accu_telemetry::parse_json(text).ok()?;
        Some(Lease {
            pid: doc.get("pid")?.as_u64()? as u32,
            epoch: doc.get("epoch")?.as_u64()?,
            beat_ms: doc.get("beat_ms")?.as_u64()?,
        })
    }

    /// Whether this lease no longer proves liveness: the heartbeat is
    /// older than `ttl_ms`, or (on Linux) the owner pid demonstrably no
    /// longer exists. A corrupt lease parses as `beat_ms == 0` and is
    /// therefore always stale.
    pub fn is_stale(&self, ttl_ms: u64, now_ms: u64) -> bool {
        if now_ms.saturating_sub(self.beat_ms) > ttl_ms {
            return true;
        }
        #[cfg(target_os = "linux")]
        {
            if self.pid != 0
                && self.pid != std::process::id()
                && !Path::new(&format!("/proc/{}", self.pid)).exists()
            {
                return true;
            }
        }
        false
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before 1970).
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Handle on one job's lease file.
#[derive(Debug, Clone)]
pub struct LeaseFile {
    path: PathBuf,
}

impl LeaseFile {
    /// The lease file inside job directory `dir`.
    pub fn new(dir: &Path) -> Self {
        LeaseFile {
            path: dir.join("lease"),
        }
    }

    /// The lease path (for diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads the current lease; `None` when the file does not exist. A
    /// file that exists but does not parse is reported as an all-zero
    /// lease (epoch 0, beat 0 — maximally stale), because a torn lease
    /// write must be adoptable, not a wedge.
    ///
    /// # Errors
    ///
    /// Any I/O error other than `NotFound`.
    pub fn read(&self) -> io::Result<Option<Lease>> {
        match fs::read_to_string(&self.path) {
            Ok(text) => Ok(Some(Lease::from_json(text.trim()).unwrap_or(Lease {
                pid: 0,
                epoch: 0,
                beat_ms: 0,
            }))),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Tries to acquire a *free* lease at `epoch`: writes a complete,
    /// synced temp sibling and hard-links it into place. Returns the
    /// granted lease, or `None` when another process holds the name
    /// (the `AlreadyExists` losing side of the race).
    ///
    /// # Errors
    ///
    /// Any I/O error other than the lost race.
    pub fn acquire(&self, epoch: u64) -> io::Result<Option<Lease>> {
        let lease = Lease {
            pid: std::process::id(),
            epoch,
            beat_ms: now_ms(),
        };
        let tmp = self.tmp_name();
        {
            let mut file = fs::File::create(&tmp)?;
            io::Write::write_all(&mut file, lease.to_json().as_bytes())?;
            file.sync_all()?;
        }
        let outcome = match fs::hard_link(&tmp, &self.path) {
            Ok(()) => Ok(Some(lease)),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(None),
            Err(e) => Err(e),
        };
        let _ = fs::remove_file(&tmp);
        outcome
    }

    /// Renews `lease`'s heartbeat. Returns `false` when the on-disk
    /// epoch is no longer `lease.epoch` (or the file vanished): the
    /// caller has been fenced off by a takeover and must stop
    /// publishing results for this job.
    ///
    /// # Errors
    ///
    /// Any I/O error during the read or replacement.
    pub fn renew(&self, lease: &Lease) -> io::Result<bool> {
        match self.read()? {
            Some(current) if current.epoch == lease.epoch => {}
            _ => return Ok(false),
        }
        let fresh = Lease {
            beat_ms: now_ms(),
            ..*lease
        };
        let tmp = self.tmp_name();
        {
            let mut file = fs::File::create(&tmp)?;
            io::Write::write_all(&mut file, fresh.to_json().as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        Ok(true)
    }

    /// Releases `lease` if (and only if) the on-disk epoch still
    /// matches — a fenced-off zombie releasing late must not destroy
    /// its successor's lease.
    ///
    /// # Errors
    ///
    /// Any I/O error during the read or removal.
    pub fn release(&self, lease: &Lease) -> io::Result<()> {
        match self.read()? {
            Some(current) if current.epoch == lease.epoch => match fs::remove_file(&self.path) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(e),
            },
            _ => Ok(()),
        }
    }

    /// Attempts to take over `stale`: fences the old lease by renaming
    /// it aside (exactly one racer's rename succeeds; losers see
    /// `NotFound`), then acquires a fresh lease at `stale.epoch + 1`.
    /// Returns the new lease, or `None` when the race was lost.
    ///
    /// Rename cannot compare-and-swap, so a racer that already finished
    /// its takeover could be fenced by mistake; the fenced file's epoch
    /// is therefore verified after the rename, and on mismatch the
    /// live lease is restored (hard-link back) and the attempt
    /// retreats. The restored owner may observe one spurious failed
    /// renew in that window — it then discards its work and the job is
    /// re-adopted after the TTL, so at-most-once publication holds
    /// either way.
    ///
    /// # Errors
    ///
    /// Any I/O error other than a lost race.
    pub fn takeover(&self, stale: &Lease) -> io::Result<Option<Lease>> {
        // Cheap pre-check: the lease we were asked to adopt must still
        // be the one on disk.
        match self.read()? {
            Some(current) if current.epoch == stale.epoch => {}
            _ => return Ok(None),
        }
        let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
        let fence = self.path.with_file_name(format!(
            "lease.stale.{}.{}.{nonce}",
            stale.epoch,
            std::process::id()
        ));
        match fs::rename(&self.path, &fence) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        // Post-fence verification: if the epoch moved between the
        // pre-check and the rename, we fenced a successor's live lease.
        let fenced = fs::read_to_string(&fence)
            .ok()
            .and_then(|t| Lease::from_json(t.trim()));
        if fenced.is_some_and(|l| l.epoch != stale.epoch) {
            let _ = fs::hard_link(&fence, &self.path);
            let _ = fs::remove_file(&fence);
            return Ok(None);
        }
        let acquired = self.acquire(stale.epoch + 1);
        let _ = fs::remove_file(&fence);
        acquired
    }

    /// A process-unique temp sibling for complete-before-visible lease
    /// writes.
    fn tmp_name(&self) -> PathBuf {
        let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
        self.path
            .with_file_name(format!("lease.tmp.{}.{nonce}", std::process::id()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_job_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "accu_lease_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_renew_release_round_trip() {
        let dir = temp_job_dir("round");
        let lf = LeaseFile::new(&dir);
        assert_eq!(lf.read().unwrap(), None);
        let lease = lf.acquire(1).unwrap().expect("free lease is granted");
        assert_eq!(lease.epoch, 1);
        assert_eq!(lf.read().unwrap().unwrap().epoch, 1);
        assert!(lf.renew(&lease).unwrap());
        lf.release(&lease).unwrap();
        assert_eq!(lf.read().unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_acquire_loses_the_race() {
        let dir = temp_job_dir("second");
        let lf = LeaseFile::new(&dir);
        assert!(lf.acquire(1).unwrap().is_some());
        assert!(
            lf.acquire(1).unwrap().is_none(),
            "held lease is not re-granted"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn takeover_fences_the_old_epoch() {
        let dir = temp_job_dir("fence");
        let lf = LeaseFile::new(&dir);
        let old = lf.acquire(3).unwrap().unwrap();
        let new = lf
            .takeover(&old)
            .unwrap()
            .expect("takeover of present lease");
        assert_eq!(new.epoch, 4);
        // The zombie's renew and release are both fenced off.
        assert!(!lf.renew(&old).unwrap());
        lf.release(&old).unwrap();
        assert_eq!(
            lf.read().unwrap().unwrap().epoch,
            4,
            "zombie release is a no-op"
        );
        // A second takeover attempt against the *old* lease loses: the
        // pre-check sees epoch 4 on disk, not 3.
        assert!(lf.takeover(&old).unwrap().is_none());
        assert_eq!(lf.read().unwrap().unwrap().epoch, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lease_reads_as_maximally_stale() {
        let dir = temp_job_dir("corrupt");
        let lf = LeaseFile::new(&dir);
        fs::write(lf.path(), b"{\"pid\":12,\"epo").unwrap(); // torn write
        let lease = lf.read().unwrap().unwrap();
        assert_eq!(lease.beat_ms, 0);
        assert!(lease.is_stale(60_000, now_ms()));
        // And it is adoptable.
        assert!(lf.takeover(&lease).unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn staleness_is_ttl_driven() {
        let fresh = Lease {
            pid: std::process::id(),
            epoch: 1,
            beat_ms: now_ms(),
        };
        assert!(!fresh.is_stale(5_000, now_ms()));
        assert!(fresh.is_stale(5_000, now_ms() + 6_000));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn dead_owner_pid_is_stale_before_the_ttl() {
        // Pid 4_000_000 is above the default pid_max; /proc/<pid> for a
        // never-alive pid does not exist.
        let dead = Lease {
            pid: 4_000_000,
            epoch: 1,
            beat_ms: now_ms(),
        };
        assert!(dead.is_stale(3_600_000, now_ms()));
    }

    #[test]
    fn racing_acquires_grant_exactly_one() {
        let dir = temp_job_dir("race");
        let winners: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let lf = LeaseFile::new(&dir);
                    scope.spawn(move || lf.acquire(1).unwrap().is_some() as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_takeovers_have_one_winner() {
        let dir = temp_job_dir("race-takeover");
        let lf = LeaseFile::new(&dir);
        let stale = lf.acquire(7).unwrap().unwrap();
        let winners: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let lf = LeaseFile::new(&dir);
                    scope.spawn(move || lf.takeover(&stale).unwrap().is_some() as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        assert_eq!(lf.read().unwrap().unwrap().epoch, 8);
        let _ = fs::remove_dir_all(&dir);
    }
}
