//! Crash-only ACCU experiment service.
//!
//! This module turns the batch experiment runner into a long-lived,
//! restartable daemon without adding any shutdown machinery — the
//! crash-only discipline ([Candea & Fox, HotOS '03]) applied to the
//! ACCU reproduction: the *only* stop mechanism is process death, and
//! recovery is indistinguishable from a cold start.
//!
//! The pieces, bottom up:
//!
//! - [`spec`] — [`JobSpec`]: a canonically-serialized experiment
//!   description whose hash keys idempotent submission.
//! - [`lease`] — [`LeaseFile`]: epoch-fenced ownership of one job,
//!   built from `hard_link`/`rename` atomicity (no flock, no unsafe),
//!   with stale-lease takeover so any daemon can adopt a crashed
//!   daemon's jobs.
//! - [`registry`] — [`Registry`]: the durable job store; one directory
//!   per job (`spec.json`, `lease`, `status.json`, `checkpoint.jsonl`,
//!   `progress.jsonl`, `result.csv`), every write atomic-rename'd and
//!   chaos-injectable at site `"registry"`.
//! - [`protocol`] — length-prefixed JSON frames over loopback TCP;
//!   every request idempotent, so torn frames are always retry-safe.
//! - [`daemon`] — [`Daemon`]: accept loop, admission control, lease-
//!   fenced workers, heartbeats, and the adoption sweeper.
//! - [`client`] — [`ServiceClient`]: jittered-backoff retries and a
//!   reconnect-resuming watch stream.
//!
//! The load-bearing invariants, each covered by tests:
//!
//! 1. **At-most-once execution per epoch**: two daemons sharing one
//!    registry never double-run a job; result publication re-checks the
//!    lease epoch so a fenced zombie cannot overwrite its successor.
//! 2. **Byte-identical recovery**: a job resumed after `SIGKILL` (torn
//!    checkpoint tail and all) produces a result CSV byte-identical to
//!    an uninterrupted batch run of the same spec.
//! 3. **Idempotent resubmission**: resubmitting a finished job returns
//!    the cached result without re-execution; resubmitting an in-flight
//!    job attaches to it.

pub mod client;
pub mod daemon;
pub mod lease;
pub mod protocol;
pub mod registry;
pub mod spec;

pub use client::{ClientError, ServiceClient};
pub use daemon::{Daemon, DaemonConfig};
pub use lease::{now_ms, Lease, LeaseFile};
pub use protocol::{
    read_frame, write_frame, DaemonHealth, JobRow, Request, Response, ServiceSummary, MAX_FRAME,
};
pub use registry::{JobState, JobStatus, Registry, RegistryError, SubmitOutcome};
pub use spec::{result_csv, validate_job_id, JobSpec};
