//! The loopback wire protocol between `accu-cli` and `accu-serve`:
//! length-prefixed JSON frames over TCP.
//!
//! A frame is a little-endian `u32` byte length followed by exactly
//! that many bytes of UTF-8 JSON. The length prefix makes torn frames
//! *detectable*: a connection dropped (or chaos-torn) mid-frame leaves
//! the reader with an `UnexpectedEof`, never a silently truncated
//! document — which is what lets the client treat every transport error
//! as retryable, because every request in the protocol is idempotent by
//! construction (submission is keyed, reads are pure, cancel of a
//! cancelled job is a no-op).

use std::io::{self, Read, Write};

use accu_telemetry::{json_escape, parse_json, Json};

use crate::service::registry::{JobState, JobStatus};
use crate::service::spec::JobSpec;

/// Upper bound on one frame — far above any real request or CSV, low
/// enough that a corrupt length prefix cannot trigger a huge
/// allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one frame.
///
/// # Errors
///
/// Any underlying I/O error, or an oversized payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::other(format!(
            "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame.
///
/// # Errors
///
/// `UnexpectedEof` for a connection closed mid-frame, an error for an
/// oversized or non-UTF-8 frame, or any underlying I/O error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<String> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::other(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| io::Error::other("frame is not UTF-8"))
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit (idempotently) `spec` under the client-chosen id `job`.
    Submit {
        /// Client-chosen job id (`[A-Za-z0-9_-]{1,64}`).
        job: String,
        /// The experiment to run.
        spec: JobSpec,
    },
    /// Read the job's status record.
    Status {
        /// Job id.
        job: String,
    },
    /// Read the finished job's result CSV.
    Result {
        /// Job id.
        job: String,
    },
    /// Stream the job's progress lines starting at sequence `from`,
    /// ending with an [`Response::End`] once the job is terminal.
    Watch {
        /// Job id.
        job: String,
        /// First progress-line sequence number wanted (0-based).
        from: u64,
    },
    /// Cancel a queued job.
    Cancel {
        /// Job id.
        job: String,
    },
    /// Daemon health probe: pid, uptime, queue and registry counts.
    Health,
    /// Daemon-wide status: per-job phases plus the journal tail.
    ServiceStatus {
        /// Number of journal tail lines wanted (0 = none).
        tail: u64,
    },
    /// Ask the daemon to stop accepting and exit.
    Shutdown,
}

impl Request {
    /// Wire encoding.
    pub fn to_json(&self) -> String {
        match self {
            Request::Ping => "{\"type\":\"ping\"}".to_string(),
            Request::Submit { job, spec } => format!(
                "{{\"type\":\"submit\",\"job\":\"{}\",\"spec\":{}}}",
                json_escape(job),
                spec.to_json()
            ),
            Request::Status { job } => {
                format!("{{\"type\":\"status\",\"job\":\"{}\"}}", json_escape(job))
            }
            Request::Result { job } => {
                format!("{{\"type\":\"result\",\"job\":\"{}\"}}", json_escape(job))
            }
            Request::Watch { job, from } => format!(
                "{{\"type\":\"watch\",\"job\":\"{}\",\"from\":{from}}}",
                json_escape(job)
            ),
            Request::Cancel { job } => {
                format!("{{\"type\":\"cancel\",\"job\":\"{}\"}}", json_escape(job))
            }
            Request::Health => "{\"type\":\"health\"}".to_string(),
            Request::ServiceStatus { tail } => {
                format!("{{\"type\":\"service_status\",\"tail\":{tail}}}")
            }
            Request::Shutdown => "{\"type\":\"shutdown\"}".to_string(),
        }
    }

    /// Parses the wire encoding.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or an unknown type.
    pub fn from_json(text: &str) -> Result<Request, String> {
        let doc = parse_json(text)?;
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or("request missing type")?;
        let job = |doc: &Json| -> Result<String, String> {
            doc.get("job")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| "request missing job id".to_string())
        };
        match kind {
            "ping" => Ok(Request::Ping),
            "submit" => {
                let spec_json = doc.get("spec").ok_or("submit missing spec")?;
                // Re-render the subtree so JobSpec::from_json can parse
                // it with its own defaults.
                Ok(Request::Submit {
                    job: job(&doc)?,
                    spec: JobSpec::from_json(&render(spec_json))?,
                })
            }
            "status" => Ok(Request::Status { job: job(&doc)? }),
            "result" => Ok(Request::Result { job: job(&doc)? }),
            "watch" => Ok(Request::Watch {
                job: job(&doc)?,
                from: doc.get("from").and_then(Json::as_u64).unwrap_or(0),
            }),
            "cancel" => Ok(Request::Cancel { job: job(&doc)? }),
            "health" => Ok(Request::Health),
            "service_status" => Ok(Request::ServiceStatus {
                tail: doc.get("tail").and_then(Json::as_u64).unwrap_or(0),
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type {other:?}")),
        }
    }
}

/// Daemon health: one line of vitals, cheap enough to poll.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DaemonHealth {
    /// Daemon process id.
    pub pid: u32,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Jobs waiting in the in-memory queue.
    pub queued: usize,
    /// Jobs currently executing in this daemon.
    pub running: usize,
    /// Registry jobs in the `done` state.
    pub done: usize,
    /// Registry jobs in the `failed` state.
    pub failed: usize,
    /// Total jobs in the registry.
    pub jobs: usize,
}

/// One row of the daemon-wide status report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRow {
    /// Job id.
    pub job: String,
    /// Durable lifecycle state.
    pub state: JobState,
    /// Lease fencing epoch recorded on the status.
    pub epoch: u64,
    /// Human-readable phase detail from the status record.
    pub detail: String,
}

/// The daemon-wide status report: registry summary plus journal tail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Vitals (same shape as the `health` verb).
    pub health: DaemonHealth,
    /// Every registry job, in id order.
    pub jobs: Vec<JobRow>,
    /// The most recent journal lines (raw JSONL), oldest first.
    pub journal_tail: Vec<String>,
}

impl DaemonHealth {
    /// The field list shared by the `health` reply and the summary's
    /// embedded vitals (no `"type"` key).
    fn body_json(&self) -> String {
        format!(
            "\"pid\":{},\"uptime_ms\":{},\"queued\":{},\"running\":{},\
             \"done\":{},\"failed\":{},\"jobs\":{}",
            self.pid, self.uptime_ms, self.queued, self.running, self.done, self.failed, self.jobs
        )
    }

    fn from_doc(doc: &Json) -> Result<DaemonHealth, String> {
        let field = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("health missing {key}"))
        };
        Ok(DaemonHealth {
            pid: field("pid")? as u32,
            uptime_ms: field("uptime_ms")?,
            queued: field("queued")? as usize,
            running: field("running")? as usize,
            done: field("done")? as usize,
            failed: field("failed")? as usize,
            jobs: field("jobs")? as usize,
        })
    }
}

/// A daemon response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness reply with the daemon's pid.
    Pong {
        /// Daemon process id.
        pid: u32,
    },
    /// Submission accepted (idempotently).
    Accepted {
        /// Job id.
        job: String,
        /// Current lifecycle state.
        state: JobState,
        /// The job had already finished; the result is served from the
        /// registry without re-execution.
        cached: bool,
        /// The job was already queued or running; this submission
        /// attached to it.
        attached: bool,
    },
    /// Status record.
    Status {
        /// Job id.
        job: String,
        /// The durable status record.
        status: JobStatus,
    },
    /// Finished result.
    ResultCsv {
        /// Job id.
        job: String,
        /// The result CSV, byte-identical to a batch run of the spec.
        csv: String,
    },
    /// One progress line in a watch stream.
    Event {
        /// 0-based line sequence number (resume key for reconnects).
        seq: u64,
        /// The raw progress JSONL line.
        line: String,
    },
    /// End of a watch stream: the job reached a terminal state.
    End {
        /// The terminal state.
        state: JobState,
    },
    /// Health-probe reply.
    Health(DaemonHealth),
    /// Daemon-wide status reply.
    Summary(ServiceSummary),
    /// Admission control rejected the submission; retry later.
    Overloaded {
        /// Jobs currently executing.
        running: usize,
        /// Jobs waiting in the queue.
        queued: usize,
        /// The configured queue capacity.
        cap: usize,
    },
    /// The request failed; `message` says why.
    Err {
        /// Human-readable failure reason.
        message: String,
    },
}

impl Response {
    /// Wire encoding.
    pub fn to_json(&self) -> String {
        match self {
            Response::Pong { pid } => format!("{{\"type\":\"pong\",\"pid\":{pid}}}"),
            Response::Accepted {
                job,
                state,
                cached,
                attached,
            } => format!(
                "{{\"type\":\"accepted\",\"job\":\"{}\",\"state\":\"{}\",\
                 \"cached\":{cached},\"attached\":{attached}}}",
                json_escape(job),
                state.as_str()
            ),
            Response::Status { job, status } => format!(
                "{{\"type\":\"status\",\"job\":\"{}\",\"status\":{}}}",
                json_escape(job),
                status.to_json()
            ),
            Response::ResultCsv { job, csv } => format!(
                "{{\"type\":\"result\",\"job\":\"{}\",\"csv\":\"{}\"}}",
                json_escape(job),
                json_escape(csv)
            ),
            Response::Event { seq, line } => format!(
                "{{\"type\":\"event\",\"seq\":{seq},\"line\":\"{}\"}}",
                json_escape(line)
            ),
            Response::End { state } => {
                format!("{{\"type\":\"end\",\"state\":\"{}\"}}", state.as_str())
            }
            Response::Health(health) => {
                format!("{{\"type\":\"health\",{}}}", health.body_json())
            }
            Response::Summary(summary) => {
                let jobs: Vec<String> = summary
                    .jobs
                    .iter()
                    .map(|row| {
                        format!(
                            "{{\"job\":\"{}\",\"state\":\"{}\",\"epoch\":{},\"detail\":\"{}\"}}",
                            json_escape(&row.job),
                            row.state.as_str(),
                            row.epoch,
                            json_escape(&row.detail)
                        )
                    })
                    .collect();
                let tail: Vec<String> = summary
                    .journal_tail
                    .iter()
                    .map(|line| format!("\"{}\"", json_escape(line)))
                    .collect();
                format!(
                    "{{\"type\":\"service_status\",\"health\":{{{}}},\
                     \"jobs\":[{}],\"tail\":[{}]}}",
                    summary.health.body_json(),
                    jobs.join(","),
                    tail.join(",")
                )
            }
            Response::Overloaded {
                running,
                queued,
                cap,
            } => format!(
                "{{\"type\":\"overloaded\",\"running\":{running},\"queued\":{queued},\"cap\":{cap}}}"
            ),
            Response::Err { message } => {
                format!("{{\"type\":\"err\",\"message\":\"{}\"}}", json_escape(message))
            }
        }
    }

    /// Parses the wire encoding.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or an unknown type.
    pub fn from_json(text: &str) -> Result<Response, String> {
        let doc = parse_json(text)?;
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or("response missing type")?;
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("response missing {key}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("response missing {key}"))
        };
        match kind {
            "pong" => Ok(Response::Pong {
                pid: u64_field("pid")? as u32,
            }),
            "accepted" => Ok(Response::Accepted {
                job: str_field("job")?,
                state: JobState::parse(&str_field("state")?)?,
                cached: doc.get("cached").and_then(Json::as_bool).unwrap_or(false),
                attached: doc.get("attached").and_then(Json::as_bool).unwrap_or(false),
            }),
            "status" => {
                let status_json = doc.get("status").ok_or("response missing status")?;
                Ok(Response::Status {
                    job: str_field("job")?,
                    status: JobStatus::from_json(&render(status_json))?,
                })
            }
            "result" => Ok(Response::ResultCsv {
                job: str_field("job")?,
                csv: str_field("csv")?,
            }),
            "event" => Ok(Response::Event {
                seq: u64_field("seq")?,
                line: str_field("line")?,
            }),
            "end" => Ok(Response::End {
                state: JobState::parse(&str_field("state")?)?,
            }),
            "health" => Ok(Response::Health(DaemonHealth::from_doc(&doc)?)),
            "service_status" => {
                let health = DaemonHealth::from_doc(
                    doc.get("health").ok_or("service_status missing health")?,
                )?;
                let mut jobs = Vec::new();
                if let Some(Json::Arr(rows)) = doc.get("jobs") {
                    for row in rows {
                        let field = |key: &str| -> Result<String, String> {
                            row.get(key)
                                .and_then(Json::as_str)
                                .map(str::to_string)
                                .ok_or_else(|| format!("job row missing {key}"))
                        };
                        jobs.push(JobRow {
                            job: field("job")?,
                            state: JobState::parse(&field("state")?)?,
                            epoch: row.get("epoch").and_then(Json::as_u64).unwrap_or(0),
                            detail: field("detail")?,
                        });
                    }
                }
                let mut journal_tail = Vec::new();
                if let Some(Json::Arr(lines)) = doc.get("tail") {
                    for line in lines {
                        journal_tail.push(
                            line.as_str()
                                .ok_or("journal tail line is not a string")?
                                .to_string(),
                        );
                    }
                }
                Ok(Response::Summary(ServiceSummary {
                    health,
                    jobs,
                    journal_tail,
                }))
            }
            "overloaded" => Ok(Response::Overloaded {
                running: u64_field("running")? as usize,
                queued: u64_field("queued")? as usize,
                cap: u64_field("cap")? as usize,
            }),
            "err" => Ok(Response::Err {
                message: str_field("message")?,
            }),
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

/// Re-renders a parsed [`Json`] subtree back to text, so nested
/// documents (spec, status) can be handed to their own parsers.
fn render(value: &Json) -> String {
    match value {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(x) => {
            if x.fract() == 0.0 && x.abs() < 9e15 {
                format!("{}", *x as i64)
            } else {
                format!("{x}")
            }
        }
        Json::Str(s) => format!("\"{}\"", json_escape(s)),
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        Json::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", json_escape(k), render(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), "hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), "");
    }

    #[test]
    fn torn_frame_reads_as_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "a longer payload").unwrap();
        buf.truncate(buf.len() - 5); // torn mid-frame
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn requests_round_trip() {
        let all = [
            Request::Ping,
            Request::Submit {
                job: "fig2-smoke".to_string(),
                spec: JobSpec::default(),
            },
            Request::Status {
                job: "j".to_string(),
            },
            Request::Result {
                job: "j".to_string(),
            },
            Request::Watch {
                job: "j".to_string(),
                from: 17,
            },
            Request::Cancel {
                job: "j".to_string(),
            },
            Request::Health,
            Request::ServiceStatus { tail: 20 },
            Request::Shutdown,
        ];
        for req in all {
            assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let all = [
            Response::Pong { pid: 42 },
            Response::Accepted {
                job: "j".to_string(),
                state: JobState::Queued,
                cached: false,
                attached: true,
            },
            Response::Status {
                job: "j".to_string(),
                status: JobStatus {
                    state: JobState::Done,
                    detail: "recovered from torn checkpoint (2 lines dropped)".to_string(),
                    recovered_lines: 2,
                    resumed_networks: 1,
                    epoch: 4,
                },
            },
            Response::ResultCsv {
                job: "j".to_string(),
                csv: "k,ABM\n1,2.5\n".to_string(),
            },
            Response::Event {
                seq: 3,
                line: "{\"event\":\"network\"}".to_string(),
            },
            Response::End {
                state: JobState::Done,
            },
            Response::Overloaded {
                running: 2,
                queued: 16,
                cap: 16,
            },
            Response::Health(DaemonHealth {
                pid: 101,
                uptime_ms: 5_000,
                queued: 1,
                running: 2,
                done: 3,
                failed: 0,
                jobs: 6,
            }),
            Response::Summary(ServiceSummary {
                health: DaemonHealth {
                    pid: 101,
                    uptime_ms: 5_000,
                    queued: 0,
                    running: 1,
                    done: 1,
                    failed: 1,
                    jobs: 3,
                },
                jobs: vec![
                    JobRow {
                        job: "fig2-a".to_string(),
                        state: JobState::Done,
                        epoch: 2,
                        detail: "published".to_string(),
                    },
                    JobRow {
                        job: "fig2-b".to_string(),
                        state: JobState::Running,
                        epoch: 1,
                        detail: String::new(),
                    },
                ],
                journal_tail: vec![
                    "{\"type\":\"journal\",\"kind\":\"job.submit\"}".to_string(),
                    "{\"type\":\"journal\",\"kind\":\"job.publish\"}".to_string(),
                ],
            }),
            Response::Summary(ServiceSummary::default()),
            Response::Err {
                message: "unknown job \"x\"".to_string(),
            },
        ];
        for resp in all {
            assert_eq!(Response::from_json(&resp.to_json()).unwrap(), resp);
        }
    }

    #[test]
    fn unknown_types_are_rejected() {
        assert!(Request::from_json("{\"type\":\"warp\"}").is_err());
        assert!(Response::from_json("{\"type\":\"warp\"}").is_err());
    }
}
