//! The on-disk job registry: one directory per job, every mutation an
//! atomic file replacement, shared safely between any number of daemon
//! processes via the [`lease`](super::lease) protocol.
//!
//! ```text
//! <root>/jobs/<id>/
//!   spec.json        the submitted JobSpec (canonical encoding)
//!   status.json      JobStatus: state machine + diagnostics
//!   lease            advisory ownership (see service::lease)
//!   checkpoint.jsonl PR-2 runner checkpoint (resume granularity)
//!   progress.jsonl   PR-6 observer stream (watch granularity)
//!   result.csv       final CSV, written once, atomically
//! ```
//!
//! Every registry write goes through `atomic_write` (temp sibling +
//! rename + parent fsync): a reader — including a daemon that starts
//! mid-crash — never observes a torn `spec.json`, `status.json`, or
//! `result.csv`. Under chaos, writes are routed through the seeded
//! failpoint site `"registry"` and retried a bounded number of times
//! (the op counter advances per attempt, so the retry schedule is as
//! deterministic as the faults); the registry also hosts the daemon's
//! second kill channel, aborting the process after a configured number
//! of durable registry writes.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use accu_core::ChaosPlan;
use accu_telemetry::{json_escape, parse_json, Corr, FlightRecorder, Journal, Severity};

use crate::chaosfs::{atomic_write, atomic_write_chaos, ChaosSite};
use crate::service::lease::{now_ms, LeaseFile};
use crate::service::spec::{validate_job_id, JobSpec};

/// Injected-fault retry budget per registry write. Deep enough that a
/// soak-level fault probability exhausts it only with negligible
/// (seeded, reproducible) probability.
const WRITE_ATTEMPTS: u32 = 8;

/// Where a job stands in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker (or for adoption).
    Queued,
    /// A lease holder is executing it.
    Running,
    /// Finished; `result.csv` is on disk.
    Done,
    /// Execution failed; `detail` carries the error.
    Failed,
    /// Cancelled while queued.
    Cancelled,
}

impl JobState {
    /// Wire / file encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses the wire / file encoding.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown state.
    pub fn parse(s: &str) -> Result<JobState, String> {
        match s {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed),
            "cancelled" => Ok(JobState::Cancelled),
            other => Err(format!("unknown job state {other:?}")),
        }
    }

    /// Whether the job will never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The durable per-job status record (`status.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Lifecycle state.
    pub state: JobState,
    /// Human-readable diagnostics: the failure message, or recovery
    /// notes like `recovered from torn checkpoint (1 line dropped)`.
    pub detail: String,
    /// Torn checkpoint lines dropped when the (re)run opened its
    /// checkpoint (from `RunReport::checkpoint_skipped_lines`).
    pub recovered_lines: usize,
    /// Networks resumed from the checkpoint rather than recomputed.
    pub resumed_networks: usize,
    /// Lease epoch of the writer (0 before first execution) — shows up
    /// in `accu-cli status` as the number of ownership changes.
    pub epoch: u64,
}

impl std::fmt::Display for JobStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (epoch {})", self.state, self.epoch)?;
        if !self.detail.is_empty() {
            write!(f, " — {}", self.detail)?;
        }
        Ok(())
    }
}

impl JobStatus {
    /// A freshly queued status.
    pub fn queued() -> Self {
        JobStatus {
            state: JobState::Queued,
            detail: String::new(),
            recovered_lines: 0,
            resumed_networks: 0,
            epoch: 0,
        }
    }

    /// Serializes as single-line JSON.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"state\":\"{}\",\"detail\":\"{}\",\"recovered_lines\":{},\
             \"resumed_networks\":{},\"epoch\":{}}}",
            self.state.as_str(),
            json_escape(&self.detail),
            self.recovered_lines,
            self.resumed_networks,
            self.epoch
        )
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or fields.
    pub fn from_json(text: &str) -> Result<JobStatus, String> {
        let doc = parse_json(text)?;
        let state = doc
            .get("state")
            .and_then(|v| v.as_str())
            .ok_or("status missing state")?;
        Ok(JobStatus {
            state: JobState::parse(state)?,
            detail: doc
                .get("detail")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            recovered_lines: doc
                .get("recovered_lines")
                .and_then(|v| v.as_u64())
                .unwrap_or(0) as usize,
            resumed_networks: doc
                .get("resumed_networks")
                .and_then(|v| v.as_u64())
                .unwrap_or(0) as usize,
            epoch: doc.get("epoch").and_then(|v| v.as_u64()).unwrap_or(0),
        })
    }
}

/// What a submission did to the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// New job directory created and queued.
    Created,
    /// The job already finished with the same spec — serve the cached
    /// result, execute nothing.
    Cached,
    /// The job is queued or running under the same spec — attach to it.
    Attached,
    /// The job previously failed or was cancelled; it has been
    /// re-queued for another attempt.
    Requeued,
}

/// A registry error: I/O, or a semantic rejection with a message.
#[derive(Debug)]
pub enum RegistryError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The submission or lookup was rejected (bad id, spec mismatch,
    /// unknown job, corrupt record).
    Rejected(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry I/O failed: {e}"),
            RegistryError::Rejected(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io(e) => Some(e),
            RegistryError::Rejected(_) => None,
        }
    }
}

impl From<io::Error> for RegistryError {
    fn from(e: io::Error) -> Self {
        RegistryError::Io(e)
    }
}

/// The file-locked job registry rooted at one directory. Cheap to
/// share behind an `Arc`; all interior state is atomic.
#[derive(Debug)]
pub struct Registry {
    root: PathBuf,
    lease_ttl_ms: u64,
    /// Seeded failpoint site for registry writes, when chaos is
    /// attached.
    site: Option<ChaosSite>,
    /// Durable registry writes completed so far (drives
    /// `kill_after_writes` — the daemon's registry-side kill channel).
    writes: AtomicU64,
    /// Abort the process after this many durable registry writes.
    kill_after_writes: Option<u64>,
    /// Journal + flight recorder for crash forensics: the kill-channel
    /// abort journals the killed write and dumps the flight ring into
    /// the job dir the write was targeting.
    obs: Option<(Journal, FlightRecorder)>,
}

impl Registry {
    /// Opens (creating if needed) a registry rooted at `root`, with
    /// leases considered stale after `lease_ttl_ms` of heartbeat
    /// silence.
    ///
    /// # Errors
    ///
    /// Any error creating the directory tree.
    pub fn open(root: impl Into<PathBuf>, lease_ttl_ms: u64) -> io::Result<Registry> {
        let root = root.into();
        fs::create_dir_all(root.join("jobs"))?;
        Ok(Registry {
            root,
            lease_ttl_ms,
            site: None,
            writes: AtomicU64::new(0),
            kill_after_writes: None,
            obs: None,
        })
    }

    /// Routes subsequent writes through the run's seeded chaos schedule
    /// (failpoint site `"registry"`). A trivial plan attaches nothing.
    pub fn attach_chaos(&mut self, plan: &ChaosPlan) {
        if !plan.is_trivial() {
            self.site = Some(ChaosSite::new(*plan, "registry"));
        }
    }

    /// Arms the registry-side kill channel: the process aborts after
    /// `n` durable registry writes (chaos testing only).
    pub fn set_kill_after_writes(&mut self, n: Option<u64>) {
        self.kill_after_writes = n;
    }

    /// Attaches crash forensics: when the kill channel aborts the
    /// process, the killed write is journaled (kind `chaos.kill`, with
    /// the job id recovered from the target path) and the flight ring
    /// is dumped to `flight.jsonl` inside the job dir being written.
    pub fn attach_obs(&mut self, journal: Journal, flight: FlightRecorder) {
        self.obs = Some((journal, flight));
    }

    /// The daemon-wide event journal, shared by every daemon
    /// incarnation that serves this registry — one greppable file per
    /// service, so adoption chains across restarts stay in one place.
    pub fn journal_path(&self) -> PathBuf {
        self.root.join("journal.jsonl")
    }

    /// The job's flight-recorder dump (present only after a crash path
    /// fired in that job's context).
    pub fn flight_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("flight.jsonl")
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The configured lease TTL in milliseconds.
    pub fn lease_ttl_ms(&self) -> u64 {
        self.lease_ttl_ms
    }

    /// The directory for job `id` (not necessarily existing).
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.root.join("jobs").join(id)
    }

    /// The job's checkpoint file.
    pub fn checkpoint_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("checkpoint.jsonl")
    }

    /// The job's progress stream.
    pub fn progress_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("progress.jsonl")
    }

    /// The job's result CSV.
    pub fn result_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("result.csv")
    }

    /// The job's lease handle.
    pub fn lease(&self, id: &str) -> LeaseFile {
        LeaseFile::new(&self.job_dir(id))
    }

    /// One durable registry write: atomic replacement, chaos-routed and
    /// retried when a site is attached, counted against the registry
    /// kill channel once it lands.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match &self.site {
            None => atomic_write(path, bytes)?,
            Some(site) => {
                let mut attempt = 0;
                loop {
                    match atomic_write_chaos(path, bytes, site) {
                        Ok(()) => break,
                        Err(e) if attempt + 1 < WRITE_ATTEMPTS => {
                            attempt += 1;
                            let _ = e; // deterministic injected fault; retry
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        let done = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(kill_after) = self.kill_after_writes {
            if done >= kill_after {
                eprintln!(
                    "chaos: aborting after {kill_after} durable registry write(s) (kill-after-registry)"
                );
                if let Some((journal, flight)) = &self.obs {
                    // `path` is `<root>/jobs/<id>/<file>`: recover the
                    // job id so the kill event joins the job's chain,
                    // and leave the dump inside that job's directory.
                    let job_dir = path.parent().unwrap_or_else(|| Path::new("."));
                    let corr = job_dir
                        .file_name()
                        .and_then(|n| n.to_str())
                        .map(Corr::job)
                        .unwrap_or_default();
                    let file = path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .unwrap_or("<registry file>");
                    journal.log(
                        Severity::Error,
                        "chaos.kill",
                        &format!("kill-after-registry abort on durable write {done} ({file})"),
                        &corr,
                    );
                    let _ = flight.dump(job_dir.join("flight.jsonl"));
                }
                std::process::abort();
            }
        }
        Ok(())
    }

    /// Submits `spec` under `id`, idempotently. See [`SubmitOutcome`]
    /// for the four legal results; a resubmission whose spec hash
    /// differs from the recorded one is rejected.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Rejected`] for an invalid id, an invalid spec,
    /// or a spec mismatch; [`RegistryError::Io`] otherwise.
    pub fn submit(&self, id: &str, spec: &JobSpec) -> Result<SubmitOutcome, RegistryError> {
        validate_job_id(id).map_err(RegistryError::Rejected)?;
        spec.validate().map_err(RegistryError::Rejected)?;
        let dir = self.job_dir(id);
        let spec_path = dir.join("spec.json");
        if spec_path.exists() {
            let recorded = self.read_spec(id)?;
            if recorded.hash() != spec.hash() {
                return Err(RegistryError::Rejected(format!(
                    "job {id:?} already exists with a different spec \
                     (recorded hash {}, submitted {})",
                    recorded.hash(),
                    spec.hash()
                )));
            }
            let status = self.read_status(id)?;
            return Ok(match status.state {
                JobState::Done => SubmitOutcome::Cached,
                JobState::Queued | JobState::Running => SubmitOutcome::Attached,
                JobState::Failed | JobState::Cancelled => {
                    self.write_status(
                        id,
                        &JobStatus {
                            state: JobState::Queued,
                            detail: format!("requeued after {}", status.state),
                            ..status
                        },
                    )?;
                    SubmitOutcome::Requeued
                }
            });
        }
        fs::create_dir_all(&dir).map_err(RegistryError::Io)?;
        self.write_file(&spec_path, spec.to_json().as_bytes())?;
        self.write_status(id, &JobStatus::queued())?;
        Ok(SubmitOutcome::Created)
    }

    /// Reads the recorded spec for `id`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Rejected`] for an unknown job or a corrupt
    /// record; [`RegistryError::Io`] otherwise.
    pub fn read_spec(&self, id: &str) -> Result<JobSpec, RegistryError> {
        let path = self.job_dir(id).join("spec.json");
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(RegistryError::Rejected(format!("unknown job {id:?}")))
            }
            Err(e) => return Err(RegistryError::Io(e)),
        };
        JobSpec::from_json(&text)
            .map_err(|e| RegistryError::Rejected(format!("job {id:?} spec is corrupt: {e}")))
    }

    /// Reads the current status for `id`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Rejected`] for an unknown job or a corrupt
    /// record; [`RegistryError::Io`] otherwise.
    pub fn read_status(&self, id: &str) -> Result<JobStatus, RegistryError> {
        let path = self.job_dir(id).join("status.json");
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(RegistryError::Rejected(format!("unknown job {id:?}")))
            }
            Err(e) => return Err(RegistryError::Io(e)),
        };
        JobStatus::from_json(&text)
            .map_err(|e| RegistryError::Rejected(format!("job {id:?} status is corrupt: {e}")))
    }

    /// Durably replaces the status record for `id`.
    ///
    /// # Errors
    ///
    /// Any (possibly injected) I/O error that survives the retry
    /// budget.
    pub fn write_status(&self, id: &str, status: &JobStatus) -> io::Result<()> {
        self.write_file(
            &self.job_dir(id).join("status.json"),
            status.to_json().as_bytes(),
        )
    }

    /// Durably writes the final result CSV for `id`.
    ///
    /// # Errors
    ///
    /// Any (possibly injected) I/O error that survives the retry
    /// budget.
    pub fn write_result(&self, id: &str, csv: &str) -> io::Result<()> {
        self.write_file(&self.result_path(id), csv.as_bytes())
    }

    /// Reads the result CSV for a finished job.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Rejected`] when no result exists yet.
    pub fn read_result(&self, id: &str) -> Result<String, RegistryError> {
        match fs::read_to_string(self.result_path(id)) {
            Ok(csv) => Ok(csv),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Err(RegistryError::Rejected(format!(
                "job {id:?} has no result yet"
            ))),
            Err(e) => Err(RegistryError::Io(e)),
        }
    }

    /// All job ids present in the registry, sorted.
    ///
    /// # Errors
    ///
    /// Any error listing the jobs directory.
    pub fn jobs(&self) -> io::Result<Vec<String>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(self.root.join("jobs"))? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                if let Some(name) = entry.file_name().to_str() {
                    ids.push(name.to_string());
                }
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Jobs that need an executor: non-terminal, and either leaseless
    /// or held by a lease that has gone stale. This is the adoption
    /// sweep a (re)started daemon runs to pick up work orphaned by a
    /// crash — its own earlier incarnation's or another daemon's.
    ///
    /// # Errors
    ///
    /// Any error listing the jobs directory; per-job read errors skip
    /// the job (a half-created directory is not adoptable yet).
    pub fn orphans(&self) -> io::Result<Vec<String>> {
        let now = now_ms();
        let mut out = Vec::new();
        for id in self.jobs()? {
            let Ok(status) = self.read_status(&id) else {
                continue;
            };
            if status.state.is_terminal() {
                continue;
            }
            match self.lease(&id).read() {
                Ok(None) => out.push(id),
                Ok(Some(lease)) if lease.is_stale(self.lease_ttl_ms, now) => out.push(id),
                _ => {}
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accu_core::ChaosConfig;

    fn temp_registry(tag: &str) -> Registry {
        let root = std::env::temp_dir().join(format!(
            "accu_registry_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&root);
        Registry::open(root, 5_000).unwrap()
    }

    #[test]
    fn submit_is_idempotent_across_the_lifecycle() {
        let reg = temp_registry("idem");
        let spec = JobSpec::default();
        assert_eq!(reg.submit("job-1", &spec).unwrap(), SubmitOutcome::Created);
        assert_eq!(reg.submit("job-1", &spec).unwrap(), SubmitOutcome::Attached);
        let done = JobStatus {
            state: JobState::Done,
            ..JobStatus::queued()
        };
        reg.write_status("job-1", &done).unwrap();
        assert_eq!(reg.submit("job-1", &spec).unwrap(), SubmitOutcome::Cached);
        let failed = JobStatus {
            state: JobState::Failed,
            detail: "boom".to_string(),
            ..JobStatus::queued()
        };
        reg.write_status("job-1", &failed).unwrap();
        assert_eq!(reg.submit("job-1", &spec).unwrap(), SubmitOutcome::Requeued);
        assert_eq!(reg.read_status("job-1").unwrap().state, JobState::Queued);
        let _ = fs::remove_dir_all(reg.root());
    }

    #[test]
    fn mismatched_spec_is_rejected_not_unified() {
        let reg = temp_registry("mismatch");
        reg.submit("job-1", &JobSpec::default()).unwrap();
        let other = JobSpec {
            seed: 43,
            ..JobSpec::default()
        };
        let err = reg.submit("job-1", &other).unwrap_err();
        assert!(err.to_string().contains("different spec"), "{err}");
        let _ = fs::remove_dir_all(reg.root());
    }

    #[test]
    fn bad_ids_and_unknown_jobs_are_rejected() {
        let reg = temp_registry("reject");
        assert!(reg.submit("../oops", &JobSpec::default()).is_err());
        assert!(reg.read_status("nope").is_err());
        assert!(reg.read_result("nope").is_err());
        let _ = fs::remove_dir_all(reg.root());
    }

    #[test]
    fn status_round_trips_through_json() {
        let status = JobStatus {
            state: JobState::Running,
            detail: "recovered from torn checkpoint (1 line dropped)".to_string(),
            recovered_lines: 1,
            resumed_networks: 2,
            epoch: 3,
        };
        assert_eq!(JobStatus::from_json(&status.to_json()).unwrap(), status);
    }

    #[test]
    fn orphan_sweep_finds_leaseless_and_stale_jobs() {
        let reg = temp_registry("orphans");
        let spec = JobSpec::default();
        reg.submit("free", &spec).unwrap(); // queued, no lease
        reg.submit("held", &spec).unwrap();
        reg.submit("stale", &spec).unwrap();
        reg.submit("done", &spec).unwrap();
        reg.write_status(
            "done",
            &JobStatus {
                state: JobState::Done,
                ..JobStatus::queued()
            },
        )
        .unwrap();
        // "held": live lease from this process.
        let held = reg.lease("held").acquire(1).unwrap().unwrap();
        assert!(reg.lease("held").renew(&held).unwrap());
        // "stale": lease whose heartbeat is ancient (write it raw).
        fs::write(
            reg.lease("stale").path(),
            format!(
                "{{\"pid\":{},\"epoch\":1,\"beat_ms\":1}}",
                std::process::id()
            ),
        )
        .unwrap();
        assert_eq!(reg.orphans().unwrap(), vec!["free", "stale"]);
        let _ = fs::remove_dir_all(reg.root());
    }

    #[test]
    fn chaos_writes_retry_to_completion() {
        let mut reg = temp_registry("chaos");
        // torn 0.3 / eintr 0.3: roughly half of all write attempts fail
        // (EINTR is retried transparently inside write_all, so only the
        // torn draws consume attempts) — heavy enough to exercise the
        // retry loop on nearly every file, light enough that the
        // 8-attempt budget always wins for this seed.
        reg.attach_chaos(&ChaosPlan::sample(&ChaosConfig {
            torn_write: 0.3,
            eintr: 0.3,
            seed: 11,
            ..ChaosConfig::none()
        }));
        let spec = JobSpec::default();
        for i in 0..6 {
            let id = format!("job-{i}");
            reg.submit(&id, &spec).unwrap();
            assert_eq!(reg.read_status(&id).unwrap().state, JobState::Queued);
            assert_eq!(reg.read_spec(&id).unwrap(), spec);
        }
        let _ = fs::remove_dir_all(reg.root());
    }
}
