//! The experiment specification a service job carries: a flat,
//! JSON-round-trippable description of one [`FigureRun`] cell plus the
//! policy to run over it.
//!
//! The spec is the *idempotency key* of the service: its canonical JSON
//! encoding (fixed field order, integral floats printed exactly) is
//! hashed with FNV-1a, and a resubmission of the same job id is only
//! honored when the hash matches what the registry recorded at first
//! submission. Two submissions that differ in any field are therefore
//! different experiments and rejected rather than silently unified.

use accu_core::{FaultConfig, RetryPolicy, ValidationMode};
use accu_datasets::{DatasetSpec, ProtocolConfig};
use accu_telemetry::parse_json;

use crate::output::series_table;
use crate::runner::{run_policy_with, FigureRun, PolicyKind, RunOptions};

/// One submittable experiment: everything needed to reconstruct a
/// [`FigureRun`] and a [`PolicyKind`] deterministically on any daemon.
///
/// # Examples
///
/// ```
/// use accu_experiments::service::JobSpec;
/// let spec = JobSpec::default();
/// let round = JobSpec::from_json(&spec.to_json()).unwrap();
/// assert_eq!(round, spec);
/// assert_eq!(round.hash(), spec.hash());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Dataset name: `facebook`, `slashdot`, `twitter`, or `dblp`
    /// (case-insensitive).
    pub dataset: String,
    /// Node-count scale factor applied to the dataset (1.0 = paper
    /// size).
    pub scale: f64,
    /// Policy name: `abm`, `greedy`, `maxdegree`, `pagerank`, or
    /// `random` (case-insensitive).
    pub policy: String,
    /// Request budget `k`.
    pub budget: usize,
    /// Independently sampled networks.
    pub samples: usize,
    /// Attack runs per sampled network.
    pub runs: usize,
    /// Master seed for the run.
    pub seed: u64,
    /// Per-slot transient-failure probability (0 = the paper's
    /// fault-free environment).
    pub faults: f64,
    /// Number of cautious users the protocol plants.
    pub cautious: usize,
    /// Lower edge of the cautious-degree band.
    pub band_lo: usize,
    /// Upper edge of the cautious-degree band.
    pub band_hi: usize,
}

impl Default for JobSpec {
    /// A soak-sized cell (~80-node Facebook sample, 3×2 episodes):
    /// small enough for tests and CI, large enough to checkpoint.
    fn default() -> Self {
        JobSpec {
            dataset: "facebook".to_string(),
            scale: 0.02,
            policy: "abm".to_string(),
            budget: 10,
            samples: 3,
            runs: 2,
            seed: 42,
            faults: 0.0,
            cautious: 2,
            band_lo: 5,
            band_hi: 80,
        }
    }
}

impl JobSpec {
    /// Canonical JSON encoding: fixed field order, so equal specs
    /// always serialize to equal bytes and [`hash`](JobSpec::hash) is
    /// well defined.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"dataset\":\"{}\",\"scale\":{},\"policy\":\"{}\",\"budget\":{},\
             \"samples\":{},\"runs\":{},\"seed\":{},\"faults\":{},\"cautious\":{},\
             \"band_lo\":{},\"band_hi\":{}}}",
            self.dataset.to_lowercase(),
            fmt_f64(self.scale),
            self.policy.to_lowercase(),
            self.budget,
            self.samples,
            self.runs,
            self.seed,
            fmt_f64(self.faults),
            self.cautious,
            self.band_lo,
            self.band_hi,
        )
    }

    /// Parses a spec from JSON (missing fields take the defaults).
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or wrong-typed fields.
    pub fn from_json(text: &str) -> Result<JobSpec, String> {
        let doc = parse_json(text)?;
        let d = JobSpec::default();
        let str_field = |key: &str, dflt: &str| -> Result<String, String> {
            match doc.get(key) {
                None => Ok(dflt.to_string()),
                Some(v) => v
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("spec field {key} must be a string")),
            }
        };
        let usize_field = |key: &str, dflt: usize| -> Result<usize, String> {
            match doc.get(key) {
                None => Ok(dflt),
                Some(v) => v
                    .as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| format!("spec field {key} must be a non-negative integer")),
            }
        };
        let f64_field = |key: &str, dflt: f64| -> Result<f64, String> {
            match doc.get(key) {
                None => Ok(dflt),
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| format!("spec field {key} must be a number")),
            }
        };
        Ok(JobSpec {
            dataset: str_field("dataset", &d.dataset)?,
            scale: f64_field("scale", d.scale)?,
            policy: str_field("policy", &d.policy)?,
            budget: usize_field("budget", d.budget)?,
            samples: usize_field("samples", d.samples)?,
            runs: usize_field("runs", d.runs)?,
            seed: doc
                .get("seed")
                .map_or(Ok(d.seed), |v| {
                    v.as_u64().ok_or("spec field seed must be a u64")
                })
                .map_err(str::to_string)?,
            faults: f64_field("faults", d.faults)?,
            cautious: usize_field("cautious", d.cautious)?,
            band_lo: usize_field("band_lo", d.band_lo)?,
            band_hi: usize_field("band_hi", d.band_hi)?,
        })
    }

    /// FNV-1a hash of the canonical encoding, as fixed-width hex — the
    /// registry's idempotency fingerprint.
    pub fn hash(&self) -> String {
        format!("{:016x}", fnv1a64(self.to_json().as_bytes()))
    }

    /// The policy to run.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown policy.
    pub fn policy_kind(&self) -> Result<PolicyKind, String> {
        match self.policy.to_lowercase().as_str() {
            "abm" => Ok(PolicyKind::abm_balanced()),
            "greedy" => Ok(PolicyKind::Greedy),
            "maxdegree" => Ok(PolicyKind::MaxDegree),
            "pagerank" => Ok(PolicyKind::PageRank),
            "random" => Ok(PolicyKind::Random),
            other => Err(format!(
                "unknown policy {other:?} (expected abm, greedy, maxdegree, pagerank, or random)"
            )),
        }
    }

    /// The fully resolved experiment cell.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown dataset or an out-of-range
    /// parameter.
    pub fn figure(&self) -> Result<FigureRun, String> {
        let dataset = match self.dataset.to_lowercase().as_str() {
            "facebook" => DatasetSpec::facebook(),
            "slashdot" => DatasetSpec::slashdot(),
            "twitter" => DatasetSpec::twitter(),
            "dblp" => DatasetSpec::dblp(),
            other => {
                return Err(format!(
                    "unknown dataset {other:?} (expected facebook, slashdot, twitter, or dblp)"
                ))
            }
        };
        if !(self.scale > 0.0 && self.scale <= 1.0) {
            return Err(format!("scale must be in (0, 1], got {}", self.scale));
        }
        if !(0.0..=1.0).contains(&self.faults) {
            return Err(format!("faults must be in [0, 1], got {}", self.faults));
        }
        if self.budget == 0 || self.samples == 0 || self.runs == 0 {
            return Err("budget, samples, and runs must all be positive".to_string());
        }
        let faults = if self.faults > 0.0 {
            FaultConfig {
                transient_failure: self.faults,
                ..FaultConfig::none()
            }
        } else {
            FaultConfig::none()
        };
        Ok(FigureRun {
            dataset: dataset.scaled(self.scale),
            protocol: ProtocolConfig {
                cautious_count: self.cautious,
                degree_band: (self.band_lo, self.band_hi),
                ..ProtocolConfig::default()
            },
            budget: self.budget,
            network_samples: self.samples,
            runs_per_network: self.runs,
            seed: self.seed,
            faults,
            retry: RetryPolicy::standard(),
            validation: ValidationMode::default(),
        })
    }

    /// Validates the spec without running it.
    ///
    /// # Errors
    ///
    /// The first problem found, as a message.
    pub fn validate(&self) -> Result<(), String> {
        self.policy_kind()?;
        self.figure().map(|_| ())
    }

    /// Runs the spec to completion in-process (no daemon) and returns
    /// the result CSV — the reference the service's output is compared
    /// against byte-for-byte, and the body of `accu-cli run`.
    ///
    /// # Errors
    ///
    /// Returns a message for an invalid spec or a runner failure.
    pub fn run_batch(&self) -> Result<String, String> {
        let figure = self.figure()?;
        let policy = self.policy_kind()?;
        let report = run_policy_with(
            &figure,
            policy,
            RunOptions {
                max_workers: Some(2),
                ..RunOptions::default()
            },
        )
        .map_err(|e| e.to_string())?;
        Ok(result_csv(&figure, policy, &report.accumulator))
    }
}

/// Renders the service result CSV for one finished job: the same
/// `k → mean cumulative benefit` series the figure binaries write, so
/// a daemon-produced result is byte-comparable to a batch run.
pub fn result_csv(
    figure: &FigureRun,
    policy: PolicyKind,
    acc: &accu_core::TraceAccumulator,
) -> String {
    let xs: Vec<f64> = (0..figure.budget).map(|i| (i + 1) as f64).collect();
    series_table("k", &xs, &[(policy.name(), acc.mean_cumulative_benefit())]).to_csv_string()
}

/// Prints a float the way Rust's `{}` does, with a trailing `.0`
/// forced onto integral values so the canonical encoding never
/// collides with the integer encoding of another field.
fn fmt_f64(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// FNV-1a over `bytes` (64-bit offset basis / prime).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// Whether `id` is safe to embed in a registry path: 1–64 characters
/// drawn from `[A-Za-z0-9_-]`.
///
/// # Errors
///
/// Returns a message describing the violation.
pub fn validate_job_id(id: &str) -> Result<(), String> {
    if id.is_empty() || id.len() > 64 {
        return Err(format!("job id must be 1-64 characters, got {}", id.len()));
    }
    if let Some(bad) = id
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-'))
    {
        return Err(format!(
            "job id may only contain [A-Za-z0-9_-], found {bad:?}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_round_trips_and_hash_is_stable() {
        let spec = JobSpec {
            dataset: "Facebook".to_string(), // case-normalized in the encoding
            scale: 0.5,
            seed: 7,
            ..JobSpec::default()
        };
        let round = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(round.dataset, "facebook");
        assert_eq!(round.hash(), spec.hash());
        // Any field change changes the hash.
        let other = JobSpec {
            seed: 8,
            ..spec.clone()
        };
        assert_ne!(other.hash(), spec.hash());
    }

    #[test]
    fn missing_fields_fall_back_to_defaults() {
        let spec = JobSpec::from_json("{\"budget\":5}").unwrap();
        assert_eq!(spec.budget, 5);
        assert_eq!(spec.dataset, JobSpec::default().dataset);
        assert_eq!(spec.samples, JobSpec::default().samples);
    }

    #[test]
    fn invalid_specs_are_rejected_with_messages() {
        assert!(JobSpec::from_json("{nope").is_err());
        let bad_policy = JobSpec {
            policy: "oracle".to_string(),
            ..JobSpec::default()
        };
        assert!(bad_policy.validate().unwrap_err().contains("oracle"));
        let bad_dataset = JobSpec {
            dataset: "orkut".to_string(),
            ..JobSpec::default()
        };
        assert!(bad_dataset.validate().unwrap_err().contains("orkut"));
        let bad_scale = JobSpec {
            scale: 0.0,
            ..JobSpec::default()
        };
        assert!(bad_scale.validate().is_err());
    }

    #[test]
    fn job_ids_must_be_path_safe() {
        assert!(validate_job_id("fig2-smoke_01").is_ok());
        assert!(validate_job_id("").is_err());
        assert!(validate_job_id("../escape").is_err());
        assert!(validate_job_id(&"x".repeat(65)).is_err());
    }

    #[test]
    fn batch_run_is_deterministic() {
        let spec = JobSpec {
            samples: 2,
            runs: 1,
            budget: 6,
            ..JobSpec::default()
        };
        let a = spec.run_batch().unwrap();
        let b = spec.run_batch().unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("k,"));
    }
}
