//! `--telemetry` / observability plumbing shared by the experiment
//! binaries.
//!
//! Each binary builds a [`Telemetry`] handle from its parsed [`Cli`];
//! the handle carries an [`accu_telemetry::Recorder`] (enabled by
//! `--telemetry` or `--metrics-addr`) that is threaded into the runner
//! and policies, plus the live-observability pieces of `accu-obs`: a
//! streaming-progress [`Observer`] (`--progress`), a Prometheus
//! [`MetricsServer`] (`--metrics-addr`), and a [`Watchdog`]
//! (`--watchdog`). At the end of the run, [`Telemetry::report`] prints
//! a per-stage summary table and writes a machine-readable JSONL
//! snapshot under `target/experiments/telemetry/<label>.jsonl`.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use accu_core::chaos::chaos_metrics;
use accu_core::policy::abm_metrics;
use accu_core::{fault_metrics, sim_metrics, validate_metrics, ChaosPlan};
use accu_telemetry::obs::{throughput_floor, MetricsServer, Observer, Watchdog, WatchdogConfig};
use accu_telemetry::{FieldValue, JsonlSink, Recorder, Snapshot, Tracer, DEFAULT_TRACK_CAPACITY};

use crate::chaosfs::{atomic_write, atomic_write_chaos, ChaosFile, ChaosSite};
use crate::cli::Cli;
use crate::output::{experiments_dir, fnum, Table};
use crate::runner::{runner_metrics, Deadline, EngineMode, RunOptions, SupervisorConfig};

/// Where the bench trajectory lives relative to the working directory;
/// `--watchdog` seeds its throughput floor from the last healthy entry
/// here when the spec gives no explicit `floor=`.
const TRAJECTORY_PATH: &str = "BENCH_trajectory.jsonl";

/// Exit code used by `--watchdog=strict` when any alarm fired.
pub const WATCHDOG_EXIT_CODE: i32 = 3;

/// Directory telemetry JSONL snapshots are written to
/// (`target/experiments/telemetry`), created on demand.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory cannot be created.
pub fn telemetry_dir() -> io::Result<PathBuf> {
    let dir = experiments_dir()?.join("telemetry");
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Directory trace exports default to (`target/experiments/trace`),
/// created on demand.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory cannot be created.
pub fn trace_dir() -> io::Result<PathBuf> {
    let dir = experiments_dir()?.join("trace");
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// A per-binary telemetry handle: a recorder plus the label snapshots
/// are filed under.
///
/// # Examples
///
/// ```
/// use accu_experiments::{Cli, Telemetry};
///
/// let cli = Cli::parse_from(["--telemetry"]).unwrap();
/// let tel = Telemetry::from_cli(&cli, "doc-example");
/// assert!(tel.is_enabled());
/// tel.recorder().counter("sim.requests").add(3);
/// assert_eq!(tel.snapshot().unwrap().counter("sim.requests"), Some(3));
///
/// let off = Telemetry::from_cli(&Cli::default(), "doc-example");
/// assert!(off.snapshot().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct Telemetry {
    recorder: Recorder,
    tracer: Tracer,
    trace_path: Option<String>,
    label: String,
    observer: Observer,
    /// Whether the end-of-run summary tables and JSONL snapshot are
    /// wanted (`--telemetry`; `--metrics-addr` enables the recorder
    /// without them).
    summary: bool,
    /// `--workers` cap, forwarded into [`Telemetry::run_options`].
    workers: Option<usize>,
    /// `--watchdog=strict`: [`Telemetry::report`] exits nonzero when
    /// any alarm fired.
    strict_watchdog: bool,
    /// The run's chaos plan (trivial without `--chaos`), forwarded
    /// into [`Telemetry::run_options`] and every file sink the handle
    /// owns so one seeded schedule covers the whole process.
    chaos: ChaosPlan,
    /// Absolute soft deadline, derived once from `--deadline` so every
    /// cell of a multi-cell binary shares the same wall-clock budget.
    deadline_at: Option<Instant>,
    /// Chaos failpoint on the streaming-progress sink, kept for its
    /// injected-fault counters.
    progress_site: Option<ChaosSite>,
    /// Chaos failpoint on trace export.
    trace_site: Option<ChaosSite>,
    /// Held for their lifetime: the metrics listener thread and the
    /// watchdog tick thread stop when the last handle drops.
    server: Option<Arc<MetricsServer>>,
    watchdog: Option<Arc<Watchdog>>,
}

impl Telemetry {
    /// Builds a handle from the parsed CLI: the recorder is enabled by
    /// `--telemetry` or `--metrics-addr`, the tracer by `--trace`, the
    /// progress observer by `--progress` (and, counters-only, by
    /// `--watchdog` / `--metrics-addr`), the metrics listener by
    /// `--metrics-addr`, and the watchdog by `--watchdog`. Each piece
    /// is independent; with none of the flags every part is a no-op.
    ///
    /// Exits with code 2 (the CLI-error convention) when a requested
    /// progress path or metrics address cannot be opened — the user
    /// explicitly asked for them, so silently dropping the stream would
    /// be worse than stopping.
    pub fn from_cli(cli: &Cli, label: &str) -> Self {
        let (tracer, trace_path) = match &cli.trace {
            Some(spec) => (
                Tracer::with_config(spec.sample, DEFAULT_TRACK_CAPACITY),
                spec.path.clone(),
            ),
            None => (Tracer::disabled(), None),
        };
        let fail = |what: &str, err: &dyn std::fmt::Display| -> ! {
            eprintln!("error: {what}: {err}");
            std::process::exit(2);
        };
        let chaos = match &cli.chaos {
            Some(config) => ChaosPlan::sample(config),
            None => ChaosPlan::none(),
        };
        let mut progress_site = None;
        let observer = match &cli.progress {
            // Under chaos the JSONL stream goes through a failpoint so
            // injected EINTRs exercise the sink's retry path.
            Some(Some(path)) if !chaos.is_trivial() => {
                let site = ChaosSite::new(chaos, "progress");
                progress_site = Some(site.clone());
                let file = std::fs::File::create(path)
                    .unwrap_or_else(|e| fail(&format!("--progress={path}"), &e));
                let writer: Box<dyn Write + Send> = Box::new(ChaosFile::new(file, site));
                Observer::with_sink(JsonlSink::from_writer(writer, path), true)
            }
            Some(Some(path)) => {
                Observer::to_path(path).unwrap_or_else(|e| fail(&format!("--progress={path}"), &e))
            }
            Some(None) => Observer::console(),
            // Watchdogs and the metrics endpoint read run state through
            // the observer, so give them a counters-only one.
            None if cli.watchdog.is_some() || cli.metrics_addr.is_some() => Observer::quiet(),
            None => Observer::disabled(),
        };
        let recorder = Recorder::new(cli.telemetry || cli.metrics_addr.is_some());
        let server = cli.metrics_addr.as_ref().map(|addr| {
            // BindError already names the requested address, so the
            // failure message only adds the flag that asked for it.
            let server = MetricsServer::bind(addr, recorder.clone(), label, observer.clone())
                .unwrap_or_else(|e| fail("--metrics-addr", &e));
            eprintln!("serving metrics on http://{}/metrics", server.addr());
            Arc::new(server)
        });
        let mut strict_watchdog = false;
        let watchdog = cli.watchdog.as_ref().map(|spec| {
            let mut config = WatchdogConfig::parse(spec)
                .unwrap_or_else(|e| fail(&format!("--watchdog={spec}"), &e));
            if config.min_eps.is_none() {
                // No explicit floor and no usable trajectory: warn once
                // and run with the floor rule disabled rather than
                // refusing to arm the other rules.
                match throughput_floor(Path::new(TRAJECTORY_PATH)) {
                    Ok(floor) => {
                        config.min_eps = Some(floor);
                        eprintln!(
                            "watchdog: throughput floor {floor:.1} eps/s (from {TRAJECTORY_PATH})"
                        );
                    }
                    Err(why) => {
                        eprintln!("watchdog: throughput-floor rule disabled ({why})");
                    }
                }
            }
            strict_watchdog = config.strict;
            Arc::new(Watchdog::spawn(config, observer.clone()))
        });
        let trace_site =
            (tracer.is_enabled() && !chaos.is_trivial()).then(|| ChaosSite::new(chaos, "trace"));
        Telemetry {
            recorder,
            tracer,
            trace_path,
            label: label.to_string(),
            observer,
            summary: cli.telemetry,
            workers: cli.workers,
            chaos,
            deadline_at: cli
                .deadline
                .map(|secs| Instant::now() + Duration::from_secs_f64(secs)),
            progress_site,
            trace_site,
            strict_watchdog,
            server,
            watchdog,
        }
    }

    /// The recorder to thread into `run_policy_recorded` and friends.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The tracer to thread into
    /// [`run_policy_traced`](crate::run_policy_traced) (disabled unless
    /// `--trace` was passed).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Whether telemetry collection is on.
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// The streaming-progress observer (disabled unless `--progress`,
    /// `--watchdog`, or `--metrics-addr` was passed).
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// The bound address of the live metrics endpoint, when
    /// `--metrics-addr` was passed (resolves port 0).
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(|s| s.addr())
    }

    /// Whether a `--watchdog` is armed on this handle.
    pub fn watchdog_armed(&self) -> bool {
        self.watchdog.is_some()
    }

    /// The run's chaos plan (trivial unless `--chaos` was passed).
    pub fn chaos(&self) -> &ChaosPlan {
        &self.chaos
    }

    /// Opens (or, with `resume`, reopens) a checkpoint at `path` with
    /// this handle's chaos schedule attached, so injected I/O faults
    /// and `kill-after` schedules hit the checkpoint's append stream.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::RunnerError`] from [`crate::Checkpoint::open`].
    pub fn open_checkpoint(
        &self,
        path: impl AsRef<Path>,
        resume: bool,
    ) -> Result<crate::Checkpoint, crate::RunnerError> {
        let mut ckpt = crate::Checkpoint::open(path, resume)?;
        ckpt.attach_chaos(&self.chaos);
        Ok(ckpt)
    }

    /// A [`RunOptions`] bundle carrying this handle's recorder, tracer,
    /// observer, and `--workers` cap — ready for
    /// [`run_policy_with`](crate::run_policy_with). Attach a checkpoint
    /// with struct-update syntax:
    ///
    /// ```no_run
    /// # use accu_experiments::{run_policy_with, PolicyKind, RunOptions, Telemetry, Cli};
    /// # let tel = Telemetry::from_cli(&Cli::default(), "doc");
    /// # let figure: accu_experiments::FigureRun = unimplemented!();
    /// # let mut ckpt: Option<accu_experiments::Checkpoint> = None;
    /// let report = run_policy_with(
    ///     &figure,
    ///     PolicyKind::abm_balanced(),
    ///     RunOptions {
    ///         checkpoint: ckpt.as_mut(),
    ///         ..tel.run_options()
    ///     },
    /// );
    /// ```
    pub fn run_options(&self) -> RunOptions<'static> {
        RunOptions {
            recorder: self.recorder.clone(),
            tracer: self.tracer.clone(),
            observer: self.observer.clone(),
            checkpoint: None,
            max_workers: self.workers,
            chunks_per_network: None,
            chaos: self.chaos,
            supervisor: SupervisorConfig::default(),
            deadline: self.deadline_at.map(Deadline::until),
            engine: EngineMode::Auto,
            journal: accu_telemetry::Journal::disabled(),
            corr: accu_telemetry::Corr::default(),
        }
    }

    /// Runs `policy` over `figure` with this handle's full
    /// instrumentation — recorder, tracer, progress observer, and the
    /// `--workers` cap — degrading like
    /// [`run_policy_observed`](crate::run_policy_observed):
    /// quarantines land on stderr and a worker death salvages the
    /// partial aggregate. The one-call path for figure binaries
    /// without a checkpoint; checkpointed binaries use
    /// [`run_policy_with`](crate::run_policy_with) with
    /// [`Telemetry::run_options`] directly.
    pub fn run(
        &self,
        figure: &crate::FigureRun,
        policy: crate::PolicyKind,
    ) -> accu_core::TraceAccumulator {
        crate::runner::degrade_report(crate::run_policy_with(figure, policy, self.run_options()))
    }

    /// Prints the summary tables and writes the JSONL snapshot, returning
    /// the JSONL path. A disabled handle does nothing and returns
    /// `Ok(None)`. Trace files (when `--trace` was given) are written
    /// regardless of `--telemetry`, and a `--metrics-addr`-only handle
    /// skips the summary (its recorder exists for the scrape endpoint).
    ///
    /// Under `--watchdog=strict`, exits the process with
    /// [`WATCHDOG_EXIT_CODE`] after reporting when any alarm fired
    /// during the run.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the output files.
    pub fn report(&self) -> io::Result<Option<PathBuf>> {
        self.export_traces()?;
        self.absorb_chaos_counters();
        let path = match self.snapshot().filter(|_| self.summary) {
            None => None,
            Some(snapshot) => {
                print_summary(&snapshot);
                let path = telemetry_dir()?.join(format!("{}.jsonl", sanitize(&self.label)));
                let mut sink = JsonlSink::create(&path)?;
                sink.write_snapshot(&snapshot)?;
                let derived: Vec<(&str, FieldValue)> = derived_metrics(&snapshot)
                    .iter()
                    .map(|(name, value)| (*name, FieldValue::F64(*value)))
                    .collect();
                if !derived.is_empty() {
                    sink.write_event("derived", &derived)?;
                }
                sink.flush()?;
                println!("telemetry snapshot written to {}", path.display());
                Some(path)
            }
        };
        let alarms = self.observer.alarm_count();
        if self.strict_watchdog && alarms > 0 {
            eprintln!("watchdog: {alarms} alarm(s) fired; exiting with code {WATCHDOG_EXIT_CODE} (--watchdog=strict)");
            std::process::exit(WATCHDOG_EXIT_CODE);
        }
        Ok(path)
    }

    /// Captures the current snapshot (None when disabled).
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.recorder.snapshot(&self.label)
    }

    /// Folds injected-fault counts from this handle's chaos failpoints
    /// into the recorder, so the end-of-run snapshot carries them.
    fn absorb_chaos_counters(&self) {
        for site in [&self.progress_site, &self.trace_site]
            .into_iter()
            .flatten()
        {
            let counters = site.counters();
            for (name, value) in [
                (
                    chaos_metrics::DISK_FULL,
                    counters.disk_full.load(Ordering::Relaxed),
                ),
                (chaos_metrics::EINTR, counters.eintr.load(Ordering::Relaxed)),
                (
                    chaos_metrics::TORN_WRITES,
                    counters.torn_writes.load(Ordering::Relaxed),
                ),
            ] {
                if value > 0 {
                    self.recorder.counter(name).add(value);
                }
            }
        }
    }

    /// Writes the Chrome trace and the JSONL causal log (no-op when
    /// tracing is off), returning the Chrome trace path. The causal log
    /// lands next to the Chrome file with a `.causal.jsonl` suffix.
    /// Both files are replaced atomically (temp sibling + rename), and
    /// a failed write — injected chaos included — degrades to a stderr
    /// warning rather than failing the run: traces are diagnostics, not
    /// results.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the output directory.
    pub fn export_traces(&self) -> io::Result<Option<PathBuf>> {
        let (Some(chrome), Some(causal)) =
            (self.tracer.export_chrome(), self.tracer.export_causal())
        else {
            return Ok(None);
        };
        let chrome_path = match &self.trace_path {
            Some(path) => PathBuf::from(path),
            None => trace_dir()?.join(format!("{}.json", sanitize(&self.label))),
        };
        if let Some(parent) = chrome_path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let causal_path = causal_sibling(&chrome_path);
        let written = (|| match &self.trace_site {
            Some(site) => {
                atomic_write_chaos(&chrome_path, chrome.as_bytes(), site)?;
                atomic_write_chaos(&causal_path, causal.as_bytes(), site)
            }
            None => {
                atomic_write(&chrome_path, chrome.as_bytes())?;
                atomic_write(&causal_path, causal.as_bytes())
            }
        })();
        if let Err(e) = written {
            eprintln!("warning: trace export failed ({e}); continuing without trace files");
            return Ok(None);
        }
        println!(
            "trace written to {} ({} events, {} dropped; causal log {})",
            chrome_path.display(),
            self.tracer.event_count(),
            self.tracer.total_dropped(),
            causal_path.display()
        );
        Ok(Some(chrome_path))
    }
}

/// The causal log's path for a given Chrome trace path: the `.json`
/// extension (when present) replaced by `.causal.jsonl`, otherwise the
/// suffix appended.
fn causal_sibling(chrome_path: &std::path::Path) -> PathBuf {
    let name = chrome_path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let stem = name.strip_suffix(".json").unwrap_or(&name);
    chrome_path.with_file_name(format!("{stem}.causal.jsonl"))
}

/// Turns a snapshot label into a safe file stem.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Prints the counters, per-stage timing, and derived-rate tables.
pub fn print_summary(snapshot: &Snapshot) {
    println!("\n--- telemetry: {} ---", snapshot.label);
    if !snapshot.counters.is_empty() {
        let mut t = Table::new(["counter", "value"]);
        for c in &snapshot.counters {
            t.row([c.name.clone(), c.value.to_string()]);
        }
        t.print();
    }
    if !snapshot.histograms.is_empty() {
        println!();
        let mut t = Table::new(["stage", "count", "mean", "p50", "p90", "p99", "max"]);
        for h in &snapshot.histograms {
            t.row([
                h.name.clone(),
                h.count.to_string(),
                fmt_ns(h.mean),
                fmt_ns(h.p50 as f64),
                fmt_ns(h.p90 as f64),
                fmt_ns(h.p99 as f64),
                fmt_ns(h.max as f64),
            ]);
        }
        t.print();
    }
    let derived = derived_metrics(snapshot);
    if !derived.is_empty() {
        println!();
        let mut t = Table::new(["derived", "value"]);
        for (name, value) in derived {
            t.row([name.to_string(), fnum(value)]);
        }
        t.print();
    }
}

/// Rates computed from raw counters at report time: acceptance rates,
/// the ABM lazy-reevaluation hit rate, and worker queue imbalance.
pub fn derived_metrics(snapshot: &Snapshot) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    let ratio = |num: &str, den: &str| -> Option<f64> {
        let d = snapshot.counter(den)?;
        if d == 0 {
            return None;
        }
        Some(snapshot.counter(num)? as f64 / d as f64)
    };
    if let Some(r) = ratio(sim_metrics::ACCEPTED, sim_metrics::REQUESTS) {
        out.push(("acceptance_rate", r));
    }
    if let Some(r) = ratio(
        sim_metrics::CAUTIOUS_ACCEPTED,
        sim_metrics::CAUTIOUS_REQUESTS,
    ) {
        out.push(("cautious_acceptance_rate", r));
    }
    if let Some(r) = ratio(abm_metrics::SELECTS, abm_metrics::HEAP_POP) {
        out.push(("abm_lazy_hit_rate", r));
    }
    // Degraded-mode rates. These only appear when the fault layer or
    // the quarantine actually fired — a clean run adds no noise here.
    if let Some(r) = ratio(fault_metrics::INJECTED, sim_metrics::REQUESTS) {
        out.push(("fault_rate", r));
    }
    if let Some(r) = ratio(fault_metrics::RETRY_BUDGET, sim_metrics::EPISODES) {
        out.push(("retry_budget_per_episode", r));
    }
    if let Some(r) = ratio(fault_metrics::TRUNCATED, sim_metrics::EPISODES) {
        out.push(("truncated_episode_fraction", r));
    }
    if let Some(q) = snapshot.counter(runner_metrics::QUARANTINED) {
        let completed = snapshot.counter(runner_metrics::NETWORKS).unwrap_or(0);
        let attempted = q + completed;
        if attempted > 0 {
            out.push(("quarantined_network_fraction", q as f64 / attempted as f64));
        }
    }
    // Validation rates: how much of the aggregate ran in degraded mode
    // (repaired instances, λ-guarantee void) or was rejected outright.
    // Clean runs register none of these counters.
    if let Some(repaired) = snapshot.counter(validate_metrics::REPAIRED_NETWORKS) {
        let completed = snapshot.counter(runner_metrics::NETWORKS).unwrap_or(0);
        if completed > 0 {
            out.push((
                "repaired_network_fraction",
                repaired as f64 / completed as f64,
            ));
        }
        if let Some(v) = snapshot.counter(validate_metrics::VIOLATIONS) {
            if repaired > 0 {
                out.push((
                    "violations_per_repaired_network",
                    v as f64 / repaired as f64,
                ));
            }
        }
    }
    if let Some(rejected) = snapshot.counter(validate_metrics::REJECTED_NETWORKS) {
        let completed = snapshot.counter(runner_metrics::NETWORKS).unwrap_or(0);
        let attempted = rejected + completed;
        if attempted > 0 {
            out.push((
                "validation_rejected_fraction",
                rejected as f64 / attempted as f64,
            ));
        }
    }
    // Queue imbalance: max over min per-worker episode counts. 1.0 is a
    // perfectly balanced work queue.
    let worker_counts: Vec<u64> = snapshot
        .counters
        .iter()
        .filter(|c| c.name.starts_with("runner.worker.") && c.name.ends_with(".episodes"))
        .map(|c| c.value)
        .collect();
    if worker_counts.len() > 1 {
        let max = *worker_counts.iter().max().unwrap();
        let min = *worker_counts.iter().min().unwrap();
        if min > 0 {
            out.push(("worker_queue_imbalance", max as f64 / min as f64));
        }
    }
    if let Some(eps) = snapshot.counter(runner_metrics::EPISODES) {
        if let Some(h) = snapshot.histogram(runner_metrics::NETWORK_NS) {
            if h.sum > 0 {
                // Episodes per wall-clock second of network processing,
                // summed across workers (i.e. aggregate throughput).
                out.push((
                    "episodes_per_network_second",
                    eps as f64 * 1e9 / h.sum as f64,
                ));
            }
        }
    }
    out
}

/// Formats nanoseconds into a human unit (ns/µs/ms/s).
fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        return "-".to_string();
    }
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_reports_nothing() {
        let tel = Telemetry::from_cli(&Cli::default(), "off");
        assert!(!tel.is_enabled());
        assert!(!tel.tracer().is_enabled());
        assert!(tel.snapshot().is_none());
        assert_eq!(tel.report().unwrap(), None);
        assert_eq!(tel.export_traces().unwrap(), None);
    }

    #[test]
    fn trace_flag_enables_the_tracer_independently_of_telemetry() {
        let cli = Cli::parse_from(["--trace", "t.json:sample=5"]).unwrap();
        let tel = Telemetry::from_cli(&cli, "t");
        assert!(!tel.is_enabled(), "--trace alone must not enable metrics");
        assert!(tel.tracer().is_enabled());
        assert_eq!(tel.tracer().sample_every(), 5);
    }

    #[test]
    fn metrics_addr_enables_recorder_without_summary() {
        let cli = Cli::parse_from(["--metrics-addr", "127.0.0.1:0"]).unwrap();
        let tel = Telemetry::from_cli(&cli, "obs-test");
        assert!(tel.is_enabled(), "--metrics-addr needs a live recorder");
        let addr = tel.metrics_addr().expect("listener bound");
        assert_ne!(addr.port(), 0, "port 0 resolves to an ephemeral port");
        assert!(tel.observer().is_enabled(), "scrapes carry obs gauges");
        // No --telemetry: report prints no summary and writes no file.
        assert_eq!(tel.report().unwrap(), None);
    }

    #[test]
    fn run_options_carry_the_workers_cap() {
        let cli = Cli::parse_from(["--workers", "3", "--telemetry"]).unwrap();
        let tel = Telemetry::from_cli(&cli, "opts-test");
        let opts = tel.run_options();
        assert_eq!(opts.max_workers, Some(3));
        assert!(opts.recorder.is_enabled());
        assert!(!opts.observer.is_enabled());
        assert!(opts.checkpoint.is_none());
    }

    #[test]
    fn watchdog_flag_arms_a_quiet_observer() {
        let cli = Cli::parse_from(["--watchdog=stall=60"]).unwrap();
        let tel = Telemetry::from_cli(&cli, "wd-test");
        assert!(tel.watchdog_armed());
        assert!(tel.observer().is_enabled());
        assert!(tel.observer().stream_path().is_none(), "quiet: no JSONL");
        assert!(!tel.is_enabled(), "--watchdog alone enables no recorder");
    }

    #[test]
    fn causal_sibling_paths() {
        use std::path::Path;
        assert_eq!(
            causal_sibling(Path::new("out/run.json")),
            Path::new("out/run.causal.jsonl")
        );
        assert_eq!(
            causal_sibling(Path::new("plain")),
            Path::new("plain.causal.jsonl")
        );
    }

    #[test]
    fn export_traces_writes_both_files() {
        let dir = std::env::temp_dir().join("accu-trace-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let chrome = dir.join("run.json");
        let cli = Cli::parse_from(["--trace", &format!("{}", chrome.display())]).unwrap();
        let tel = Telemetry::from_cli(&cli, "export-test");
        let track = tel.tracer().track("worker-0");
        track.span("chunk").finish();
        let written = tel.export_traces().unwrap().expect("trace enabled");
        assert_eq!(written, chrome);
        let text = std::fs::read_to_string(&chrome).unwrap();
        accu_telemetry::validate_chrome_trace(&text).expect("valid Chrome trace");
        let causal = std::fs::read_to_string(dir.join("run.causal.jsonl")).unwrap();
        assert!(causal.lines().count() >= 2, "begin + end lines expected");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn derived_rates_from_counters() {
        let rec = Recorder::enabled();
        rec.counter(sim_metrics::REQUESTS).add(10);
        rec.counter(sim_metrics::ACCEPTED).add(4);
        rec.counter(abm_metrics::HEAP_POP).add(8);
        rec.counter(abm_metrics::SELECTS).add(6);
        rec.counter(runner_metrics::worker_episodes(0)).add(10);
        rec.counter(runner_metrics::worker_episodes(1)).add(5);
        let snap = rec.snapshot("t").unwrap();
        let derived = derived_metrics(&snap);
        let get = |name: &str| {
            derived
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing derived metric {name}"))
        };
        assert!((get("acceptance_rate") - 0.4).abs() < 1e-12);
        assert!((get("abm_lazy_hit_rate") - 0.75).abs() < 1e-12);
        assert!((get("worker_queue_imbalance") - 2.0).abs() < 1e-12);
        // Zero-denominator rates are omitted, not NaN.
        assert!(!derived
            .iter()
            .any(|(n, _)| *n == "cautious_acceptance_rate"));
        // A fault-free run derives no degraded-mode rates at all.
        for absent in [
            "fault_rate",
            "retry_budget_per_episode",
            "truncated_episode_fraction",
            "quarantined_network_fraction",
            "repaired_network_fraction",
            "validation_rejected_fraction",
        ] {
            assert!(
                !derived.iter().any(|(n, _)| *n == absent),
                "{absent} must not appear without fault counters"
            );
        }
    }

    #[test]
    fn derived_fault_rates_from_counters() {
        let rec = Recorder::enabled();
        rec.counter(sim_metrics::REQUESTS).add(100);
        rec.counter(sim_metrics::EPISODES).add(10);
        rec.counter(fault_metrics::INJECTED).add(25);
        rec.counter(fault_metrics::RETRY_BUDGET).add(30);
        rec.counter(fault_metrics::TRUNCATED).add(2);
        rec.counter(runner_metrics::QUARANTINED).add(1);
        rec.counter(runner_metrics::NETWORKS).add(3);
        let snap = rec.snapshot("faults").unwrap();
        let derived = derived_metrics(&snap);
        let get = |name: &str| {
            derived
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing derived metric {name}"))
        };
        assert!((get("fault_rate") - 0.25).abs() < 1e-12);
        assert!((get("retry_budget_per_episode") - 3.0).abs() < 1e-12);
        assert!((get("truncated_episode_fraction") - 0.2).abs() < 1e-12);
        assert!((get("quarantined_network_fraction") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn derived_validation_rates_from_counters() {
        let rec = Recorder::enabled();
        rec.counter(runner_metrics::NETWORKS).add(8);
        rec.counter(validate_metrics::REPAIRED_NETWORKS).add(2);
        rec.counter(validate_metrics::VIOLATIONS).add(6);
        rec.counter(validate_metrics::REJECTED_NETWORKS).add(2);
        let snap = rec.snapshot("validation").unwrap();
        let derived = derived_metrics(&snap);
        let get = |name: &str| {
            derived
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing derived metric {name}"))
        };
        assert!((get("repaired_network_fraction") - 0.25).abs() < 1e-12);
        assert!((get("violations_per_repaired_network") - 3.0).abs() < 1e-12);
        assert!((get("validation_rejected_fraction") - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sanitize_keeps_names_filesystem_safe() {
        assert_eq!(sanitize("fig2/ABM weights"), "fig2_ABM_weights");
        assert_eq!(sanitize("bench-abm_1"), "bench-abm_1");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12.0), "12ns");
        assert_eq!(fmt_ns(1_500.0), "1.5µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.5ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00s");
        assert_eq!(fmt_ns(f64::NAN), "-");
    }
}
