//! Property tests for the chaos layer: deadline shedding must be
//! deterministic and worker-count-invariant, supervisor healing must be
//! invisible in the results, and checkpoint-level fault injection plus
//! a clean resume must reconstruct the fault-free aggregate exactly.

use std::time::Duration;

use accu_core::{ChaosConfig, ChaosPlan, FaultConfig, RetryPolicy, ValidationMode};
use accu_datasets::{DatasetSpec, ProtocolConfig};
use accu_experiments::{
    run_policy, run_policy_with, Checkpoint, Deadline, FigureRun, PolicyKind, RunOptions,
    SupervisorConfig, DEADLINE_MIN_NETWORKS,
};
use proptest::prelude::*;

/// A small but non-trivial figure configuration shared by the tests.
fn small_figure(seed: u64, network_samples: usize) -> FigureRun {
    FigureRun {
        dataset: DatasetSpec::facebook().scaled(0.02), // 80 nodes
        protocol: ProtocolConfig {
            cautious_count: 2,
            degree_band: (5, 80),
            ..ProtocolConfig::default()
        },
        budget: 10,
        network_samples,
        runs_per_network: 2,
        seed,
        faults: FaultConfig::none(),
        retry: RetryPolicy::standard(),
        validation: ValidationMode::default(),
    }
}

/// A supervisor with no restart pauses and fast stall speculation, so
/// heal-equivalence cases stay quick.
fn eager_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        backoff_unit: Duration::ZERO,
        stall_timeout: Duration::from_millis(15),
        ..SupervisorConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// An expired deadline sheds the same deterministic suffix whatever
    /// the worker count, and the surviving aggregate is exactly a fresh
    /// run over the surviving prefix — including across "restarts"
    /// (re-running the degraded configuration reproduces itself).
    #[test]
    fn deadline_shedding_is_worker_count_invariant(
        seed in any::<u64>(),
        samples in 3usize..6,
    ) {
        let figure = small_figure(seed, samples);
        let prefix = FigureRun {
            network_samples: DEADLINE_MIN_NETWORKS,
            ..figure.clone()
        };
        let expected = run_policy(&prefix, PolicyKind::abm_balanced());
        for workers in [1usize, 2, 4] {
            // Two passes per worker count: shedding must also survive a
            // process restart (same inputs, fresh scheduler races).
            for pass in 0..2 {
                let report = run_policy_with(
                    &figure,
                    PolicyKind::abm_balanced(),
                    RunOptions {
                        max_workers: Some(workers),
                        deadline: Some(Deadline::after(Duration::ZERO)),
                        ..RunOptions::default()
                    },
                ).unwrap();
                prop_assert!(report.degraded());
                prop_assert_eq!(
                    report.shed_networks,
                    samples - DEADLINE_MIN_NETWORKS,
                    "workers={} pass={}", workers, pass
                );
                prop_assert_eq!(report.completed_networks, DEADLINE_MIN_NETWORKS);
                prop_assert_eq!(
                    &report.accumulator, &expected,
                    "degraded aggregate diverged from the prefix run (workers={}, pass={})",
                    workers, pass
                );
                prop_assert!(report.ci_half_width() > 0.0);
            }
        }
    }

    /// Worker-level chaos (injected panics and stalls) is fully healed
    /// by the supervisor: restarts happen, but the aggregate is
    /// bit-identical to a fault-free run and nothing is quarantined.
    #[test]
    fn supervisor_healing_is_invisible_in_results(
        seed in any::<u64>(),
        chaos_seed in any::<u64>(),
        stall in any::<bool>(),
    ) {
        let figure = small_figure(seed, 3);
        let reference = run_policy(&figure, PolicyKind::abm_balanced());
        let config = if stall {
            ChaosConfig {
                worker_stall: 0.8,
                stall_ms: 40,
                seed: chaos_seed,
                ..ChaosConfig::none()
            }
        } else {
            ChaosConfig {
                worker_panic: 1.0,
                seed: chaos_seed,
                ..ChaosConfig::none()
            }
        };
        let report = run_policy_with(
            &figure,
            PolicyKind::abm_balanced(),
            RunOptions {
                chaos: ChaosPlan::sample(&config),
                max_workers: Some(2),
                supervisor: eager_supervisor(),
                ..RunOptions::default()
            },
        ).unwrap();
        prop_assert!(report.quarantined.is_empty());
        prop_assert_eq!(&report.accumulator, &reference);
        if !stall {
            // Every network's first chunk claim panics, so the
            // supervisor must have restarted at least one worker.
            prop_assert!(report.supervisor_restarts > 0);
        }
    }

    /// Checkpoint-level chaos (torn writes, ENOSPC, EINTR) may abort
    /// checkpointing mid-run, but whatever prefix survived on disk, a
    /// chaos-free resume reconstructs the fault-free aggregate exactly.
    #[test]
    fn checkpoint_chaos_then_resume_equals_clean(
        seed in any::<u64>(),
        chaos_seed in any::<u64>(),
        torn in any::<bool>(),
    ) {
        let figure = small_figure(seed, 3);
        let reference = run_policy(&figure, PolicyKind::abm_balanced());
        let path = std::env::temp_dir().join(format!(
            "accu-chaos-prop-{}-{}-{}.jsonl",
            std::process::id(),
            seed,
            chaos_seed
        ));
        {
            let mut ckpt = Checkpoint::open(&path, false).unwrap();
            let config = if torn {
                ChaosConfig { torn_write: 0.6, seed: chaos_seed, ..ChaosConfig::none() }
            } else {
                ChaosConfig {
                    disk_full: 0.6,
                    eintr: 0.3,
                    seed: chaos_seed,
                    ..ChaosConfig::none()
                }
            };
            ckpt.attach_chaos(&ChaosPlan::sample(&config));
            // The faulted pass may legitimately end with a checkpoint
            // error; the run itself still completes in memory.
            let _ = run_policy_with(
                &figure,
                PolicyKind::abm_balanced(),
                RunOptions {
                    checkpoint: Some(&mut ckpt),
                    max_workers: Some(2),
                    ..RunOptions::default()
                },
            );
        }
        let mut ckpt = Checkpoint::open(&path, true).unwrap();
        let report = run_policy_with(
            &figure,
            PolicyKind::abm_balanced(),
            RunOptions {
                checkpoint: Some(&mut ckpt),
                max_workers: Some(2),
                ..RunOptions::default()
            },
        ).unwrap();
        prop_assert_eq!(report.completed_networks, figure.network_samples);
        prop_assert_eq!(&report.accumulator, &reference);
        std::fs::remove_file(&path).ok();
    }
}
