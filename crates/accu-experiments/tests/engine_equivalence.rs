//! Property tests pinning the scratch-reuse episode engine — and the
//! SoA batched sampler layered on it — to the allocating reference
//! path: same seeds, same instances, same faults — bit-identical
//! outcomes, at the single-episode, batched-lane, and whole-figure
//! level.

use accu_core::{
    run_attack_episode, run_attack_faulted, BatchScratch, EpisodeScratch, FaultConfig, FaultPlan,
    Realization, RetryPolicy, ValidationMode,
};
use accu_datasets::{apply_protocol, DatasetSpec, ProtocolConfig};
use accu_experiments::{
    run_policy, run_policy_tuned, run_policy_with, EngineMode, FigureRun, PolicyKind, RunOptions,
};
use accu_telemetry::Recorder;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_figure(seed: u64, intensity: f64, validation: ValidationMode) -> FigureRun {
    FigureRun {
        dataset: DatasetSpec::facebook().scaled(0.02), // 80 nodes
        protocol: ProtocolConfig {
            cautious_count: 2,
            degree_band: (5, 80),
            ..ProtocolConfig::default()
        },
        budget: 12,
        network_samples: 3,
        runs_per_network: 4,
        seed,
        faults: FaultConfig::scaled(intensity),
        retry: RetryPolicy::standard(),
        validation,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One `EpisodeScratch` + one policy instance reused across many
    /// episodes must reproduce the allocating path (fresh realization,
    /// fresh policy, fresh buffers) request-for-request, including the
    /// fault trace.
    #[test]
    fn scratch_engine_episodes_match_allocating_path(
        seed in 0u64..1_000,
        intensity in 0.0f64..0.6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = DatasetSpec::facebook()
            .scaled(0.02)
            .generate(&mut rng)
            .expect("generation");
        let instance = apply_protocol(
            graph,
            &ProtocolConfig {
                cautious_count: 2,
                degree_band: (5, 80),
                ..ProtocolConfig::default()
            },
            &mut rng,
        )
        .expect("protocol");
        let k = 12;
        let faults = FaultConfig::scaled(intensity);
        let retry = RetryPolicy::standard();
        let recorder = Recorder::disabled();

        for policy_kind in PolicyKind::extended_lineup() {
            let mut scratch = EpisodeScratch::new();
            // Two identical policy instances fed the same episode
            // sequence: stateful policies (Random, Snowball) advance
            // their RNG across episodes, so the reference must reuse
            // its instance exactly like the engine does.
            let mut reused = policy_kind.instantiate(seed ^ 0xA5A5);
            let mut reference_policy = policy_kind.instantiate(seed ^ 0xA5A5);
            let mut fresh_seed_rng = StdRng::seed_from_u64(seed.wrapping_add(1));
            for episode in 0..4 {
                let run_seed: u64 = fresh_seed_rng.gen();
                let plan = FaultPlan::sample(&faults, run_seed, k);

                // Allocating reference: fresh realization and buffers.
                let reference_real =
                    Realization::sample(&instance, &mut StdRng::seed_from_u64(run_seed));
                let reference = run_attack_faulted(
                    &instance,
                    &reference_real,
                    reference_policy.as_mut(),
                    k,
                    &plan,
                    &retry,
                );

                // Scratch engine: shared buffers, shared policy.
                scratch.prepare(&instance);
                scratch
                    .realization
                    .sample_into(&instance, &mut StdRng::seed_from_u64(run_seed));
                let outcome = run_attack_episode(
                    &instance,
                    reused.as_mut(),
                    k,
                    &plan,
                    &retry,
                    &recorder,
                    &mut scratch,
                );

                prop_assert_eq!(
                    outcome,
                    &reference,
                    "policy {} episode {} diverged",
                    policy_kind.name(),
                    episode
                );
            }
        }
    }

    /// The SoA batched sampler must reproduce the scalar scratch path
    /// episode-for-episode for every policy in the extended lineup,
    /// including the fault trace: each lane's realization comes only
    /// from its own episode seed, so lane width must never matter.
    #[test]
    fn batched_lanes_match_scalar_episodes(
        seed in 0u64..1_000,
        intensity in 0.0f64..0.6,
        lanes in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = DatasetSpec::facebook()
            .scaled(0.02)
            .generate(&mut rng)
            .expect("generation");
        let instance = apply_protocol(
            graph,
            &ProtocolConfig {
                cautious_count: 2,
                degree_band: (5, 80),
                ..ProtocolConfig::default()
            },
            &mut rng,
        )
        .expect("protocol");
        let k = 12;
        let faults = FaultConfig::scaled(intensity);
        let retry = RetryPolicy::standard();
        let recorder = Recorder::disabled();
        let episodes = 6;
        let mut seed_rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        let run_seeds: Vec<u64> = (0..episodes).map(|_| seed_rng.gen()).collect();

        for policy_kind in PolicyKind::extended_lineup() {
            let mut batch = BatchScratch::new(lanes);
            let mut scratch = EpisodeScratch::new();
            let mut batched_policy = policy_kind.instantiate(seed ^ 0x5A5A);
            let mut scalar_policy = policy_kind.instantiate(seed ^ 0x5A5A);
            for (block_index, block) in run_seeds.chunks(lanes).enumerate() {
                batch.sample_lanes(&instance, block);
                for (lane, &run_seed) in block.iter().enumerate() {
                    let plan = FaultPlan::sample(&faults, run_seed, k);

                    // Scalar reference: one-at-a-time sampling into a
                    // dedicated scratch.
                    scratch.prepare(&instance);
                    scratch
                        .realization
                        .sample_into(&instance, &mut StdRng::seed_from_u64(run_seed));
                    let reference = run_attack_episode(
                        &instance,
                        scalar_policy.as_mut(),
                        k,
                        &plan,
                        &retry,
                        &recorder,
                        &mut scratch,
                    )
                    .clone();

                    let outcome = run_attack_episode(
                        &instance,
                        batched_policy.as_mut(),
                        k,
                        &plan,
                        &retry,
                        &recorder,
                        batch.lane(lane),
                    );
                    prop_assert_eq!(
                        outcome,
                        &reference,
                        "policy {} block {} lane {} diverged",
                        policy_kind.name(),
                        block_index,
                        lane
                    );
                }
            }
        }
    }

    /// Every [`EngineMode`] must aggregate to the identical figure
    /// result — the mode only changes sampling memory-access order,
    /// never the streams — for the full extended lineup under faults.
    #[test]
    fn engine_modes_agree_on_whole_figures(
        seed in 0u64..1_000,
        intensity in 0.0f64..0.5,
        lanes in 1usize..7,
    ) {
        let fig = small_figure(seed, intensity, ValidationMode::default());
        for policy_kind in PolicyKind::extended_lineup() {
            let scalar = run_policy_with(
                &fig,
                policy_kind,
                RunOptions {
                    engine: EngineMode::Scalar,
                    ..RunOptions::default()
                },
            )
            .expect("scalar run");
            for engine in [EngineMode::Batched(lanes), EngineMode::Auto] {
                let other = run_policy_with(
                    &fig,
                    policy_kind,
                    RunOptions {
                        engine,
                        ..RunOptions::default()
                    },
                )
                .expect("batched run");
                prop_assert_eq!(
                    &scalar.accumulator,
                    &other.accumulator,
                    "policy {} diverged under {:?}",
                    policy_kind.name(),
                    engine
                );
            }
        }
    }

    /// The chunked work-queue scheduler must aggregate to exactly the
    /// sequential result for every policy in the extended lineup, under
    /// faults and under both validation modes the figures ship with.
    #[test]
    fn chunked_runner_matches_sequential_runner(
        seed in 0u64..1_000,
        intensity in 0.0f64..0.5,
        validate_off in any::<bool>(),
    ) {
        let validation = if validate_off {
            ValidationMode::Off
        } else {
            ValidationMode::default()
        };
        let fig = small_figure(seed, intensity, validation);
        for policy_kind in PolicyKind::extended_lineup() {
            let sequential = run_policy(&fig, policy_kind);
            let chunked = run_policy_tuned(
                &fig,
                policy_kind,
                &Recorder::disabled(),
                None,
                Some(3),
                Some(4),
            )
            .expect("chunked run");
            prop_assert_eq!(
                &sequential,
                &chunked.accumulator,
                "policy {} diverged under chunked scheduling",
                policy_kind.name()
            );
        }
    }
}
