//! Integration tests for the `accu-obs` observability layer: progress
//! streams must be byte-stable across scheduling, the analyzer
//! binaries (`telemetry_diff`, `bench_report`, `trace_explain`) must
//! verdict and exit correctly, and a live run must expose a valid
//! Prometheus scrape.

use std::path::{Path, PathBuf};
use std::process::Command;

use accu_core::{FaultConfig, RetryPolicy, ValidationMode};
use accu_datasets::{DatasetSpec, ProtocolConfig};
use accu_experiments::{
    run_policy_traced, run_policy_with, FigureRun, PolicyKind, RunOptions, Telemetry,
};
use accu_telemetry::obs::{validate_prometheus, MetricsServer, Observer};
use accu_telemetry::{Recorder, Tracer, DEFAULT_TRACK_CAPACITY};

/// A small but non-trivial figure configuration shared by the tests.
fn small_figure(seed: u64) -> FigureRun {
    FigureRun {
        dataset: DatasetSpec::facebook().scaled(0.02), // 80 nodes
        protocol: ProtocolConfig {
            cautious_count: 2,
            degree_band: (5, 80),
            ..ProtocolConfig::default()
        },
        budget: 12,
        network_samples: 4,
        runs_per_network: 3,
        seed,
        faults: FaultConfig::none(),
        retry: RetryPolicy::standard(),
        validation: ValidationMode::default(),
    }
}

/// A fresh scratch directory under the target tmpdir.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("accu-obs-it-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `policy` over `figure` streaming quiet progress JSONL to
/// `path` with the given scheduling knobs.
fn run_streaming(figure: &FigureRun, path: &Path, workers: usize, chunks: usize) {
    let report = run_policy_with(
        figure,
        PolicyKind::abm_balanced(),
        RunOptions {
            observer: Observer::to_path_quiet(path).unwrap(),
            max_workers: Some(workers),
            chunks_per_network: Some(chunks),
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(report.completed_networks, figure.network_samples);
}

#[test]
fn progress_stream_is_byte_identical_across_worker_counts() {
    let dir = scratch_dir("stream");
    let figure = small_figure(2024);
    let serial = dir.join("serial.jsonl");
    let parallel = dir.join("parallel.jsonl");
    run_streaming(&figure, &serial, 1, 1);
    run_streaming(&figure, &parallel, 4, 3);
    let serial_bytes = std::fs::read(&serial).unwrap();
    let parallel_bytes = std::fs::read(&parallel).unwrap();
    assert!(!serial_bytes.is_empty());
    assert_eq!(
        serial_bytes, parallel_bytes,
        "progress JSONL must not depend on scheduling"
    );
    let text = String::from_utf8(serial_bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines[0].contains("\"type\":\"run_begin\""));
    assert!(lines.last().unwrap().contains("\"type\":\"run_end\""));
    assert_eq!(
        lines.len(),
        2 + figure.network_samples,
        "begin + one line per network + end"
    );
    // Network lines stream in index order regardless of which worker
    // finished first.
    for (i, line) in lines[1..lines.len() - 1].iter().enumerate() {
        assert!(
            line.contains(&format!("\"net\":{i},")),
            "line {i} out of order: {line}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn live_scrape_of_a_real_run_is_valid_prometheus() {
    use std::io::{Read as _, Write as _};

    let figure = small_figure(7);
    let recorder = Recorder::enabled();
    let observer = Observer::quiet();
    let server =
        MetricsServer::bind("127.0.0.1:0", recorder.clone(), "obs-it", observer.clone()).unwrap();
    run_policy_with(
        &figure,
        PolicyKind::abm_balanced(),
        RunOptions {
            recorder,
            observer,
            ..RunOptions::default()
        },
    )
    .unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (_, body) = response.split_once("\r\n\r\n").unwrap();
    let stats = validate_prometheus(body).unwrap();
    assert!(stats.families > 0 && stats.samples > 0);
    assert!(body.contains("accu_runner_episodes{run=\"obs-it\"}"));
    assert!(body.contains("accu_obs_episodes_done{run=\"obs-it\"}"));
    // The in-flight gauge exists and has settled back to zero.
    assert!(body.contains("accu_runner_networks_inflight{run=\"obs-it\"} 0"));
}

/// Writes a synthetic telemetry snapshot with the given runner
/// throughput ingredients.
fn write_snapshot(path: &Path, label: &str, episodes: u64, per_network_ns: u64, nets: u64) {
    let rec = Recorder::enabled();
    rec.counter("runner.episodes").add(episodes);
    rec.counter("runner.networks").add(nets);
    for _ in 0..nets {
        rec.histogram("runner.network_ns").record(per_network_ns);
    }
    let snap = rec.snapshot(label).unwrap();
    std::fs::write(path, format!("{}\n", snap.to_json())).unwrap();
}

#[test]
fn telemetry_diff_passes_identical_runs_and_flags_regressions() {
    let dir = scratch_dir("diff");
    let base_a = dir.join("base_a.jsonl");
    let base_b = dir.join("base_b.jsonl");
    let same = dir.join("same.jsonl");
    let slow = dir.join("slow.jsonl");
    // Baselines: 100 episodes over 1s of network time = 100 eps/s.
    write_snapshot(&base_a, "base", 100, 250_000_000, 4);
    write_snapshot(&base_b, "base", 100, 250_000_000, 4);
    write_snapshot(&same, "candidate", 100, 250_000_000, 4);
    // Candidate: 40% slower — past the default 25% band.
    write_snapshot(&slow, "candidate", 60, 250_000_000, 4);

    let diff = env!("CARGO_BIN_EXE_telemetry_diff");
    let ok = Command::new(diff)
        .args([&base_a, &base_b, &same].map(|p| p.as_os_str().to_owned()))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(
        ok.status.success(),
        "identical runs must pass: {stdout} {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(stdout.contains("verdict: ok"), "stdout: {stdout}");

    let bad = Command::new(diff)
        .args([&base_a, &base_b, &slow].map(|p| p.as_os_str().to_owned()))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert_eq!(
        bad.status.code(),
        Some(1),
        "a 40% slowdown must exit 1: {stdout}"
    );
    assert!(stdout.contains("verdict: REGRESSION"), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_diff_validates_prometheus_expositions() {
    let dir = scratch_dir("promcheck");
    let good = dir.join("good.prom");
    let bad = dir.join("bad.prom");
    let rec = Recorder::enabled();
    rec.counter("runner.episodes").add(5);
    std::fs::write(
        &good,
        accu_telemetry::obs::encode_prometheus(&rec.snapshot("ci").unwrap()),
    )
    .unwrap();
    std::fs::write(&bad, "accu_broken{run=\"x\" 5\n").unwrap();

    let diff = env!("CARGO_BIN_EXE_telemetry_diff");
    let ok = Command::new(diff)
        .arg("--check-prometheus")
        .arg(&good)
        .output()
        .unwrap();
    assert!(ok.status.success());
    assert!(String::from_utf8_lossy(&ok.stdout).contains("valid exposition"));
    let fail = Command::new(diff)
        .arg("--check-prometheus")
        .arg(&bad)
        .output()
        .unwrap();
    assert_eq!(fail.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_report_renders_the_trajectory_table() {
    let dir = scratch_dir("benchreport");
    let trajectory = dir.join("trajectory.jsonl");
    std::fs::write(
        &trajectory,
        concat!(
            "{\"date\":\"2026-08-06\",\"bench\":\"engine\",\"fixture\":\"t\",\"budget\":120,\"eps_per_sec\":61.09,\"status\":\"ok\"}\n",
            "{\"schema\":2,\"git\":\"deadbeef1234\",\"date\":\"2026-08-07\",\"bench\":\"engine\",\"fixture\":\"t\",\"budget\":120,\"eps_per_sec\":64.5,\"status\":\"ok\"}\n",
        ),
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_bench_report"))
        .arg(&trajectory)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("| 2026-08-07 | engine | t | 120 | 64.50 | ok | deadbeef1234 | 2 |"));
    assert!(stdout.contains("Last healthy: **64.50 eps/s**"));
    // Missing file is a usage-style failure, not a panic.
    let missing = Command::new(env!("CARGO_BIN_EXE_bench_report"))
        .arg(dir.join("nope.jsonl"))
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_explain_exits_nonzero_on_replay_verification_failure() {
    let dir = scratch_dir("explain");
    let figure = small_figure(11);
    let tracer = Tracer::with_config(1, DEFAULT_TRACK_CAPACITY);
    run_policy_traced(
        &figure,
        PolicyKind::abm_balanced(),
        &Recorder::disabled(),
        &tracer,
        None,
    )
    .unwrap();
    let causal = tracer.export_causal().expect("tracer enabled");
    let clean = dir.join("run.causal.jsonl");
    std::fs::write(&clean, &causal).unwrap();

    let explain = env!("CARGO_BIN_EXE_trace_explain");
    let ok = Command::new(explain)
        .arg("--quiet")
        .arg(&clean)
        .output()
        .unwrap();
    assert!(
        ok.status.success(),
        "faithful log must verify: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // Tamper with one recorded total_benefit: the replay must notice
    // and the binary must exit non-zero.
    let needle = "\"total_benefit\":";
    let at = causal
        .find("episode_end")
        .and_then(|end_at| {
            causal[end_at..]
                .find(needle)
                .map(|o| end_at + o + needle.len())
        })
        .expect("an episode_end event with total_benefit");
    let value_len = causal[at..]
        .find([',', '}'])
        .expect("number ends before the object does");
    let mut tampered = causal.clone();
    tampered.replace_range(at..at + value_len, "987654.25");
    let bad = dir.join("tampered.causal.jsonl");
    std::fs::write(&bad, &tampered).unwrap();
    let fail = Command::new(explain)
        .arg("--quiet")
        .arg(&bad)
        .output()
        .unwrap();
    assert_eq!(
        fail.status.code(),
        Some(1),
        "tampered log must fail verification: {}",
        String::from_utf8_lossy(&fail.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watchdog_strict_flag_is_carried_by_telemetry() {
    // End-to-end strict-exit is exercised by the CI smoke job (it must
    // observe the process exit code); here we pin the wiring.
    let cli = accu_experiments::Cli::parse_from(["--watchdog=strict,stall=1"]).unwrap();
    let tel = Telemetry::from_cli(&cli, "strict-wiring");
    assert!(tel.watchdog_armed());
    assert_eq!(tel.observer().alarm_count(), 0);
}
