//! Property tests for the robustness layer: fault-plan determinism,
//! zero-fault transparency, and checkpoint/resume exactness.

use accu_core::{
    run_attack, run_attack_faulted, FaultConfig, FaultPlan, RetryPolicy, ValidationMode,
};
use accu_datasets::{apply_protocol, DatasetSpec, ProtocolConfig};
use accu_experiments::{run_policy, run_policy_checked, Checkpoint, FigureRun, PolicyKind};
use accu_telemetry::Recorder;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small but non-trivial figure configuration shared by the tests.
fn small_figure(seed: u64) -> FigureRun {
    FigureRun {
        dataset: DatasetSpec::facebook().scaled(0.02), // 80 nodes
        protocol: ProtocolConfig {
            cautious_count: 2,
            degree_band: (5, 80),
            ..ProtocolConfig::default()
        },
        budget: 12,
        network_samples: 3,
        runs_per_network: 2,
        seed,
        faults: FaultConfig::none(),
        retry: RetryPolicy::standard(),
        validation: ValidationMode::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same (config, seed, budget) triple yields bit-identical fault
    /// plans no matter which thread samples it — the invariant that
    /// makes cross-policy comparisons paired and reruns reproducible.
    #[test]
    fn fault_plans_are_deterministic_across_threads(
        seed in any::<u64>(),
        intensity in 0.0f64..=1.0,
        budget in 1usize..64,
    ) {
        let config = FaultConfig::scaled(intensity);
        let reference = FaultPlan::sample(&config, seed, budget);
        let sampled: Vec<FaultPlan> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let config = &config;
                    scope.spawn(move || FaultPlan::sample(config, seed, budget))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for plan in sampled {
            prop_assert_eq!(&plan, &reference);
        }
        // And resampling in-thread is stable too.
        prop_assert_eq!(FaultPlan::sample(&config, seed, budget), reference);
    }

    /// A trivial fault plan is invisible: for every policy in the
    /// extended lineup, the faulted simulator entry point reproduces the
    /// plain one's outcome bit-for-bit, whatever the retry policy.
    #[test]
    fn zero_faults_reproduce_plain_outcomes_for_every_policy(
        seed in any::<u64>(),
        budget in 1usize..24,
        max_retries in 0u32..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = DatasetSpec::facebook()
            .scaled(0.02)
            .generate(&mut rng)
            .unwrap();
        let protocol = ProtocolConfig {
            cautious_count: 2,
            degree_band: (5, 80),
            ..ProtocolConfig::default()
        };
        let instance = apply_protocol(graph, &protocol, &mut rng).unwrap();
        let realization = accu_core::Realization::sample(&instance, &mut rng);
        let retry = RetryPolicy {
            max_retries,
            backoff_base: 1,
            backoff_cap: 8,
            jitter_pct: 0,
        };
        for kind in PolicyKind::extended_lineup() {
            let policy_seed = rng.gen();
            let plain = run_attack(
                &instance,
                &realization,
                kind.instantiate(policy_seed).as_mut(),
                budget,
            );
            let faulted = run_attack_faulted(
                &instance,
                &realization,
                kind.instantiate(policy_seed).as_mut(),
                budget,
                &FaultPlan::none(),
                &retry,
            );
            prop_assert_eq!(&faulted, &plain, "{} diverged under a trivial plan", kind.name());
            prop_assert!(faulted.faults.is_clean());
        }
    }

    /// Resuming from a checkpoint that covers any number of completed
    /// networks produces exactly the uninterrupted aggregate.
    ///
    /// The interrupted file is built the way a real crash builds it: a
    /// full checkpointed run is truncated to its first `completed`
    /// entries (plus half of the next line, the signature a SIGKILL
    /// mid-append leaves behind).
    #[test]
    fn checkpoint_resume_equals_uninterrupted(
        seed in any::<u64>(),
        completed in 0usize..3,
    ) {
        let fig = small_figure(seed);
        let policy = PolicyKind::abm_balanced();
        let reference = run_policy(&fig, policy);

        let path = std::env::temp_dir().join(format!(
            "accu-robustness-{}-{}-{}.jsonl",
            std::process::id(),
            seed,
            completed
        ));
        {
            let mut ckpt = Checkpoint::create(&path).unwrap();
            let report =
                run_policy_checked(&fig, policy, &Recorder::disabled(), Some(&mut ckpt))
                    .unwrap();
            assert_eq!(&report.accumulator, &reference);
        }
        // Keep the header, `completed` full entries, and a torn partial
        // of the next entry.
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 1 + fig.network_samples);
        let mut interrupted: Vec<String> =
            lines[..1 + completed].iter().map(|l| l.to_string()).collect();
        let torn = lines[1 + completed];
        interrupted.push(torn[..torn.len() / 2].to_string());
        std::fs::write(&path, interrupted.join("\n")).unwrap();

        let mut ckpt = Checkpoint::resume(&path).unwrap();
        prop_assert_eq!(ckpt.loaded_entries(), completed);
        prop_assert_eq!(ckpt.skipped_lines(), 1);
        let report =
            run_policy_checked(&fig, policy, &Recorder::disabled(), Some(&mut ckpt)).unwrap();
        prop_assert_eq!(report.resumed_networks, completed);
        prop_assert_eq!(report.completed_networks, fig.network_samples);
        prop_assert_eq!(&report.accumulator, &reference);
        std::fs::remove_file(&path).ok();
    }
}
