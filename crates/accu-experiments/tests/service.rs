//! Integration tests for the crash-only service daemon: at-most-once
//! execution across racing daemons, stale-lease adoption with torn
//! checkpoints, idempotent resubmission, admission control, and typed
//! bind errors.
//!
//! Everything here runs real daemons (threads, loopback TCP, on-disk
//! registries) against tiny figure specs, and every recovery assertion
//! is a *byte* comparison against an uninterrupted batch run of the
//! same spec — the service's headline guarantee.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use accu_experiments::service::{
    result_csv, ClientError, Daemon, DaemonConfig, JobSpec, JobState, Registry, ServiceClient,
};
use accu_experiments::{run_policy_checked, Checkpoint};
use accu_telemetry::Recorder;
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "accu_service_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A spec small enough that a job finishes in well under a second.
fn tiny_spec(seed: u64) -> JobSpec {
    JobSpec {
        budget: 6,
        samples: 2,
        runs: 1,
        seed,
        ..JobSpec::default()
    }
}

/// The uninterrupted batch answer for `spec`: its result CSV and the
/// number of checkpoint entries a clean run records.
fn reference(spec: &JobSpec, dir: &Path) -> (String, usize) {
    let figure = spec.figure().expect("valid spec");
    let policy = spec.policy_kind().expect("valid policy");
    let path = dir.join("reference_checkpoint.jsonl");
    let mut ckpt = Checkpoint::create(&path).expect("create checkpoint");
    let report = run_policy_checked(&figure, policy, &Recorder::disabled(), Some(&mut ckpt))
        .expect("reference run");
    let entries = Checkpoint::resume(&path).expect("reread").loaded_entries();
    (result_csv(&figure, policy, &report.accumulator), entries)
}

fn client_for(daemon: &Daemon) -> ServiceClient {
    ServiceClient::connect(daemon.addr().to_string()).with_seed(7)
}

/// Two daemons share one registry pre-populated with queued jobs; both
/// startup sweeps adopt everything, four workers race on three jobs,
/// and the leases must keep execution at-most-once: every job ends at
/// epoch 1 (exactly one acquisition, zero takeovers), its checkpoint is
/// clean and complete, and its result is byte-identical to batch.
#[test]
fn racing_daemons_never_double_run_a_job() {
    let dir = temp_dir("race");
    let specs: Vec<JobSpec> = (0..3).map(|i| tiny_spec(100 + i)).collect();
    {
        let reg = Registry::open(&dir, 3_000).expect("open registry");
        for (i, spec) in specs.iter().enumerate() {
            reg.submit(&format!("race-{i}"), spec).expect("seed job");
        }
    }
    let config = |_: usize| DaemonConfig {
        lease_ttl: Duration::from_secs(3),
        max_jobs: 2,
        ..DaemonConfig::new(&dir)
    };
    let a = Daemon::start(config(0)).expect("daemon a");
    let b = Daemon::start(config(1)).expect("daemon b");
    let client = client_for(&b);
    for (i, spec) in specs.iter().enumerate() {
        let id = format!("race-{i}");
        let status = client
            .wait_done(&id, Duration::from_secs(120))
            .expect("job finishes");
        assert_eq!(status.state, JobState::Done, "{id}: {status}");
        assert_eq!(
            status.epoch, 1,
            "{id} must be executed by exactly one acquirer, no takeovers"
        );
        let reg = Registry::open(&dir, 3_000).expect("reopen registry");
        let ckpt = Checkpoint::resume(reg.checkpoint_path(&id)).expect("parse checkpoint");
        assert_eq!(ckpt.skipped_lines(), 0, "{id}: checkpoint must be clean");
        let (ref_csv, ref_entries) = reference(spec, &dir);
        assert_eq!(
            ckpt.loaded_entries(),
            ref_entries,
            "{id}: one execution's worth of entries, no duplicates"
        );
        assert_eq!(
            client.result_csv(&id).expect("result"),
            ref_csv,
            "{id}: recovered result must be byte-identical to batch"
        );
    }
    drop(a);
    drop(b);
    let _ = fs::remove_dir_all(&dir);
}

/// A job left behind by a "crashed" owner — stale lease, checkpoint
/// with a torn tail — is adopted by a fresh daemon's startup sweep,
/// resumed (recomputing only the torn entry), and finishes with a
/// byte-identical result and a status record that names the recovery.
#[test]
fn stale_lease_with_torn_checkpoint_is_adopted_byte_identically() {
    let dir = temp_dir("adopt");
    let spec = tiny_spec(7);
    let (ref_csv, ref_entries) = reference(&spec, &dir);
    let id = "adopt-1";
    {
        let reg = Registry::open(&dir, 150).expect("open registry");
        reg.submit(id, &spec).expect("seed job");
        // Simulate the dead owner's progress: a full checkpoint whose
        // final append was torn mid-write by the crash.
        let figure = spec.figure().unwrap();
        let policy = spec.policy_kind().unwrap();
        let mut ckpt = Checkpoint::create(reg.checkpoint_path(id)).unwrap();
        run_policy_checked(&figure, policy, &Recorder::disabled(), Some(&mut ckpt)).unwrap();
        let bytes = fs::read(reg.checkpoint_path(id)).unwrap();
        fs::write(reg.checkpoint_path(id), &bytes[..bytes.len() - 30]).unwrap();
        // The dead owner's lease, never renewed again.
        assert!(reg.lease(id).acquire(1).expect("lease io").is_some());
    }
    std::thread::sleep(Duration::from_millis(300)); // let the lease expire
    let daemon = Daemon::start(DaemonConfig {
        lease_ttl: Duration::from_millis(150),
        ..DaemonConfig::new(&dir)
    })
    .expect("daemon");
    let client = client_for(&daemon);
    let status = client
        .wait_done(id, Duration::from_secs(120))
        .expect("adopted job finishes");
    assert_eq!(status.state, JobState::Done, "{status}");
    assert_eq!(status.epoch, 2, "takeover must advance the epoch");
    assert!(
        status.detail.contains("recovered from torn checkpoint"),
        "recovery must be named in the status: {status}"
    );
    assert!(status.recovered_lines >= 1, "{status}");
    assert!(status.resumed_networks >= 1, "{status}");
    assert_eq!(
        client.result_csv(id).expect("result"),
        ref_csv,
        "adopted result must be byte-identical to batch"
    );
    // The checkpoint is append-only: resume newline-terminates the torn
    // garbage and appends past it, so a re-read still skips exactly that
    // one line while holding a full set of entries.
    let reg = Registry::open(&dir, 150).expect("reopen");
    let ckpt = Checkpoint::resume(reg.checkpoint_path(id)).expect("parse checkpoint");
    assert_eq!(ckpt.skipped_lines(), 1, "the terminated torn line remains");
    assert_eq!(ckpt.loaded_entries(), ref_entries);
    drop(daemon);
    let _ = fs::remove_dir_all(&dir);
}

/// Resubmitting a finished job returns the cached result without
/// re-execution: the checkpoint file's bytes do not change.
#[test]
fn finished_jobs_resubmit_from_cache_without_reexecution() {
    let dir = temp_dir("idem");
    let spec = tiny_spec(21);
    let daemon = Daemon::start(DaemonConfig::new(&dir)).expect("daemon");
    let client = client_for(&daemon);
    let (state, cached, _) = client.submit("idem-1", &spec).expect("submit");
    assert_eq!(state, JobState::Queued);
    assert!(!cached);
    client
        .wait_done("idem-1", Duration::from_secs(120))
        .expect("finishes");
    let reg = Registry::open(&dir, 1_000).expect("reopen");
    let first_result = client.result_csv("idem-1").expect("result");
    let checkpoint_before = fs::read(reg.checkpoint_path("idem-1")).expect("checkpoint bytes");

    let (state, cached, attached) = client.submit("idem-1", &spec).expect("resubmit");
    assert_eq!(state, JobState::Done);
    assert!(cached, "finished job must answer from cache");
    assert!(!attached);
    assert_eq!(client.result_csv("idem-1").expect("result"), first_result);
    assert_eq!(
        fs::read(reg.checkpoint_path("idem-1")).expect("checkpoint bytes"),
        checkpoint_before,
        "cached resubmission must not re-execute"
    );

    // Same id, different spec: rejected, not silently replaced.
    let err = client
        .submit("idem-1", &tiny_spec(22))
        .expect_err("spec mismatch");
    assert!(
        matches!(&err, ClientError::Server(m) if m.contains("different spec")),
        "{err}"
    );
    drop(daemon);
    let _ = fs::remove_dir_all(&dir);
}

/// Admission control: with no workers and a one-slot queue, the second
/// distinct submission is answered `Overloaded` (and provably not
/// admitted), idempotent resubmission of the queued job still attaches,
/// and cancelling frees the slot.
#[test]
fn overloaded_daemon_rejects_new_submissions_with_a_typed_answer() {
    let dir = temp_dir("overload");
    let daemon = Daemon::start(DaemonConfig {
        max_jobs: 0, // accept-only: nothing ever leaves the queue
        queue_cap: 1,
        ..DaemonConfig::new(&dir)
    })
    .expect("daemon");
    let client = client_for(&daemon);
    let (state, _, _) = client.submit("full-1", &tiny_spec(1)).expect("first");
    assert_eq!(state, JobState::Queued);

    let err = client
        .submit("full-2", &tiny_spec(2))
        .expect_err("queue is full");
    match &err {
        ClientError::Overloaded { queued, cap, .. } => {
            assert_eq!((*queued, *cap), (1, 1));
        }
        other => panic!("expected Overloaded, got {other}"),
    }
    assert!(
        matches!(client.status("full-2"), Err(ClientError::Server(_))),
        "an overloaded submission must leave no trace in the registry"
    );

    // Idempotent resubmission needs no queue slot.
    let (state, cached, attached) = client.submit("full-1", &tiny_spec(1)).expect("resubmit");
    assert_eq!((state, cached, attached), (JobState::Queued, false, true));

    // Cancelling the queued job frees the slot for new work.
    let status = client.cancel("full-1").expect("cancel");
    assert_eq!(status.state, JobState::Cancelled);
    let (state, _, _) = client.submit("full-3", &tiny_spec(3)).expect("slot freed");
    assert_eq!(state, JobState::Queued);
    drop(daemon);
    let _ = fs::remove_dir_all(&dir);
}

/// A daemon refusing to bind reports a typed error naming the address.
#[test]
fn daemon_bind_collision_yields_a_typed_error_naming_the_address() {
    let dir = temp_dir("bind");
    let first = Daemon::start(DaemonConfig::new(dir.join("a"))).expect("first daemon");
    let taken = first.addr().to_string();
    let err = Daemon::start(DaemonConfig {
        listen: taken.clone(),
        ..DaemonConfig::new(dir.join("b"))
    })
    .expect_err("address already taken");
    assert!(err.is_addr_in_use(), "{err}");
    assert_eq!(err.addr(), taken);
    assert!(err.to_string().contains(&taken), "{err}");
    drop(first);
    let _ = fs::remove_dir_all(&dir);
}

/// The watch stream delivers the job's progress lines and terminates
/// with the job's terminal state — including when the subscription
/// arrives after the job already finished (pure replay).
#[test]
fn watch_streams_progress_lines_until_terminal() {
    let dir = temp_dir("watch");
    let daemon = Daemon::start(DaemonConfig::new(&dir)).expect("daemon");
    let client = client_for(&daemon);
    client.submit("watch-1", &tiny_spec(5)).expect("submit");
    let mut lines = Vec::new();
    let state = client
        .watch("watch-1", Duration::from_secs(120), |seq, line| {
            lines.push((seq, line.to_string()));
        })
        .expect("watch completes");
    assert_eq!(state, JobState::Done);
    assert!(!lines.is_empty(), "a run must emit progress events");
    // Replay after the fact sees the same stream from the top.
    let mut replayed = 0usize;
    let state = client
        .watch("watch-1", Duration::from_secs(30), |_, _| replayed += 1)
        .expect("replay completes");
    assert_eq!(state, JobState::Done);
    assert!(replayed >= lines.len(), "replay must not lose lines");
    drop(daemon);
    let _ = fs::remove_dir_all(&dir);
}

/// The `health` and `service_status` verbs summarize the daemon over
/// the wire: job counts, per-job rows, and a journal tail — and the
/// on-disk journal reconstructs the job's life by id alone.
#[test]
fn health_and_status_verbs_summarize_the_daemon() {
    let dir = temp_dir("obs_verbs");
    let daemon = Daemon::start(DaemonConfig::new(&dir)).expect("daemon");
    let client = client_for(&daemon);
    client.submit("obs-1", &tiny_spec(9)).expect("submit");
    let status = client
        .wait_done("obs-1", Duration::from_secs(120))
        .expect("finishes");
    assert_eq!(status.state, JobState::Done);

    let health = client.health().expect("health verb");
    assert_eq!(health.pid, std::process::id());
    assert_eq!(health.jobs, 1, "{health:?}");
    assert_eq!(health.done, 1, "{health:?}");
    assert_eq!(health.failed, 0, "{health:?}");

    let summary = client.service_status(50).expect("service_status verb");
    assert_eq!(summary.health.pid, health.pid);
    assert_eq!(summary.jobs.len(), 1);
    assert_eq!(summary.jobs[0].job, "obs-1");
    assert_eq!(summary.jobs[0].state, JobState::Done);
    assert!(
        !summary.journal_tail.is_empty(),
        "a finished job must leave journal lines"
    );

    // The journal on disk reconstructs the job's life by id alone.
    let read = accu_telemetry::read_journal(dir.join("journal.jsonl")).expect("read journal");
    read.check_seq_monotonic().expect("seq monotonic");
    let kinds: Vec<&str> = read.for_job("obs-1").map(|e| e.kind.as_str()).collect();
    for expected in ["job.submit", "lease.acquire", "job.run", "job.publish"] {
        assert!(
            kinds.contains(&expected),
            "journal must record {expected}, got {kinds:?}"
        );
    }
    let submit = kinds.iter().position(|k| *k == "job.submit").unwrap();
    let publish = kinds.iter().rposition(|k| *k == "job.publish").unwrap();
    assert!(submit < publish, "submit must precede publish: {kinds:?}");
    drop(daemon);
    let _ = fs::remove_dir_all(&dir);
}

/// A real `accu-serve` child armed with `--kill-after-registry` aborts
/// mid-job and must leave a readable flight-recorder dump in the job
/// dir whose final event is the journaled abort itself — the crash's
/// last words, correlated to the job that died.
#[test]
fn kill_after_registry_abort_leaves_a_readable_flight_dump() {
    use std::io::BufRead;

    let dir = temp_dir("obs_dump");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_accu-serve"))
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--registry")
        .arg(&dir)
        // Writes 1–2 are the submitted spec + queued status; write 3 is
        // the `running` status, so the abort lands with the job dir
        // fully formed.
        .arg("--kill-after-registry")
        .arg("3")
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn accu-serve");
    // The daemon's first stdout line names its ephemeral address.
    let stdout = child.stdout.take().expect("child stdout");
    let mut first_line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("read listen line");
    let addr = first_line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("listen line names the address")
        .to_string();

    let client = ServiceClient::connect(addr).with_seed(11);
    // The abort can race the response frame; the submission only needs
    // to land durably before the kill fires.
    let _ = client.submit("dump-1", &tiny_spec(13));
    let status = child.wait().expect("child exits");
    assert!(
        !status.success(),
        "the armed kill must abort the daemon, got {status:?}"
    );

    let dump_path = dir.join("jobs").join("dump-1").join("flight.jsonl");
    let dump = accu_telemetry::read_flight_dump(&dump_path).expect("readable flight dump");
    let last = dump.events.last().expect("dump holds the final events");
    assert_eq!(
        last.kind, "chaos.kill",
        "the dump's last event must be the abort itself: {last:?}"
    );
    assert_eq!(last.corr.job_id.as_deref(), Some("dump-1"), "{last:?}");
    assert!(
        last.message.contains("kill-after-registry"),
        "the abort names its channel: {last:?}"
    );
    // The shared journal also recorded the abort durably.
    let read = accu_telemetry::read_journal(dir.join("journal.jsonl")).expect("read journal");
    read.check_seq_monotonic().expect("seq monotonic");
    assert!(
        read.for_job("dump-1").any(|e| e.kind == "chaos.kill"),
        "journal must record the abort"
    );
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any number of same-process racers hammering one lease file grant
    /// exactly one winner, for both fresh acquisition and stale-lease
    /// takeover — the primitive the cross-daemon at-most-once guarantee
    /// reduces to.
    #[test]
    fn lease_races_grant_exactly_one_winner(seed in any::<u64>(), racers in 2usize..6) {
        let dir = temp_dir(&format!("prop_lease_{}", seed % 1024));
        let reg = Registry::open(&dir, 1_000).expect("open registry");
        reg.submit("prop-1", &tiny_spec(seed % 97)).expect("seed job");
        let lease_file = reg.lease("prop-1");
        let winners: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..racers)
                .map(|i| {
                    let lf = lease_file.clone();
                    scope.spawn(move || {
                        // Seeded stagger so different cases explore
                        // different interleavings.
                        std::thread::sleep(Duration::from_micros(
                            (seed ^ i as u64) % 200,
                        ));
                        usize::from(lf.acquire(1).expect("lease io").is_some())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        prop_assert_eq!(winners, 1, "fresh acquire");
        // Now every racer tries to take the (not actually stale) lease
        // over: again exactly one may win, and the epoch advances once.
        let current = lease_file.read().expect("read").expect("held");
        let winners: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..racers)
                .map(|i| {
                    let lf = lease_file.clone();
                    scope.spawn(move || {
                        std::thread::sleep(Duration::from_micros(
                            (seed.rotate_left(i as u32)) % 200,
                        ));
                        usize::from(lf.takeover(&current).expect("lease io").is_some())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        prop_assert_eq!(winners, 1, "takeover");
        prop_assert_eq!(lease_file.read().expect("read").expect("held").epoch, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// An expired lease plus a valid (cleanly truncated) checkpoint:
    /// whatever prefix of the work the dead owner completed, adoption
    /// resumes it and lands on the byte-identical batch result.
    #[test]
    fn expired_lease_with_valid_checkpoint_resumes_byte_identically(
        stale_epoch in 1u64..4,
        drop_entries in 1usize..3,
    ) {
        let dir = temp_dir(&format!("prop_resume_{stale_epoch}_{drop_entries}"));
        // Three networks → three checkpoint entries, so dropping up to
        // two still leaves at least one to resume from.
        let spec = JobSpec { samples: 3, ..tiny_spec(33) };
        let (ref_csv, _) = reference(&spec, &dir);
        let id = "prop-resume";
        {
            let reg = Registry::open(&dir, 120).expect("open registry");
            reg.submit(id, &spec).expect("seed job");
            let figure = spec.figure().unwrap();
            let policy = spec.policy_kind().unwrap();
            let mut ckpt = Checkpoint::create(reg.checkpoint_path(id)).unwrap();
            run_policy_checked(&figure, policy, &Recorder::disabled(), Some(&mut ckpt)).unwrap();
            // Cleanly drop whole trailing entries: a valid checkpoint
            // that simply ends early.
            let text = fs::read_to_string(reg.checkpoint_path(id)).unwrap();
            let lines: Vec<&str> = text.lines().collect();
            prop_assert!(lines.len() > drop_entries + 1); // keep header + 1 entry
            let kept = lines[..lines.len() - drop_entries].join("\n") + "\n";
            fs::write(reg.checkpoint_path(id), kept).unwrap();
            prop_assert!(reg.lease(id).acquire(stale_epoch).expect("lease io").is_some());
        }
        std::thread::sleep(Duration::from_millis(250)); // expire the lease
        let daemon = Daemon::start(DaemonConfig {
            lease_ttl: Duration::from_millis(120),
            ..DaemonConfig::new(&dir)
        })
        .expect("daemon");
        let client = client_for(&daemon);
        let status = client
            .wait_done(id, Duration::from_secs(120))
            .expect("adopted job finishes");
        prop_assert_eq!(status.state, JobState::Done);
        prop_assert_eq!(status.epoch, stale_epoch + 1);
        prop_assert!(status.resumed_networks >= 1, "{}", status);
        prop_assert_eq!(client.result_csv(id).expect("result"), ref_csv);
        drop(daemon);
        let _ = fs::remove_dir_all(&dir);
    }
}
