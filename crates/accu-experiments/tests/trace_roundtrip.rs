//! End-to-end trace round-trip properties:
//!
//! 1. **Non-perturbation** — running a figure with tracing on (any
//!    sampling period) yields a `TraceAccumulator` bit-identical to the
//!    untraced run; the tracer observes, never steers.
//! 2. **Structural validity** — the Chrome export of a real run passes
//!    [`validate_chrome_trace`] (what Perfetto requires to load it).
//! 3. **Bit-exact replay** — every sampled episode parsed back from the
//!    causal log reconstructs its `total_benefit` to the exact `f64`
//!    bits, including under fault injection.

use accu_core::{FaultConfig, RetryPolicy, ValidationMode};
use accu_datasets::{DatasetSpec, ProtocolConfig};
use accu_experiments::replay::{parse_causal_log, verify_episode, EpisodeEvent};
use accu_experiments::{run_policy_traced, run_policy_tuned, FigureRun, PolicyKind};
use accu_telemetry::{validate_chrome_trace, Recorder, Tracer, DEFAULT_TRACK_CAPACITY};
use proptest::prelude::*;

fn small_figure(seed: u64, intensity: f64) -> FigureRun {
    FigureRun {
        dataset: DatasetSpec::facebook().scaled(0.02), // 80 nodes
        protocol: ProtocolConfig {
            cautious_count: 2,
            degree_band: (5, 80),
            ..ProtocolConfig::default()
        },
        budget: 10,
        network_samples: 2,
        runs_per_network: 3,
        seed,
        faults: FaultConfig::scaled(intensity),
        retry: RetryPolicy::standard(),
        validation: ValidationMode::Lenient,
    }
}

/// Runs `figure` untraced and traced-with-`sample`, returning both
/// accumulators plus the tracer for export checks.
fn paired_run(
    figure: &FigureRun,
    policy: PolicyKind,
    sample: u64,
) -> (
    accu_core::TraceAccumulator,
    accu_core::TraceAccumulator,
    Tracer,
) {
    let untraced = run_policy_tuned(figure, policy, &Recorder::disabled(), None, None, None)
        .expect("untraced run")
        .accumulator;
    let tracer = Tracer::with_config(sample, DEFAULT_TRACK_CAPACITY);
    let traced = run_policy_traced(figure, policy, &Recorder::disabled(), &tracer, None)
        .expect("traced run")
        .accumulator;
    (untraced, traced, tracer)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tracing on/off/sampled never changes a single bit of the
    /// aggregate — the figure-level guarantee behind the CI check that
    /// fig2 CSVs are byte-identical with and without `--trace`.
    #[test]
    fn traced_runs_are_bit_identical_to_untraced(
        seed in 0u64..500,
        sample in 1u64..5,
        intensity in 0.0f64..0.5,
    ) {
        let figure = small_figure(seed, intensity);
        let (untraced, traced, _tracer) =
            paired_run(&figure, PolicyKind::abm_balanced(), sample);
        prop_assert_eq!(&untraced, &traced);
        // Series equality must hold bitwise, not just to an epsilon.
        let a = untraced.mean_cumulative_benefit();
        let b = traced.mean_cumulative_benefit();
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// A real run's Chrome export is structurally valid and its causal
    /// log replays every sampled episode bit-exactly — with faults
    /// injected, retries and truncated episodes included.
    #[test]
    fn real_runs_export_valid_traces_that_replay_exactly(
        seed in 0u64..500,
        sample in 1u64..4,
        intensity in 0.0f64..0.6,
    ) {
        let figure = small_figure(seed, intensity);
        let (_, _, tracer) = paired_run(&figure, PolicyKind::abm_balanced(), sample);
        let chrome = tracer.export_chrome().expect("tracer enabled");
        validate_chrome_trace(&chrome)
            .unwrap_or_else(|e| panic!("invalid chrome export: {e}"));
        let causal = tracer.export_causal().expect("tracer enabled");
        let log = parse_causal_log(&causal).expect("parsable causal log");
        prop_assert_eq!(log.dropped_events, 0, "ring must not wrap in this test");
        prop_assert_eq!(log.incomplete_episodes, 0);
        // Every global episode index hit by the sampling period shows
        // up exactly once, regardless of worker scheduling.
        let total = (figure.network_samples * figure.runs_per_network) as u64;
        let expected = (0..total).filter(|i| i % sample == 0).count();
        prop_assert_eq!(log.episodes.len(), expected);
        let mut seen: Vec<u64> = log.episodes.iter().map(|e| e.global_ep).collect();
        seen.sort_unstable();
        prop_assert_eq!(
            seen,
            (0..total).filter(|i| i % sample == 0).collect::<Vec<_>>()
        );
        for episode in &log.episodes {
            verify_episode(episode).unwrap_or_else(|e| panic!("replay mismatch: {e}"));
            prop_assert_eq!(episode.policy.as_str(), "ABM");
            prop_assert_eq!(episode.budget as usize, figure.budget);
            // ABM episodes carry the decision introspection layer: one
            // decide event per request.
            let decides = episode
                .events
                .iter()
                .filter(|e| matches!(e, EpisodeEvent::Decide(_)))
                .count();
            let requests = episode
                .events
                .iter()
                .filter(|e| matches!(e, EpisodeEvent::Request(_)))
                .count();
            prop_assert_eq!(decides, requests);
        }
    }
}

/// Non-ABM policies trace the simulator layer only; the replay check
/// still holds (no decide events, but requests and totals round-trip).
#[test]
fn baseline_policy_episodes_replay_without_decide_events() {
    let figure = small_figure(11, 0.3);
    let (untraced, traced, tracer) = paired_run(&figure, PolicyKind::Random, 1);
    assert_eq!(untraced, traced);
    let causal = tracer.export_causal().expect("tracer enabled");
    let log = parse_causal_log(&causal).expect("parsable");
    assert_eq!(
        log.episodes.len(),
        figure.network_samples * figure.runs_per_network
    );
    for episode in &log.episodes {
        verify_episode(episode).unwrap_or_else(|e| panic!("replay mismatch: {e}"));
        assert!(episode
            .events
            .iter()
            .all(|e| !matches!(e, EpisodeEvent::Decide(_))));
    }
}

/// The runner's stage spans show up as named tracks in the Chrome
/// export: one thread-name metadata row per worker, with chunk spans.
#[test]
fn chrome_export_carries_worker_tracks_and_stage_spans() {
    let figure = small_figure(3, 0.0);
    let (_, _, tracer) = paired_run(&figure, PolicyKind::abm_balanced(), 1);
    let chrome = tracer.export_chrome().expect("tracer enabled");
    let stats = validate_chrome_trace(&chrome).expect("valid");
    assert!(stats.tracks >= 1);
    assert_eq!(stats.metadata as usize, stats.tracks);
    assert!(stats.spans > 0, "load/chunk/episodes spans expected");
    assert!(stats.instants > 0, "episode markers expected");
    for name in ["\"load\"", "\"chunk\"", "\"episodes\"", "\"fold\""] {
        assert!(chrome.contains(name), "missing {name} span in export");
    }
}
