//! Lock-free monotonic counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing atomic counter.
///
/// Increments use relaxed ordering: counters are statistics, not
/// synchronization primitives, and relaxed `fetch_add` keeps the
/// instrumented hot paths at a single uncontended atomic instruction.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A possibly-no-op handle to a [`Counter`] in a recorder's registry.
///
/// Obtained from [`Recorder::counter`](crate::Recorder::counter); the
/// caller is expected to fetch handles once (outside the hot loop) and
/// increment through them. A handle from a disabled recorder holds no
/// counter and its methods do nothing.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(pub(crate) Option<Arc<Counter>>);

impl CounterHandle {
    /// A handle that ignores all increments.
    pub fn noop() -> Self {
        CounterHandle(None)
    }

    /// Whether increments are recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` (no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }

    /// Adds one (no-op when disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_reads() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn noop_handle_ignores_everything() {
        let h = CounterHandle::noop();
        h.incr();
        h.add(100);
        assert_eq!(h.value(), 0);
        assert!(!h.is_enabled());
    }

    #[test]
    fn live_handle_shares_the_counter() {
        let c = Arc::new(Counter::new());
        let h1 = CounterHandle(Some(c.clone()));
        let h2 = h1.clone();
        h1.add(2);
        h2.add(3);
        assert_eq!(c.value(), 5);
        assert_eq!(h1.value(), 5);
        assert!(h1.is_enabled());
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), 40_000);
    }
}
