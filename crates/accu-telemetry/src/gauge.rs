//! Lock-free gauges for in-flight state.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A settable signed gauge (last-write-wins), for in-flight state such
/// as "episodes currently running" or "networks remaining".
///
/// Unlike a [`Counter`](crate::Counter), a gauge can move down as well
/// as up; like a counter, every operation is a single relaxed atomic
/// instruction, cheap enough for per-episode bookkeeping.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A possibly-no-op handle to a [`Gauge`] in a recorder's registry.
///
/// Obtained from [`Recorder::gauge`](crate::Recorder::gauge). A handle
/// from a disabled recorder holds no gauge and its methods do nothing.
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(pub(crate) Option<Arc<Gauge>>);

impl GaugeHandle {
    /// A handle that ignores all updates.
    pub fn noop() -> Self {
        GaugeHandle(None)
    }

    /// Whether updates are recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Sets the gauge (no-op when disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.set(v);
        }
    }

    /// Adds `n` (no-op when disabled).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.add(n);
        }
    }

    /// Subtracts `n` (no-op when disabled).
    #[inline]
    pub fn sub(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.sub(n);
        }
    }

    /// Current value (0 when disabled).
    pub fn value(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moves_both_directions() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(7);
        assert_eq!(g.value(), 8);
        g.set(-3);
        assert_eq!(g.value(), -3);
    }

    #[test]
    fn noop_handle_ignores_everything() {
        let h = GaugeHandle::noop();
        h.set(9);
        h.add(1);
        h.sub(1);
        assert_eq!(h.value(), 0);
        assert!(!h.is_enabled());
    }

    #[test]
    fn live_handle_shares_the_gauge() {
        let g = Arc::new(Gauge::new());
        let h1 = GaugeHandle(Some(g.clone()));
        let h2 = h1.clone();
        h1.add(2);
        h2.sub(5);
        assert_eq!(g.value(), -3);
        assert!(h1.is_enabled());
    }
}
