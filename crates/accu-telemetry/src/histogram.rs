//! Log-bucketed histograms and RAII span timers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of power-of-two buckets: bucket `i` holds values whose
/// highest set bit is `i` (bucket 0 additionally holds 0), so the full
/// `u64` range is covered.
pub const BUCKETS: usize = 64;

/// A lock-free histogram over `u64` samples (typically nanoseconds)
/// with power-of-two buckets.
///
/// Recording is four relaxed atomic operations (bucket, count, sum,
/// max) plus one conditional min update — cheap enough for per-request
/// instrumentation. Quantiles are estimated from the bucket boundaries
/// (at most 2× off, which is plenty for "where does the time go"
/// profiling); `count`, `sum`, `mean`, `min` and `max` are exact.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket holding `value`. Zero maps to bucket 0 (the
/// `value | 1` below), so sub-resolution samples are counted, never
/// dropped — a span shorter than the clock tick still shows up.
#[inline]
fn bucket_index(value: u64) -> usize {
    (63 - (value | 1).leading_zeros()) as usize
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    ///
    /// A `value` of 0 is a real sample (e.g. a span faster than the
    /// clock's resolution): it lands in the first bucket and counts
    /// toward `count`, `min` and the quantiles like any other value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the bucket
    /// counts: the upper bound of the bucket containing the quantile
    /// rank, clamped to the observed max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                // Upper edge of bucket i: 2^(i+1) − 1.
                let upper = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max());
            }
        }
        self.max()
    }

    /// Raw bucket counts (index `i` = values with highest bit `i`).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// A possibly-no-op handle to a [`Histogram`] in a recorder's registry.
///
/// Obtained from [`Recorder::histogram`](crate::Recorder::histogram).
/// A handle from a disabled recorder records nothing and its
/// [`span`](HistogramHandle::span) never reads the clock.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(pub(crate) Option<Arc<Histogram>>);

impl HistogramHandle {
    /// A handle that ignores all samples.
    pub fn noop() -> Self {
        HistogramHandle(None)
    }

    /// Whether samples are recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one sample (no-op when disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    /// Starts a span: the guard records the elapsed wall-clock
    /// nanoseconds into this histogram when dropped. When the handle is
    /// disabled the guard is inert and `Instant::now` is never called.
    #[inline]
    pub fn span(&self) -> SpanGuard {
        SpanGuard {
            inner: self.0.as_ref().map(|h| (Arc::clone(h), Instant::now())),
        }
    }

    /// Number of recorded samples (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count())
    }

    /// Sum of recorded samples (0 when disabled).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum())
    }
}

/// RAII timer from [`HistogramHandle::span`]; records nanoseconds
/// elapsed between creation and drop.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(Arc<Histogram>, Instant)>,
}

impl SpanGuard {
    /// Stops the span early, recording now instead of at drop.
    pub fn finish(mut self) {
        self.record_now();
    }

    fn record_now(&mut self) {
        if let Some((hist, start)) = self.inner.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hist.record(nanos);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.record_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn exact_statistics() {
        let h = Histogram::new();
        for v in [5u64, 10, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 30);
        assert_eq!(h.mean(), 10.0);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn zero_duration_samples_land_in_first_bucket() {
        // Regression guard: a 0 ns sample (span shorter than the clock
        // resolution) must be recorded into bucket 0, not dropped.
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(8);
        assert_eq!(h.bucket_counts()[0], 2);
        assert_eq!(h.count(), 3, "zero samples must count");
        assert_eq!(h.sum(), 8);
        assert_eq!(h.min(), 0, "zero is a real minimum, not 'empty'");
        assert_eq!(h.max(), 8);
        // Median rank 2 falls in bucket 0 (upper edge 1, clamped by
        // nothing since max is 8).
        assert_eq!(h.quantile(0.5), 1);
        // All-zero histograms stay self-consistent too.
        let z = Histogram::new();
        z.record(0);
        assert_eq!(z.bucket_counts()[0], 1);
        assert_eq!(z.count(), 1);
        assert_eq!(z.quantile(1.0), 0); // clamped to the observed max
    }

    #[test]
    fn quantiles_are_bucket_bounded() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 3, upper edge 15
        }
        h.record(1000); // bucket 9, upper edge 1023
        assert_eq!(h.quantile(0.5), 15);
        // p100 lands in the top bucket but is clamped to the true max.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), 15); // rank clamps to the first sample
    }

    #[test]
    fn span_guard_records_once() {
        let hist = Arc::new(Histogram::new());
        let handle = HistogramHandle(Some(hist.clone()));
        {
            let _g = handle.span();
            std::hint::black_box(0);
        }
        assert_eq!(hist.count(), 1);
        handle.span().finish();
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn noop_handle_records_nothing() {
        let h = HistogramHandle::noop();
        h.record(5);
        let _g = h.span();
        drop(_g);
        assert_eq!(h.count(), 0);
        assert!(!h.is_enabled());
    }
}
