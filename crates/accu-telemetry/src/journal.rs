//! Correlated structured event journal and crash flight recorder.
//!
//! The journal is the service-grade forensic log: dependency-free
//! JSONL, one self-describing event per line, appended with the same
//! durability discipline as the runner's checkpoints (`write_all` +
//! `sync_all`, torn tails tolerated on read). Every event carries a
//! severity, a wall-clock timestamp, a per-writer monotonic sequence
//! number, and the correlation IDs ([`Corr`]) that let one
//! `grep job_id journal.jsonl` reconstruct a job's whole life across
//! daemon restarts and adoptions:
//!
//! ```text
//! {"type":"journal","writer":81253,"seq":4,"ts_ms":1754650000123,
//!  "sev":"info","kind":"lease.takeover","msg":"adopted stale lease",
//!  "job_id":"fig2-night","epoch":3,"attempt":2}
//! ```
//!
//! Several writers (daemon incarnations, workers) may append to one
//! file concurrently; each holds its own `(writer, seq)` stream, so a
//! reader can check per-writer monotonicity without any cross-process
//! coordination. A torn final line — the signature of `kill -9` mid
//! append — is dropped and counted by [`read_journal`], exactly like
//! checkpoint resume.
//!
//! The [`FlightRecorder`] is the always-on post-mortem companion: a
//! fixed-capacity ring of the most recent rendered journal lines
//! (mirroring the bounded-ring discipline of
//! [`TrackBuffer`](crate::TraceTrack)), dumped atomically (write a
//! temp sibling, rename, sync the dir) when something dies — a panic,
//! a fatal job failure, a watchdog alarm, or a chaos `kill-after`
//! abort — so every crash path leaves a readable tail of what the
//! process was doing.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::snapshot::json_escape;
use crate::trace::parse_json;

/// Event severity, ordered from chattiest to most alarming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Developer-level detail.
    Debug,
    /// Normal lifecycle transitions.
    Info,
    /// Something unusual that the system absorbed.
    Warn,
    /// A failure (job-fatal, crash, alarm).
    Error,
}

impl Severity {
    /// Wire encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses the wire encoding.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Correlation IDs threaded from the daemon through registry and lease
/// transitions into the runner's stages and the episode engine. All
/// fields are optional — an event carries exactly the coordinates that
/// exist at its layer — and every present field is emitted as a
/// top-level JSON key so `grep`-level reconstruction needs no parser.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Corr {
    /// The service job this event belongs to.
    pub job_id: Option<String>,
    /// The lease fencing epoch under which the writer held the job.
    pub epoch: Option<u64>,
    /// The execution attempt (1-based) within this daemon.
    pub attempt: Option<u64>,
    /// The sampled-network index inside the run.
    pub network: Option<u64>,
    /// The episode-chunk index inside the network.
    pub chunk: Option<u64>,
}

impl Corr {
    /// An empty correlation set (daemon-global events).
    pub fn none() -> Self {
        Corr::default()
    }

    /// Starts a correlation chain at a job.
    pub fn job(id: impl Into<String>) -> Self {
        Corr {
            job_id: Some(id.into()),
            ..Corr::default()
        }
    }

    /// Sets the lease epoch.
    #[must_use]
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Sets the attempt number.
    #[must_use]
    pub fn attempt(mut self, attempt: u64) -> Self {
        self.attempt = Some(attempt);
        self
    }

    /// Sets the network index.
    #[must_use]
    pub fn network(mut self, network: u64) -> Self {
        self.network = Some(network);
        self
    }

    /// Sets the chunk index.
    #[must_use]
    pub fn chunk(mut self, chunk: u64) -> Self {
        self.chunk = Some(chunk);
        self
    }

    fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        if let Some(job) = &self.job_id {
            let _ = write!(out, ",\"job_id\":\"{}\"", json_escape(job));
        }
        if let Some(epoch) = self.epoch {
            let _ = write!(out, ",\"epoch\":{epoch}");
        }
        if let Some(attempt) = self.attempt {
            let _ = write!(out, ",\"attempt\":{attempt}");
        }
        if let Some(network) = self.network {
            let _ = write!(out, ",\"network\":{network}");
        }
        if let Some(chunk) = self.chunk {
            let _ = write!(out, ",\"chunk\":{chunk}");
        }
    }
}

/// One parsed journal event.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEvent {
    /// The writer stream this event belongs to (pid + open-instance).
    pub writer: u64,
    /// Monotonic per-writer sequence number (0-based).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Severity.
    pub severity: Severity,
    /// Dotted event kind (`job.submit`, `lease.takeover`, `obs.alarm`,
    /// `chaos.kill`, `run.network`, ...).
    pub kind: String,
    /// Human-readable message.
    pub message: String,
    /// Correlation IDs present on the event.
    pub corr: Corr,
}

impl JournalEvent {
    /// Renders the single-line JSON form (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"journal\",\"writer\":{},\"seq\":{},\"ts_ms\":{},\
             \"sev\":\"{}\",\"kind\":\"{}\",\"msg\":\"{}\"",
            self.writer,
            self.seq,
            self.ts_ms,
            self.severity.as_str(),
            json_escape(&self.kind),
            json_escape(&self.message),
        );
        self.corr.render_into(&mut out);
        out.push('}');
        out
    }

    /// Parses one journal line; `None` for anything malformed (torn
    /// tails, foreign lines).
    pub fn from_json(line: &str) -> Option<JournalEvent> {
        let doc = parse_json(line.trim()).ok()?;
        if doc.get("type")?.as_str()? != "journal" {
            return None;
        }
        Some(JournalEvent {
            writer: doc.get("writer")?.as_u64()?,
            seq: doc.get("seq")?.as_u64()?,
            ts_ms: doc.get("ts_ms")?.as_u64()?,
            severity: Severity::parse(doc.get("sev")?.as_str()?)?,
            kind: doc.get("kind")?.as_str()?.to_string(),
            message: doc.get("msg")?.as_str()?.to_string(),
            corr: Corr {
                job_id: doc
                    .get("job_id")
                    .and_then(|v| v.as_str())
                    .map(str::to_string),
                epoch: doc.get("epoch").and_then(|v| v.as_u64()),
                attempt: doc.get("attempt").and_then(|v| v.as_u64()),
                network: doc.get("network").and_then(|v| v.as_u64()),
                chunk: doc.get("chunk").and_then(|v| v.as_u64()),
            },
        })
    }
}

/// What [`read_journal`] found in a journal file.
#[derive(Debug, Default)]
pub struct JournalRead {
    /// Every parseable event, in file order.
    pub events: Vec<JournalEvent>,
    /// Lines dropped because they did not parse — a crash mid-append
    /// legitimately leaves at most one per dead writer.
    pub skipped_lines: usize,
}

impl JournalRead {
    /// The events correlated to `job_id`, in file order.
    pub fn for_job<'a>(&'a self, job_id: &'a str) -> impl Iterator<Item = &'a JournalEvent> {
        self.events
            .iter()
            .filter(move |e| e.corr.job_id.as_deref() == Some(job_id))
    }

    /// Checks that every writer's sequence numbers strictly increase in
    /// file order — the multi-writer append invariant.
    ///
    /// # Errors
    ///
    /// Names the writer and offending sequence pair.
    pub fn check_seq_monotonic(&self) -> Result<(), String> {
        let mut last: std::collections::BTreeMap<u64, u64> = Default::default();
        for event in &self.events {
            if let Some(prev) = last.insert(event.writer, event.seq) {
                if event.seq <= prev {
                    return Err(format!(
                        "writer {} seq went {} -> {} (must strictly increase)",
                        event.writer, prev, event.seq
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Reads a journal file, dropping (and counting) unparseable lines.
///
/// # Errors
///
/// Any I/O error reading the file. A missing file is an empty journal,
/// not an error — a daemon that never logged is a valid post-mortem.
pub fn read_journal(path: impl AsRef<Path>) -> io::Result<JournalRead> {
    let text = match std::fs::read_to_string(path.as_ref()) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalRead::default()),
        Err(e) => return Err(e),
    };
    let mut read = JournalRead::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match JournalEvent::from_json(line) {
            Some(event) => read.events.push(event),
            None => read.skipped_lines += 1,
        }
    }
    Ok(read)
}

/// Distinguishes journal handles opened within one process, so two
/// handles in the same pid never share a `(writer, seq)` stream.
static WRITER_INSTANCE: AtomicU64 = AtomicU64::new(0);

/// Milliseconds since the Unix epoch (0 if the clock is before 1970).
fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

struct JournalInner {
    path: PathBuf,
    file: Mutex<File>,
    writer: u64,
    seq: AtomicU64,
    flight: Option<FlightRecorder>,
}

impl std::fmt::Debug for JournalInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalInner")
            .field("path", &self.path)
            .field("writer", &self.writer)
            .finish_non_exhaustive()
    }
}

/// A cheaply cloneable journal handle: either **enabled**, appending
/// durably to one JSONL file, or **disabled**, in which case every call
/// is a no-op (the service's default when observability is off).
#[derive(Debug, Clone, Default)]
pub struct Journal {
    inner: Option<Arc<JournalInner>>,
}

impl Journal {
    /// A no-op journal.
    pub fn disabled() -> Self {
        Journal { inner: None }
    }

    /// Opens (creating if needed) a journal appending to `path`. The
    /// writer id combines the pid with a per-process instance counter,
    /// so restarts — and re-opens within one process — always start a
    /// fresh `(writer, seq)` stream.
    ///
    /// # Errors
    ///
    /// Any error opening the file for append.
    pub fn append_to(path: impl Into<PathBuf>) -> io::Result<Journal> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let instance = WRITER_INSTANCE.fetch_add(1, Ordering::Relaxed);
        let writer = (u64::from(std::process::id()) << 16) | (instance & 0xFFFF);
        Ok(Journal {
            inner: Some(Arc::new(JournalInner {
                path,
                file: Mutex::new(file),
                writer,
                seq: AtomicU64::new(0),
                flight: None,
            })),
        })
    }

    /// Returns this journal with every event mirrored into `flight`'s
    /// ring, so the crash dump always holds the latest journal tail.
    #[must_use]
    pub fn with_flight(self, flight: FlightRecorder) -> Journal {
        match self.inner {
            None => Journal { inner: None },
            Some(inner) => {
                // The handle is fresh from `append_to` (seq 0) in every
                // caller; rebuilding inner keeps the type Arc-shared.
                Journal {
                    inner: Some(Arc::new(JournalInner {
                        path: inner.path.clone(),
                        file: Mutex::new(
                            inner.file.lock().expect("journal lock").try_clone().expect(
                                "journal file handles must be cloneable on every supported platform",
                            ),
                        ),
                        writer: inner.writer,
                        seq: AtomicU64::new(inner.seq.load(Ordering::Relaxed)),
                        flight: Some(flight),
                    })),
                }
            }
        }
    }

    /// Whether events actually land anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The journal file path, when enabled.
    pub fn path(&self) -> Option<&Path> {
        self.inner.as_deref().map(|i| i.path.as_path())
    }

    /// Appends one event durably (`write_all` + `sync_all`) and mirrors
    /// it into the attached flight ring. Returns the rendered line so
    /// callers can surface it (e.g. on stderr alongside an alarm).
    ///
    /// I/O failures are swallowed: the journal is an observer, and an
    /// un-journaled transition must never fail the transition itself.
    pub fn log(
        &self,
        severity: Severity,
        kind: &str,
        message: &str,
        corr: &Corr,
    ) -> Option<String> {
        let inner = self.inner.as_deref()?;
        // Sequence assignment happens under the file lock: cloned
        // handles share one `(writer, seq)` stream across threads, and
        // holding the lock across assign + append keeps the file order
        // identical to the seq order — the invariant readers verify.
        let guard = inner.file.lock();
        let event = JournalEvent {
            writer: inner.writer,
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            ts_ms: wall_ms(),
            severity,
            kind: kind.to_string(),
            message: message.to_string(),
            corr: corr.clone(),
        };
        let line = event.to_json();
        if let Some(flight) = &inner.flight {
            flight.record(&line);
        }
        if let Ok(mut file) = guard {
            let mut bytes = line.clone().into_bytes();
            bytes.push(b'\n');
            let _ = file.write_all(&bytes).and_then(|()| file.sync_all());
        }
        Some(line)
    }

    /// [`Journal::log`] at [`Severity::Info`].
    pub fn info(&self, kind: &str, message: &str, corr: &Corr) {
        self.log(Severity::Info, kind, message, corr);
    }

    /// [`Journal::log`] at [`Severity::Warn`].
    pub fn warn(&self, kind: &str, message: &str, corr: &Corr) {
        self.log(Severity::Warn, kind, message, corr);
    }

    /// [`Journal::log`] at [`Severity::Error`].
    pub fn error(&self, kind: &str, message: &str, corr: &Corr) {
        self.log(Severity::Error, kind, message, corr);
    }
}

/// Header line of a flight-recorder dump.
const FLIGHT_HEADER_KEY: &str = "accu_flight";
/// Dump format version.
const FLIGHT_VERSION: u64 = 1;

struct FlightInner {
    capacity: usize,
    events: Mutex<VecDeque<String>>,
    dropped: AtomicU64,
}

/// An always-on, fixed-capacity ring of recent journal lines — the
/// crash flight recorder. Mirrors the bounded-`VecDeque` + dropped
/// counter discipline of the trace module's ring tracks, but holds
/// rendered journal lines so a dump is directly greppable.
///
/// Cloning shares the ring. [`FlightRecorder::dump`] writes the ring
/// atomically (temp sibling + rename + parent-dir sync), so a dump
/// racing a crash is either absent or complete, never torn.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.inner.capacity)
            .field("dropped", &self.inner.dropped.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// A ring holding the most recent `capacity` lines (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(FlightInner {
                capacity,
                events: Mutex::new(VecDeque::with_capacity(capacity)),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Lines evicted so far to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Records one rendered line, evicting the oldest when full.
    pub fn record(&self, line: &str) {
        let mut ring = self.inner.events.lock().expect("flight ring lock");
        if ring.len() >= self.inner.capacity {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(line.to_string());
    }

    /// The current ring contents, oldest first.
    pub fn snapshot(&self) -> Vec<String> {
        self.inner
            .events
            .lock()
            .expect("flight ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Dumps the ring to `path` atomically: a header line naming the
    /// format, the eviction count, and the event count, followed by the
    /// ring lines oldest → newest (the last line is always the newest
    /// event — what the process was doing when it died).
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error; the destination is never torn.
    pub fn dump(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let events = self.snapshot();
        let mut body = format!(
            "{{\"{FLIGHT_HEADER_KEY}\":{FLIGHT_VERSION},\"dropped\":{},\"events\":{}}}\n",
            self.dropped(),
            events.len()
        );
        for line in &events {
            body.push_str(line);
            body.push('\n');
        }
        atomic_replace(path, body.as_bytes())
    }
}

/// A parsed flight-recorder dump.
#[derive(Debug)]
pub struct FlightDump {
    /// Lines evicted from the ring before the dump.
    pub dropped: u64,
    /// The dumped events, oldest first (parseable lines only).
    pub events: Vec<JournalEvent>,
}

/// Reads a dump written by [`FlightRecorder::dump`].
///
/// # Errors
///
/// I/O errors, or a message when the header is missing/malformed.
pub fn read_flight_dump(path: impl AsRef<Path>) -> Result<FlightDump, String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty flight dump")?;
    let doc = parse_json(header).map_err(|e| format!("bad flight header: {e}"))?;
    doc.get(FLIGHT_HEADER_KEY)
        .and_then(|v| v.as_u64())
        .ok_or("flight header missing accu_flight version")?;
    let dropped = doc.get("dropped").and_then(|v| v.as_u64()).unwrap_or(0);
    let events = lines.filter_map(JournalEvent::from_json).collect();
    Ok(FlightDump { dropped, events })
}

/// Durably replaces `path` with `bytes` (temp sibling + rename +
/// parent-dir sync) without depending on any other crate's helpers —
/// the journal must stay usable from panic hooks.
fn atomic_replace(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Rings registered for dump-on-panic, with their destinations.
static PANIC_DUMPS: OnceLock<Mutex<Vec<(FlightRecorder, PathBuf)>>> = OnceLock::new();
/// Ensures the chaining panic hook is installed at most once.
static PANIC_HOOK: OnceLock<()> = OnceLock::new();

/// Registers `flight` to be dumped to `path` if the process panics.
/// The hook chains to whatever hook was installed before it (so test
/// harness reporting survives), and dumping is best-effort — a failing
/// dump never masks the original panic.
pub fn install_panic_dump(flight: &FlightRecorder, path: impl Into<PathBuf>) {
    let dumps = PANIC_DUMPS.get_or_init(|| Mutex::new(Vec::new()));
    dumps
        .lock()
        .expect("panic-dump registry lock")
        .push((flight.clone(), path.into()));
    PANIC_HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(dumps) = PANIC_DUMPS.get() {
                if let Ok(dumps) = dumps.lock() {
                    for (flight, path) in dumps.iter() {
                        let _ = flight.dump(path);
                    }
                }
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "accu_journal_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn events_round_trip_through_json() {
        let event = JournalEvent {
            writer: 42,
            seq: 7,
            ts_ms: 123_456,
            severity: Severity::Warn,
            kind: "lease.takeover".to_string(),
            message: "adopted \"stale\" lease".to_string(),
            corr: Corr::job("fig2-night")
                .epoch(3)
                .attempt(2)
                .network(5)
                .chunk(1),
        };
        let parsed = JournalEvent::from_json(&event.to_json()).expect("parses");
        assert_eq!(parsed, event);
        // Correlation fields are top-level keys: grep-level access.
        let line = event.to_json();
        assert!(line.contains("\"job_id\":\"fig2-night\""), "{line}");
        assert!(line.contains("\"epoch\":3"), "{line}");
    }

    #[test]
    fn absent_corr_fields_are_omitted() {
        let event = JournalEvent {
            writer: 1,
            seq: 0,
            ts_ms: 1,
            severity: Severity::Info,
            kind: "daemon.start".to_string(),
            message: "up".to_string(),
            corr: Corr::none(),
        };
        let line = event.to_json();
        assert!(!line.contains("job_id"), "{line}");
        assert!(!line.contains("network"), "{line}");
        assert_eq!(JournalEvent::from_json(&line).unwrap().corr, Corr::none());
    }

    #[test]
    fn journal_appends_and_rereads_with_torn_tail_tolerance() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        {
            let journal = Journal::append_to(&path).unwrap();
            journal.info("job.submit", "created", &Corr::job("j1"));
            journal.warn("job.retry", "transient", &Corr::job("j1").epoch(1));
        }
        // A second writer (restart) appends more, then a torn tail.
        {
            let journal = Journal::append_to(&path).unwrap();
            journal.info("job.publish", "done", &Corr::job("j1").epoch(2));
        }
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"type\":\"journal\",\"writer\":9,\"seq")
            .unwrap();
        drop(file);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.events.len(), 3);
        assert_eq!(read.skipped_lines, 1, "torn tail dropped, not fatal");
        read.check_seq_monotonic().unwrap();
        assert_eq!(read.for_job("j1").count(), 3);
        // The two incarnations hold distinct writer streams.
        let writers: std::collections::BTreeSet<u64> =
            read.events.iter().map(|e| e.writer).collect();
        assert_eq!(writers.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_journal_is_a_no_op() {
        let journal = Journal::disabled();
        assert!(!journal.is_enabled());
        assert!(journal
            .log(Severity::Info, "k", "m", &Corr::none())
            .is_none());
        assert!(journal.path().is_none());
    }

    #[test]
    fn missing_journal_reads_as_empty() {
        let read = read_journal(temp_path("missing-nonexistent")).unwrap();
        assert!(read.events.is_empty());
        assert_eq!(read.skipped_lines, 0);
    }

    #[test]
    fn seq_monotonicity_violations_are_reported() {
        let mut read = JournalRead::default();
        let mut event = JournalEvent {
            writer: 5,
            seq: 3,
            ts_ms: 0,
            severity: Severity::Info,
            kind: "k".to_string(),
            message: String::new(),
            corr: Corr::none(),
        };
        read.events.push(event.clone());
        event.seq = 3; // duplicate
        read.events.push(event);
        let err = read.check_seq_monotonic().unwrap_err();
        assert!(err.contains("writer 5"), "{err}");
    }

    #[test]
    fn flight_ring_keeps_exactly_the_latest_k_events() {
        let flight = FlightRecorder::new(4);
        for i in 0..11 {
            flight.record(&format!("event-{i}"));
        }
        assert_eq!(flight.dropped(), 7);
        assert_eq!(
            flight.snapshot(),
            vec!["event-7", "event-8", "event-9", "event-10"]
        );
    }

    #[test]
    fn flight_dump_holds_the_latest_events_newest_last() {
        let path = temp_path("dump");
        let flight = FlightRecorder::new(3);
        let journal = Journal::append_to(temp_path("dump-journal"))
            .unwrap()
            .with_flight(flight.clone());
        for i in 0..7 {
            journal.info("tick", &format!("tick {i}"), &Corr::job("j").attempt(i));
        }
        flight.dump(&path).unwrap();
        let dump = read_flight_dump(&path).unwrap();
        assert_eq!(dump.dropped, 4);
        assert_eq!(dump.events.len(), 3);
        assert_eq!(dump.events.last().unwrap().message, "tick 6");
        assert_eq!(
            dump.events
                .iter()
                .map(|e| e.corr.attempt.unwrap())
                .collect::<Vec<_>>(),
            vec![4, 5, 6],
            "dump must hold the latest K events in order"
        );
        // A re-dump atomically replaces rather than appending.
        journal.info("tick", "tick 7", &Corr::none());
        flight.dump(&path).unwrap();
        let dump = read_flight_dump(&path).unwrap();
        assert_eq!(dump.events.last().unwrap().message, "tick 7");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(temp_path("dump-journal"));
    }

    #[test]
    fn concurrent_writers_to_one_file_stay_parseable_and_monotonic() {
        let path = temp_path("concurrent");
        let _ = std::fs::remove_file(&path);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let path = path.clone();
                scope.spawn(move || {
                    let journal = Journal::append_to(&path).unwrap();
                    for i in 0..8 {
                        journal.info("tick", &format!("w{t} i{i}"), &Corr::none());
                    }
                });
            }
        });
        let read = read_journal(&path).unwrap();
        assert_eq!(read.events.len(), 32);
        assert_eq!(read.skipped_lines, 0);
        read.check_seq_monotonic().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
