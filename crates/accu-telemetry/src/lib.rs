//! # accu-telemetry
//!
//! Structured runtime telemetry for the ACCU workspace: lock-free
//! counters, log-bucketed latency histograms, RAII span timers, and
//! machine-readable JSONL snapshots.
//!
//! The central type is the [`Recorder`] — a cheaply cloneable handle
//! that is threaded *explicitly* through the instrumented layers (no
//! global state). A recorder is either **enabled**, backed by a shared
//! metric registry, or **disabled**, in which case every handle it
//! yields is a no-op whose hot-path methods compile down to a branch on
//! `None`:
//!
//! ```
//! use accu_telemetry::Recorder;
//!
//! let rec = Recorder::enabled();
//! let accepted = rec.counter("sim.accepted");
//! let latency = rec.histogram("sim.select_ns");
//!
//! accepted.incr();
//! {
//!     let _span = latency.span(); // records elapsed nanos on drop
//! }
//! let snap = rec.snapshot("episode").expect("enabled recorder snapshots");
//! assert_eq!(snap.counter("sim.accepted"), Some(1));
//! assert!(snap.to_json().contains("\"sim.accepted\":1"));
//!
//! // Disabled recorders hand out no-op handles: zero allocation,
//! // zero atomics, no clock reads.
//! let off = Recorder::disabled();
//! off.counter("sim.accepted").incr();
//! assert!(off.snapshot("episode").is_none());
//! ```
//!
//! ## Layers instrumented in this workspace
//!
//! * the simulator (`accu_core::run_attack_recorded`): per-request
//!   select/resolve/notify timing, acceptance and cautious-hit counters;
//! * the ABM policy (`accu_core::policy::Abm`): heap pushes/pops,
//!   lazy-reevaluation stale-skip rate, rescore counts;
//! * the experiment runner (`accu_experiments::run_policy_recorded`):
//!   per-worker episode throughput, per-network wall clock, queue
//!   imbalance.
//!
//! Snapshots serialize to a single JSON object per line (JSONL) via
//! [`Snapshot::to_json`] and [`JsonlSink`], so bench and experiment
//! runs can be diffed at counter granularity across commits.
//!
//! Aggregate metrics answer "how much"; the [`trace`] module answers
//! "why": ring-buffered per-thread span/event collection ([`Tracer`] /
//! [`TraceTrack`]) with Chrome trace-event JSON export (Perfetto,
//! `chrome://tracing`) and a compact JSONL causal log replayable by the
//! `trace_explain` binary.
//!
//! The [`journal`] module carries both disciplines into the service
//! layer: a durable, correlation-ID-stamped event journal ([`Journal`])
//! plus an always-on crash [`FlightRecorder`] ring that dumps the most
//! recent events atomically on panic or deliberate abort.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod counter;
mod gauge;
mod histogram;
pub mod journal;
pub mod obs;
mod recorder;
mod snapshot;
pub mod trace;

pub use counter::{Counter, CounterHandle};
pub use gauge::{Gauge, GaugeHandle};
pub use histogram::{Histogram, HistogramHandle, SpanGuard};
pub use journal::{
    install_panic_dump, read_flight_dump, read_journal, Corr, FlightDump, FlightRecorder, Journal,
    JournalEvent, JournalRead, Severity,
};
pub use recorder::Recorder;
pub use snapshot::{
    json_escape, CounterSnapshot, FieldValue, GaugeSnapshot, HistogramSnapshot, JsonlSink, Snapshot,
};
pub use trace::{
    parse_json, validate_chrome_trace, ChromeTraceStats, Json, TraceSpan, TraceTrack, TraceValue,
    Tracer, DEFAULT_TRACK_CAPACITY,
};
