//! # accu-obs: live observability over the telemetry registry
//!
//! Everything in [`crate`] outside this module is *post-hoc*: metrics
//! accumulate silently and are snapshotted once at exit. This module
//! makes a run observable **while it runs**, with four dependency-free
//! pieces:
//!
//! * [`prometheus`] — a Prometheus-text-format (0.0.4) encoder over
//!   [`Snapshot`](crate::Snapshot), plus a validator for tests and CI;
//! * [`server`] — a background-thread TCP/HTTP listener serving live
//!   scrapes of a [`Recorder`](crate::Recorder) (the `--metrics-addr`
//!   flag, and the listener skeleton a future ACCU daemon reuses);
//! * [`progress`] — a streaming progress [`Observer`] the experiment
//!   runner feeds per episode and per network: console status line plus
//!   a deterministic JSONL stream that is byte-identical across worker
//!   counts (the `--progress` flag);
//! * [`watchdog`] — rule-based monitors over the live observer state:
//!   stall detection, a throughput floor seeded from
//!   `BENCH_trajectory.jsonl`, and fault-rate spike alarms, emitting
//!   structured `obs.alarm` events (the `--watchdog` flag).
//!
//! Cross-run analytics (`telemetry_diff`, `bench_report`) live in the
//! experiments crate, which owns the JSONL artifacts they compare; the
//! trajectory schema constants they share sit here so the bench writer
//! and every reader agree on one version.

pub mod progress;
pub mod prometheus;
pub mod server;
pub mod watchdog;

pub use progress::{NetworkStatus, Observer};
pub use prometheus::{encode_prometheus, validate_prometheus, PromStats};
pub use server::{BindError, MetricsServer};
pub use watchdog::{
    throughput_floor, throughput_floor_from_trajectory, Alarm, AlarmKind, FloorUnavailable,
    Watchdog, WatchdogConfig, TRAJECTORY_SCHEMA,
};
