//! Streaming run progress: a thread-safe [`Observer`] the experiment
//! runner feeds per episode and per network.
//!
//! Two outputs, with different determinism contracts:
//!
//! * **Console status line** (stderr): wall-clock rates, ETA — live,
//!   throttled, and explicitly *not* deterministic.
//! * **JSONL stream**: only scheduling-independent fields (episode
//!   counts, per-network fold statistics, quarantine reasons), emitted
//!   through a per-run reorder buffer keyed by network index — so the
//!   file is **byte-identical across worker counts** for a fixed seed.
//!   Watchdog alarms are the one exception (they are wall-clock events
//!   by nature); a run that raises no alarms keeps the guarantee.

use std::collections::BTreeMap;
use std::io::{self, IsTerminal as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::snapshot::{json_escape, json_number, GaugeSnapshot, JsonlSink};

/// How one network finished, as reported to [`Observer::network_done`].
///
/// Every numeric field must be derived from the deterministic
/// episode-order fold (never from wall clocks or scheduling), because
/// these values go verbatim into the byte-stable JSONL stream.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkStatus {
    /// Freshly computed to completion.
    Ok {
        /// Episodes folded into the network's accumulator.
        episodes: u64,
        /// Mean total benefit over those episodes.
        mean_benefit: f64,
        /// Mean faults observed per episode.
        faults_mean: f64,
        /// Whether the Lenient validation pass repaired the instance.
        repaired: bool,
    },
    /// Loaded from a checkpoint instead of recomputed.
    Resumed {
        /// Episodes covered by the checkpoint entry.
        episodes: u64,
        /// Mean total benefit recorded in the checkpoint.
        mean_benefit: f64,
    },
    /// Dropped by the quarantine.
    Quarantined {
        /// Failing stage (`"dataset"`, `"protocol"`, `"validate"`,
        /// `"episodes"`, `"supervisor"`).
        stage: String,
        /// The error or panic message.
        message: String,
    },
    /// Shed by a soft deadline before any episode ran (graceful
    /// degradation). Carries no statistics by construction.
    Shed,
}

/// JSONL sink plus the reorder buffer, under one lock so lines can
/// never interleave out of order.
struct StreamState {
    sink: Option<JsonlSink>,
    /// Next network index the stream is waiting for.
    next: usize,
    /// Lines for networks that finished ahead of `next`.
    pending: BTreeMap<usize, String>,
}

impl StreamState {
    fn write_line(&mut self, line: &str) {
        if let Some(sink) = &mut self.sink {
            if let Err(err) = sink.write_line(line) {
                eprintln!("accu-obs: progress sink write failed: {err}");
                self.sink = None;
            }
        }
    }

    /// Queues `line` for network `net` and drains every line that is
    /// now in order.
    fn push_network(&mut self, net: usize, line: String) {
        self.pending.insert(net, line);
        while let Some(line) = self.pending.remove(&self.next) {
            self.write_line(&line);
            self.next += 1;
        }
    }
}

/// Console rendering state (wall-clock side; throttled, stderr-only).
struct ConsoleState {
    last_render: Instant,
    needs_newline: bool,
}

struct ObserverInner {
    // Monotonic run counters (cumulative across cells in one process).
    episodes_done: AtomicU64,
    episodes_total: AtomicU64,
    networks_done: AtomicU64,
    networks_total: AtomicU64,
    faults_seen: AtomicU64,
    quarantined: AtomicU64,
    repaired: AtomicU64,
    resumed: AtomicU64,
    alarms: AtomicU64,
    /// Whether a run is between `begin_run` and `end_run`.
    active: AtomicBool,
    /// Nanoseconds since `started` of the most recent episode (or run
    /// begin), for the stall watchdog.
    last_progress_ns: AtomicU64,
    started: Instant,
    console: bool,
    stderr_is_tty: bool,
    cell: Mutex<String>,
    stream: Mutex<StreamState>,
    render: Mutex<ConsoleState>,
}

/// Point-in-time observer readings consumed by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsStats {
    /// A run is currently active (`begin_run` seen, `end_run` not).
    pub active: bool,
    /// Wall-clock time since the observer was created.
    pub elapsed: Duration,
    /// Wall-clock time since the last completed episode (or run begin).
    pub since_last_progress: Duration,
    /// Episodes completed so far (fresh + resumed).
    pub episodes_done: u64,
    /// Episodes announced via `begin_run` so far.
    pub episodes_total: u64,
    /// Faults observed across all completed episodes.
    pub faults_seen: u64,
}

impl ObsStats {
    /// Mean episodes per wall-clock second since the observer started.
    pub fn eps_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.episodes_done as f64 / secs
        }
    }

    /// Mean faults per completed episode (0 before the first episode).
    pub fn fault_rate(&self) -> f64 {
        if self.episodes_done == 0 {
            0.0
        } else {
            self.faults_seen as f64 / self.episodes_done as f64
        }
    }
}

/// A streaming progress observer threaded through the experiment
/// runner.
///
/// Like [`Recorder`](crate::Recorder), the observer is an `Option<Arc>`
/// handle: [`Observer::disabled`] (the [`Default`]) makes every method
/// a branch on `None`, so the runner can call the hooks unconditionally
/// at no cost when `--progress` is off. Clones share state.
#[derive(Clone, Default)]
pub struct Observer(Option<Arc<ObserverInner>>);

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.0.is_some())
            .finish()
    }
}

/// Minimum wall-clock gap between console status renders.
const RENDER_INTERVAL_TTY: Duration = Duration::from_millis(200);
/// Non-tty stderr (CI logs) gets milestone lines, much less often.
const RENDER_INTERVAL_PLAIN: Duration = Duration::from_secs(5);

impl Observer {
    /// An observer that ignores every hook.
    pub fn disabled() -> Self {
        Observer(None)
    }

    /// A console-only observer (status line on stderr, no JSONL).
    pub fn console() -> Self {
        Self::build(None, true)
    }

    /// An observer streaming deterministic JSONL to `path` in addition
    /// to the console status line.
    ///
    /// # Errors
    ///
    /// Returns any I/O error creating the sink file.
    pub fn to_path(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::build(Some(JsonlSink::create(path)?), true))
    }

    /// Like [`Observer::to_path`] but without the console line —
    /// deterministic JSONL only, for tests comparing streams.
    pub fn to_path_quiet(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::build(Some(JsonlSink::create(path)?), false))
    }

    /// A counters-only observer: no console line, no JSONL. This is
    /// what watchdogs and the metrics endpoint run against when the
    /// user did not ask for `--progress` — the hooks still track run
    /// state, but nothing is rendered or written.
    pub fn quiet() -> Self {
        Self::build(None, false)
    }

    /// An observer over a caller-built sink (e.g. a chaos-wrapped
    /// writer), with or without the console status line.
    pub fn with_sink(sink: JsonlSink, console: bool) -> Self {
        Self::build(Some(sink), console)
    }

    fn build(sink: Option<JsonlSink>, console: bool) -> Self {
        Observer(Some(Arc::new(ObserverInner {
            episodes_done: AtomicU64::new(0),
            episodes_total: AtomicU64::new(0),
            networks_done: AtomicU64::new(0),
            networks_total: AtomicU64::new(0),
            faults_seen: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            repaired: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            alarms: AtomicU64::new(0),
            active: AtomicBool::new(false),
            last_progress_ns: AtomicU64::new(0),
            started: Instant::now(),
            console,
            stderr_is_tty: io::stderr().is_terminal(),
            cell: Mutex::new(String::new()),
            stream: Mutex::new(StreamState {
                sink,
                next: 0,
                pending: BTreeMap::new(),
            }),
            render: Mutex::new(ConsoleState {
                last_render: Instant::now(),
                needs_newline: false,
            }),
        })))
    }

    /// Whether the hooks do anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Path of the JSONL stream, when one is attached.
    pub fn stream_path(&self) -> Option<PathBuf> {
        let inner = self.0.as_ref()?;
        let stream = inner.stream.lock().expect("obs stream poisoned");
        stream.sink.as_ref().map(|s| s.path().to_path_buf())
    }

    fn touch(inner: &ObserverInner) {
        let ns = u64::try_from(inner.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        inner.last_progress_ns.store(ns, Ordering::Relaxed);
    }

    /// Signals liveness without counting progress: the supervisor calls
    /// this when a worker claims work, so the stall watchdog measures
    /// from the last *sign of life* rather than the last completed
    /// episode (which can legitimately be long on large networks).
    pub fn heartbeat(&self) {
        if let Some(inner) = &self.0 {
            Self::touch(inner);
        }
    }

    /// Announces one experiment cell: `networks` sampled networks for a
    /// total of `episodes` episodes. Resets the reorder buffer; every
    /// network index of this cell must then be reported exactly once.
    pub fn begin_run(&self, cell: &str, networks: usize, episodes: u64) {
        let Some(inner) = &self.0 else { return };
        inner
            .networks_total
            .fetch_add(networks as u64, Ordering::Relaxed);
        inner.episodes_total.fetch_add(episodes, Ordering::Relaxed);
        inner.active.store(true, Ordering::Relaxed);
        Self::touch(inner);
        *inner.cell.lock().expect("obs cell poisoned") = cell.to_string();
        let mut stream = inner.stream.lock().expect("obs stream poisoned");
        debug_assert!(stream.pending.is_empty(), "previous run left pending lines");
        stream.next = 0;
        let line = format!(
            "{{\"type\":\"run_begin\",\"cell\":\"{}\",\"networks\":{networks},\"episodes\":{episodes}}}",
            json_escape(cell)
        );
        stream.write_line(&line);
    }

    /// Records one completed episode with the faults it observed.
    /// Called from worker threads; cheap (atomics plus an occasional
    /// throttled console render).
    pub fn episode_done(&self, faults: u64) {
        let Some(inner) = &self.0 else { return };
        inner.episodes_done.fetch_add(1, Ordering::Relaxed);
        inner.faults_seen.fetch_add(faults, Ordering::Relaxed);
        Self::touch(inner);
        if inner.console {
            self.maybe_render(inner);
        }
    }

    /// Reports the final status of network `net`. Statuses buffer until
    /// every lower-indexed network has reported, so the JSONL stream is
    /// ordered by network index regardless of scheduling.
    pub fn network_done(&self, net: usize, status: NetworkStatus) {
        let Some(inner) = &self.0 else { return };
        inner.networks_done.fetch_add(1, Ordering::Relaxed);
        let line = match &status {
            NetworkStatus::Ok {
                episodes,
                mean_benefit,
                faults_mean,
                repaired,
            } => {
                if *repaired {
                    inner.repaired.fetch_add(1, Ordering::Relaxed);
                }
                format!(
                    "{{\"type\":\"network\",\"net\":{net},\"status\":\"ok\",\"episodes\":{episodes},\
                     \"mean_benefit\":{},\"faults_mean\":{},\"repaired\":{repaired}}}",
                    json_number(*mean_benefit),
                    json_number(*faults_mean),
                )
            }
            NetworkStatus::Resumed {
                episodes,
                mean_benefit,
            } => {
                inner.resumed.fetch_add(1, Ordering::Relaxed);
                inner.episodes_done.fetch_add(*episodes, Ordering::Relaxed);
                format!(
                    "{{\"type\":\"network\",\"net\":{net},\"status\":\"resumed\",\
                     \"episodes\":{episodes},\"mean_benefit\":{}}}",
                    json_number(*mean_benefit),
                )
            }
            NetworkStatus::Quarantined { stage, message } => {
                inner.quarantined.fetch_add(1, Ordering::Relaxed);
                format!(
                    "{{\"type\":\"network\",\"net\":{net},\"status\":\"quarantined\",\
                     \"stage\":\"{}\",\"message\":\"{}\"}}",
                    json_escape(stage),
                    json_escape(message),
                )
            }
            NetworkStatus::Shed => {
                format!("{{\"type\":\"network\",\"net\":{net},\"status\":\"shed\"}}")
            }
        };
        Self::touch(inner);
        inner
            .stream
            .lock()
            .expect("obs stream poisoned")
            .push_network(net, line);
    }

    /// Closes the current cell's stream section and flushes the sink.
    pub fn end_run(&self, completed: usize, quarantined: usize) {
        let Some(inner) = &self.0 else { return };
        inner.active.store(false, Ordering::Relaxed);
        let cell = inner.cell.lock().expect("obs cell poisoned").clone();
        let episodes_done = inner.episodes_done.load(Ordering::Relaxed);
        let mut stream = inner.stream.lock().expect("obs stream poisoned");
        debug_assert!(
            stream.pending.is_empty(),
            "end_run with unordered networks still pending"
        );
        let line = format!(
            "{{\"type\":\"run_end\",\"cell\":\"{}\",\"completed\":{completed},\
             \"quarantined\":{quarantined},\"episodes_done\":{episodes_done}}}",
            json_escape(&cell)
        );
        stream.write_line(&line);
        if let Some(sink) = &mut stream.sink {
            if let Err(err) = sink.flush() {
                eprintln!("accu-obs: progress sink flush failed: {err}");
            }
        }
        drop(stream);
        if inner.console {
            self.finish_console_line(inner);
        }
    }

    /// Counts a watchdog alarm and appends its structured event to the
    /// JSONL stream (alarms are wall-clock events; see the module docs
    /// for the determinism caveat).
    pub fn record_alarm(&self, json_line: &str) {
        let Some(inner) = &self.0 else { return };
        inner.alarms.fetch_add(1, Ordering::Relaxed);
        inner
            .stream
            .lock()
            .expect("obs stream poisoned")
            .write_line(json_line);
    }

    /// Number of watchdog alarms recorded (drives `--watchdog=strict`).
    pub fn alarm_count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.alarms.load(Ordering::Relaxed))
    }

    /// Current readings for the watchdog.
    pub fn stats(&self) -> ObsStats {
        match &self.0 {
            None => ObsStats {
                active: false,
                elapsed: Duration::ZERO,
                since_last_progress: Duration::ZERO,
                episodes_done: 0,
                episodes_total: 0,
                faults_seen: 0,
            },
            Some(inner) => {
                let elapsed = inner.started.elapsed();
                let last = Duration::from_nanos(inner.last_progress_ns.load(Ordering::Relaxed));
                ObsStats {
                    active: inner.active.load(Ordering::Relaxed),
                    elapsed,
                    since_last_progress: elapsed.saturating_sub(last),
                    episodes_done: inner.episodes_done.load(Ordering::Relaxed),
                    episodes_total: inner.episodes_total.load(Ordering::Relaxed),
                    faults_seen: inner.faults_seen.load(Ordering::Relaxed),
                }
            }
        }
    }

    /// Live observer state as gauge samples, merged into the metrics
    /// server's scrape under `obs.*` names.
    pub fn gauge_snapshots(&self) -> Vec<GaugeSnapshot> {
        let Some(inner) = &self.0 else {
            return Vec::new();
        };
        let g = |name: &str, value: u64| GaugeSnapshot {
            name: name.to_string(),
            value: i64::try_from(value).unwrap_or(i64::MAX),
        };
        vec![
            g(
                "obs.episodes_done",
                inner.episodes_done.load(Ordering::Relaxed),
            ),
            g(
                "obs.episodes_total",
                inner.episodes_total.load(Ordering::Relaxed),
            ),
            g(
                "obs.networks_done",
                inner.networks_done.load(Ordering::Relaxed),
            ),
            g(
                "obs.networks_total",
                inner.networks_total.load(Ordering::Relaxed),
            ),
            g("obs.faults_seen", inner.faults_seen.load(Ordering::Relaxed)),
            g("obs.quarantined", inner.quarantined.load(Ordering::Relaxed)),
            g("obs.repaired", inner.repaired.load(Ordering::Relaxed)),
            g("obs.resumed", inner.resumed.load(Ordering::Relaxed)),
            g("obs.alarms", inner.alarms.load(Ordering::Relaxed)),
        ]
    }

    /// Renders the status line if the throttle window has passed.
    /// `try_lock` keeps workers from ever blocking on rendering.
    fn maybe_render(&self, inner: &ObserverInner) {
        let Ok(mut render) = inner.render.try_lock() else {
            return;
        };
        let interval = if inner.stderr_is_tty {
            RENDER_INTERVAL_TTY
        } else {
            RENDER_INTERVAL_PLAIN
        };
        if render.last_render.elapsed() < interval {
            return;
        }
        render.last_render = Instant::now();
        let stats = self.stats();
        let cell = inner.cell.lock().expect("obs cell poisoned").clone();
        let eps = stats.eps_per_sec();
        let eta = if eps > 0.0 && stats.episodes_total > stats.episodes_done {
            let secs = (stats.episodes_total - stats.episodes_done) as f64 / eps;
            format!("{}s", secs.round() as u64)
        } else {
            "-".to_string()
        };
        let pct = if stats.episodes_total > 0 {
            100.0 * stats.episodes_done as f64 / stats.episodes_total as f64
        } else {
            0.0
        };
        let line = format!(
            "[{cell}] {}/{} episodes ({pct:.1}%) | {eps:.1} eps/s | ETA {eta} | nets {}/{} | faults {}",
            stats.episodes_done,
            stats.episodes_total,
            inner.networks_done.load(Ordering::Relaxed),
            inner.networks_total.load(Ordering::Relaxed),
            stats.faults_seen,
        );
        if inner.stderr_is_tty {
            eprint!("\r\x1b[2K{line}");
            render.needs_newline = true;
        } else {
            eprintln!("{line}");
        }
    }

    /// Terminates a `\r`-style status line so later output starts on a
    /// fresh line.
    fn finish_console_line(&self, inner: &ObserverInner) {
        let mut render = inner.render.lock().expect("obs render poisoned");
        if render.needs_newline {
            eprintln!();
            render.needs_newline = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("accu-obs-progress-{}-{name}", std::process::id()))
    }

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Observer::disabled();
        obs.begin_run("cell", 3, 6);
        obs.episode_done(1);
        obs.network_done(
            0,
            NetworkStatus::Ok {
                episodes: 2,
                mean_benefit: 1.0,
                faults_mean: 0.0,
                repaired: false,
            },
        );
        obs.end_run(3, 0);
        assert!(!obs.is_enabled());
        assert_eq!(obs.stats().episodes_done, 0);
        assert_eq!(obs.alarm_count(), 0);
        assert!(obs.gauge_snapshots().is_empty());
        assert!(obs.stream_path().is_none());
    }

    #[test]
    fn out_of_order_networks_stream_in_index_order() {
        let path = tmp("reorder.jsonl");
        let obs = Observer::to_path_quiet(&path).unwrap();
        obs.begin_run("cell-a", 3, 6);
        // Workers finish 2, 0, 1 — the stream must still read 0, 1, 2.
        obs.network_done(
            2,
            NetworkStatus::Quarantined {
                stage: "protocol".into(),
                message: "boom \"quoted\"".into(),
            },
        );
        obs.network_done(
            0,
            NetworkStatus::Ok {
                episodes: 2,
                mean_benefit: 54.5,
                faults_mean: 0.5,
                repaired: true,
            },
        );
        obs.network_done(
            1,
            NetworkStatus::Resumed {
                episodes: 2,
                mean_benefit: 50.0,
            },
        );
        obs.end_run(2, 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"type\":\"run_begin\""));
        assert!(lines[0].contains("\"cell\":\"cell-a\""));
        assert!(lines[1].contains("\"net\":0"));
        assert!(lines[1].contains("\"repaired\":true"));
        assert!(lines[2].contains("\"net\":1"));
        assert!(lines[2].contains("\"status\":\"resumed\""));
        assert!(lines[3].contains("\"net\":2"));
        assert!(lines[3].contains("\"message\":\"boom \\\"quoted\\\"\""));
        assert!(lines[4].contains("\"type\":\"run_end\""));
        assert!(lines[4].contains("\"quarantined\":1"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counters_track_episodes_and_alarms() {
        let path = tmp("counters.jsonl");
        let obs = Observer::to_path_quiet(&path).unwrap();
        obs.begin_run("c", 1, 4);
        obs.episode_done(0);
        obs.episode_done(3);
        let stats = obs.stats();
        assert!(stats.active);
        assert_eq!(stats.episodes_done, 2);
        assert_eq!(stats.episodes_total, 4);
        assert_eq!(stats.faults_seen, 3);
        assert!(stats.fault_rate() > 1.4 && stats.fault_rate() < 1.6);
        obs.record_alarm("{\"type\":\"obs.alarm\",\"kind\":\"stall\"}");
        assert_eq!(obs.alarm_count(), 1);
        let gauges = obs.gauge_snapshots();
        assert!(gauges
            .iter()
            .any(|g| g.name == "obs.episodes_done" && g.value == 2));
        assert!(gauges
            .iter()
            .any(|g| g.name == "obs.alarms" && g.value == 1));
        obs.network_done(
            0,
            NetworkStatus::Ok {
                episodes: 4,
                mean_benefit: 1.0,
                faults_mean: 0.75,
                repaired: false,
            },
        );
        obs.end_run(1, 0);
        assert!(!obs.stats().active);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"type\":\"obs.alarm\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shed_networks_stream_without_statistics() {
        let path = tmp("shed.jsonl");
        let obs = Observer::to_path_quiet(&path).unwrap();
        obs.begin_run("c", 2, 4);
        obs.network_done(
            0,
            NetworkStatus::Ok {
                episodes: 2,
                mean_benefit: 1.0,
                faults_mean: 0.0,
                repaired: false,
            },
        );
        obs.network_done(1, NetworkStatus::Shed);
        obs.end_run(1, 0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("{\"type\":\"network\",\"net\":1,\"status\":\"shed\"}"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heartbeat_updates_liveness_without_progress() {
        let obs = Observer::quiet();
        obs.begin_run("c", 1, 100);
        std::thread::sleep(Duration::from_millis(20));
        assert!(obs.stats().since_last_progress >= Duration::from_millis(10));
        obs.heartbeat();
        assert!(obs.stats().since_last_progress < Duration::from_millis(10));
        assert_eq!(obs.stats().episodes_done, 0, "heartbeat is not progress");
        // Inert on a disabled observer.
        Observer::disabled().heartbeat();
    }

    #[test]
    fn clones_share_state() {
        let obs = Observer::console();
        let clone = obs.clone();
        obs.begin_run("c", 1, 2);
        clone.episode_done(0);
        assert_eq!(obs.stats().episodes_done, 1);
    }
}
