//! Prometheus text-format (0.0.4) exposition over [`Snapshot`]s.
//!
//! Dependency-free by design: the encoder emits the subset of the text
//! format that Prometheus, VictoriaMetrics, and `promtool check
//! metrics` all accept — `# TYPE` headers, cumulative `_bucket{le=…}`
//! series with `_sum`/`_count`, and label-value escaping — and
//! [`validate_prometheus`] re-parses that subset strictly enough to
//! catch a malformed scrape in tests and CI.

use crate::snapshot::{HistogramSnapshot, Snapshot};
use std::fmt::Write as _;

/// Validation summary returned by [`validate_prometheus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromStats {
    /// Number of `# TYPE` families declared.
    pub families: usize,
    /// Number of sample lines.
    pub samples: usize,
}

/// Maps a dotted registry name (`runner.worker.0.episodes`) to a valid
/// Prometheus metric name (`accu_runner_worker_0_episodes`): every
/// character outside `[a-zA-Z0-9_:]` becomes `_`, and the `accu_`
/// prefix both namespaces the metric and guards against a leading
/// digit.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 5);
    out.push_str("accu_");
    for ch in raw.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline must be escaped; everything else passes through.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Upper edge of log-bucket `i` (`2^(i+1) − 1`), matching
/// [`Histogram`](crate::Histogram)'s bucketing.
fn bucket_upper_edge(i: u8) -> u64 {
    if u32::from(i) + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

fn write_histogram(out: &mut String, h: &HistogramSnapshot, run_label: &str) {
    let name = metric_name(&h.name);
    let run_only = run_label.trim_end_matches(',');
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for &(idx, count) in &h.buckets {
        cumulative += count;
        let _ = writeln!(
            out,
            "{name}_bucket{{{run_label}le=\"{}\"}} {cumulative}",
            bucket_upper_edge(idx)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{{run_label}le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum{{{run_only}}} {}", h.sum);
    let _ = writeln!(out, "{name}_count{{{run_only}}} {}", h.count);
    // Derived quantiles cannot share the histogram family name (the
    // format reserves its suffixes), so they form a sibling gauge
    // family with the conventional `quantile` label.
    let _ = writeln!(out, "# TYPE {name}_quantile gauge");
    for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
        let _ = writeln!(out, "{name}_quantile{{{run_label}quantile=\"{q}\"}} {v}");
    }
}

/// Encodes a snapshot as a Prometheus text-format scrape body.
///
/// The snapshot label becomes a `run="…"` label on every sample, so
/// scrapes from different experiment cells stay distinguishable in one
/// time-series database. The output always ends with a newline, as the
/// format requires.
pub fn encode_prometheus(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(1024);
    let run_label = if snap.label.is_empty() {
        String::new()
    } else {
        format!("run=\"{}\",", escape_label_value(&snap.label))
    };
    // Bare-label positions (counters/gauges) drop the trailing comma.
    let run_only = run_label.trim_end_matches(',');
    for c in &snap.counters {
        let name = metric_name(&c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name}{{{run_only}}} {}", c.value);
    }
    for g in &snap.gauges {
        let name = metric_name(&g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name}{{{run_only}}} {}", g.value);
    }
    for h in &snap.histograms {
        write_histogram(&mut out, h, &run_label);
    }
    out
}

/// Is `name` a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`)?
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Is `name` a valid label name (`[a-zA-Z_][a-zA-Z0-9_]*`)?
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses one `{name="value",…}` label block; returns the rest of the
/// line after the closing brace.
fn parse_labels(s: &str, line_no: usize) -> Result<&str, String> {
    let mut rest = &s[1..]; // past '{'
    loop {
        rest = rest.trim_start_matches(',');
        if let Some(tail) = rest.strip_prefix('}') {
            return Ok(tail);
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let label = &rest[..eq];
        if !valid_label_name(label) {
            return Err(format!("line {line_no}: invalid label name {label:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {line_no}: label value must be quoted"))?;
        // Scan the quoted value honoring \\ \" \n escapes.
        let mut chars = rest.char_indices();
        let end = loop {
            match chars.next() {
                None => return Err(format!("line {line_no}: unterminated label value")),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '\\' | '"' | 'n')) => {}
                    _ => return Err(format!("line {line_no}: bad escape in label value")),
                },
                Some((i, '"')) => break i,
                Some(_) => {}
            }
        };
        rest = &rest[end + 1..];
    }
}

/// Strictly validates a Prometheus text-format scrape body.
///
/// Checks every `# TYPE` header, metric/label-name validity, label
/// quoting and escapes, sample-value parseability, that every sample
/// belongs to a declared family (allowing the histogram suffixes
/// `_bucket`/`_sum`/`_count` only for `histogram` families), and the
/// trailing newline the format requires.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_prometheus(text: &str) -> Result<PromStats, String> {
    if text.is_empty() {
        return Err("empty exposition".to_string());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".to_string());
    }
    let mut families: std::collections::BTreeMap<String, String> = Default::default();
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(k), None) => (n, k),
                _ => return Err(format!("line {line_no}: malformed TYPE line")),
            };
            if !valid_metric_name(name) {
                return Err(format!("line {line_no}: invalid metric name {name:?}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {line_no}: unknown metric type {kind:?}"));
            }
            if families
                .insert(name.to_string(), kind.to_string())
                .is_some()
            {
                return Err(format!("line {line_no}: duplicate TYPE for {name:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free-form comment
        }
        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {line_no}: sample without value"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {line_no}: invalid metric name {name:?}"));
        }
        let family_ok = families.contains_key(name)
            || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                name.strip_suffix(suffix)
                    .is_some_and(|base| families.get(base).map(String::as_str) == Some("histogram"))
            });
        if !family_ok {
            return Err(format!(
                "line {line_no}: sample {name:?} has no TYPE header"
            ));
        }
        let rest = &line[name_end..];
        let rest = if rest.starts_with('{') {
            parse_labels(rest, line_no)?
        } else {
            rest
        };
        let mut tokens = rest.split_whitespace();
        let value = tokens
            .next()
            .ok_or_else(|| format!("line {line_no}: missing sample value"))?;
        let value_ok = value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN");
        if !value_ok {
            return Err(format!("line {line_no}: unparseable value {value:?}"));
        }
        if let Some(ts) = tokens.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {line_no}: bad timestamp {ts:?}"));
            }
        }
        if tokens.next().is_some() {
            return Err(format!("line {line_no}: trailing garbage"));
        }
        samples += 1;
    }
    Ok(PromStats {
        families: families.len(),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn metric_names_are_sanitized_and_valid() {
        assert_eq!(metric_name("sim.requests"), "accu_sim_requests");
        assert_eq!(
            metric_name("runner.worker.0.episodes"),
            "accu_runner_worker_0_episodes"
        );
        assert_eq!(metric_name("weird-name!x"), "accu_weird_name_x");
        for raw in ["sim.requests", "0leading", "a b", "α"] {
            assert!(valid_metric_name(&metric_name(raw)), "{raw}");
        }
        assert!(!valid_metric_name("0bad"));
        assert!(!valid_metric_name("has space"));
        assert!(!valid_metric_name(""));
    }

    #[test]
    fn label_values_escape_correctly() {
        assert_eq!(escape_label_value(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
        assert_eq!(escape_label_value("plain"), "plain");
        // Escaped values round-trip through the validator.
        let text = "# TYPE m counter\nm{run=\"a\\\"b\\\\c\\nd\"} 1\n";
        let stats = validate_prometheus(text).unwrap();
        assert_eq!(stats.samples, 1);
    }

    #[test]
    fn golden_scrape_of_populated_recorder() {
        let rec = Recorder::enabled();
        rec.counter("sim.requests").add(900);
        rec.counter("runner.episodes").add(30);
        rec.gauge("runner.networks_inflight").set(4);
        let h = rec.histogram("sim.select_ns");
        h.record(10); // bucket 3 (edge 15)
        h.record(10);
        h.record(300); // bucket 8 (edge 511)
        let snap = rec.snapshot("fig2/\"twitter\"").unwrap();
        let text = encode_prometheus(&snap);
        let expected = "\
# TYPE accu_runner_episodes counter
accu_runner_episodes{run=\"fig2/\\\"twitter\\\"\"} 30
# TYPE accu_sim_requests counter
accu_sim_requests{run=\"fig2/\\\"twitter\\\"\"} 900
# TYPE accu_runner_networks_inflight gauge
accu_runner_networks_inflight{run=\"fig2/\\\"twitter\\\"\"} 4
# TYPE accu_sim_select_ns histogram
accu_sim_select_ns_bucket{run=\"fig2/\\\"twitter\\\"\",le=\"15\"} 2
accu_sim_select_ns_bucket{run=\"fig2/\\\"twitter\\\"\",le=\"511\"} 3
accu_sim_select_ns_bucket{run=\"fig2/\\\"twitter\\\"\",le=\"+Inf\"} 3
accu_sim_select_ns_sum{run=\"fig2/\\\"twitter\\\"\"} 320
accu_sim_select_ns_count{run=\"fig2/\\\"twitter\\\"\"} 3
# TYPE accu_sim_select_ns_quantile gauge
accu_sim_select_ns_quantile{run=\"fig2/\\\"twitter\\\"\",quantile=\"0.5\"} 15
accu_sim_select_ns_quantile{run=\"fig2/\\\"twitter\\\"\",quantile=\"0.9\"} 300
accu_sim_select_ns_quantile{run=\"fig2/\\\"twitter\\\"\",quantile=\"0.99\"} 300
";
        assert_eq!(text, expected);
        let stats = validate_prometheus(&text).unwrap();
        assert_eq!(
            stats,
            PromStats {
                families: 5,
                samples: 11
            }
        );
    }

    #[test]
    fn empty_label_snapshot_still_validates() {
        let rec = Recorder::enabled();
        rec.counter("n").incr();
        rec.histogram("h").record(1);
        let snap = rec.snapshot("").unwrap();
        let text = encode_prometheus(&snap);
        assert!(text.contains("accu_n{} 1\n"));
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        // Sample with no TYPE header.
        assert!(validate_prometheus("orphan 1\n").is_err());
        // Missing trailing newline.
        assert!(validate_prometheus("# TYPE m counter\nm 1").is_err());
        // Bad metric name in TYPE.
        assert!(validate_prometheus("# TYPE 0bad counter\n").is_err());
        // Unknown type keyword.
        assert!(validate_prometheus("# TYPE m widget\n").is_err());
        // Unquoted label value.
        assert!(validate_prometheus("# TYPE m counter\nm{l=3} 1\n").is_err());
        // Unterminated label value.
        assert!(validate_prometheus("# TYPE m counter\nm{l=\"x} 1\n").is_err());
        // Unparseable sample value.
        assert!(validate_prometheus("# TYPE m counter\nm nope\n").is_err());
        // Histogram suffixes only attach to histogram families.
        assert!(validate_prometheus("# TYPE m counter\nm_bucket{le=\"1\"} 1\n").is_err());
        let ok = "# TYPE m histogram\nm_bucket{le=\"+Inf\"} 1\nm_sum 1\nm_count 1\n";
        assert_eq!(validate_prometheus(ok).unwrap().samples, 3);
    }

    #[test]
    fn top_bucket_edge_is_u64_max() {
        assert_eq!(bucket_upper_edge(63), u64::MAX);
        assert_eq!(bucket_upper_edge(3), 15);
        assert_eq!(bucket_upper_edge(0), 1);
    }
}
