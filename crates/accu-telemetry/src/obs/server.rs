//! A background-thread TCP/HTTP listener serving live Prometheus
//! scrapes.
//!
//! Deliberately minimal — `std::net` only, one request per connection,
//! any `GET` answered with the full exposition — but structured the way
//! a real daemon listener is (bound address reporting, read timeouts,
//! clean shutdown via a self-connect), because the ROADMAP's
//! ACCU-as-a-service item will grow this skeleton rather than replace
//! it.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::obs::progress::Observer;
use crate::obs::prometheus::encode_prometheus;
use crate::{Recorder, Snapshot};

/// How long a scraper may dawdle sending its request or draining the
/// response before the connection is dropped.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A listener failed to bind, with the requested address attached.
///
/// A bare `io::Error` from a daemon start-up reads as "Address already
/// in use (os error 98)" with no hint *which* address collided — fatal
/// in CI logs where several listeners (metrics, service) start
/// together. This error names the address; use
/// [`is_addr_in_use`](BindError::is_addr_in_use) to branch on the
/// collision case (e.g. retry on an ephemeral port).
#[derive(Debug)]
pub struct BindError {
    addr: String,
    source: io::Error,
}

impl BindError {
    /// Wraps `source` with the address the bind was attempted on.
    pub fn new(addr: impl Into<String>, source: io::Error) -> Self {
        BindError {
            addr: addr.into(),
            source,
        }
    }

    /// The address the failed bind was attempted on, as requested
    /// (port 0 un-resolved).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the failure was an address-in-use collision — the case
    /// a caller can fix by picking another port (or `:0`).
    pub fn is_addr_in_use(&self) -> bool {
        self.source.kind() == io::ErrorKind::AddrInUse
    }
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_addr_in_use() {
            write!(
                f,
                "cannot bind {}: address already in use (pick another port, or 0 for ephemeral)",
                self.addr
            )
        } else {
            write!(f, "cannot bind {}: {}", self.addr, self.source)
        }
    }
}

impl std::error::Error for BindError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A live metrics endpoint: binds a local TCP listener and serves
/// Prometheus text-format scrapes of a [`Recorder`] (plus the live
/// gauges of an [`Observer`]) from a background thread until dropped.
///
/// ```no_run
/// use accu_telemetry::{obs::MetricsServer, obs::Observer, Recorder};
/// let rec = Recorder::enabled();
/// let server =
///     MetricsServer::bind("127.0.0.1:0", rec.clone(), "fig2", Observer::disabled()).unwrap();
/// println!("scrape http://{}/metrics", server.addr());
/// // … run the experiment; drop the server to stop serving.
/// ```
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, port 0 for ephemeral) and
    /// starts serving scrapes of `recorder` labelled `label`. The
    /// observer's live gauges are merged into every scrape; pass
    /// [`Observer::disabled`] when progress tracking is off.
    ///
    /// `--metrics-addr 127.0.0.1:0` style ephemeral binds are
    /// supported: [`addr`](MetricsServer::addr) reports the resolved
    /// port, which callers should log for scrapers (and CI) to find.
    ///
    /// # Errors
    ///
    /// Returns a [`BindError`] naming the requested address (address in
    /// use, permission, parse).
    pub fn bind(
        addr: &str,
        recorder: Recorder,
        label: impl Into<String>,
        observer: Observer,
    ) -> Result<Self, BindError> {
        let requested = addr;
        let listener = TcpListener::bind(addr).map_err(|e| BindError::new(requested, e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| BindError::new(requested, e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let label = label.into();
        let handle = std::thread::Builder::new()
            .name("accu-obs-metrics".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Serve inline: scrapes are tiny and sequential
                    // scrapers (Prometheus) open one connection at a
                    // time.
                    let body = render_scrape(&recorder, &label, &observer);
                    let _ = serve_one(stream, &body);
                }
            })
            .map_err(|e| BindError::new(requested, e))?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop so the thread sees the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Builds the scrape body: the recorder's snapshot (empty when
/// disabled) with the observer's live gauges appended.
fn render_scrape(recorder: &Recorder, label: &str, observer: &Observer) -> String {
    let mut snap = recorder.snapshot(label).unwrap_or_else(|| Snapshot {
        label: label.to_string(),
        counters: Vec::new(),
        gauges: Vec::new(),
        histograms: Vec::new(),
    });
    snap.gauges.extend(observer.gauge_snapshots());
    encode_prometheus(&snap)
}

/// Reads (and discards) the request head, then writes one HTTP/1.1
/// response carrying `body` and closes.
fn serve_one(mut stream: TcpStream, body: &str) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    // Drain the request head; stop at the blank line or a small cap —
    // every request gets the same response, so parsing would be
    // ceremony.
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => break, // timeout or reset: answer anyway
        }
    }
    let response = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::prometheus::validate_prometheus;

    /// One full client scrape against `addr`; returns (status line,
    /// body).
    fn scrape(addr: SocketAddr) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let status = head.lines().next().unwrap().to_string();
        (status, body.to_string())
    }

    #[test]
    fn serves_valid_scrapes_until_dropped() {
        let rec = Recorder::enabled();
        rec.counter("sim.requests").add(42);
        rec.histogram("sim.select_ns").record(100);
        let server =
            MetricsServer::bind("127.0.0.1:0", rec.clone(), "test", Observer::disabled()).unwrap();
        let addr = server.addr();
        let (status, body) = scrape(addr);
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("accu_sim_requests{run=\"test\"} 42"));
        validate_prometheus(&body).unwrap();
        // A scrape mid-run sees updated values.
        rec.counter("sim.requests").add(8);
        let (_, body) = scrape(addr);
        assert!(body.contains("accu_sim_requests{run=\"test\"} 50"));
        drop(server);
        // The port stops answering once the server is gone (either
        // refused outright or accepted by nothing and reset).
        let dead = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
                let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
                let mut out = String::new();
                s.read_to_string(&mut out).unwrap_or(0) == 0
            })
            .unwrap_or(true);
        assert!(dead, "server must stop serving after drop");
    }

    #[test]
    fn merges_observer_gauges_into_the_scrape() {
        let rec = Recorder::enabled();
        rec.counter("n").incr();
        let obs = Observer::console();
        obs.begin_run("cell", 2, 4);
        obs.episode_done(1);
        let server = MetricsServer::bind("127.0.0.1:0", rec, "merge", obs.clone()).unwrap();
        let (_, body) = scrape(server.addr());
        assert!(body.contains("accu_obs_episodes_done{run=\"merge\"} 1"));
        assert!(body.contains("accu_obs_episodes_total{run=\"merge\"} 4"));
        validate_prometheus(&body).unwrap();
    }

    #[test]
    fn bind_collision_yields_typed_error_naming_the_address() {
        let first = MetricsServer::bind(
            "127.0.0.1:0",
            Recorder::disabled(),
            "first",
            Observer::disabled(),
        )
        .unwrap();
        let taken = first.addr().to_string();
        let err = MetricsServer::bind(&taken, Recorder::disabled(), "second", Observer::disabled())
            .expect_err("rebinding a live port must fail");
        assert!(err.is_addr_in_use(), "kind: {err}");
        assert_eq!(err.addr(), taken);
        let message = err.to_string();
        assert!(
            message.contains(&taken) && message.contains("in use"),
            "message must name the address: {message}"
        );
        // The error chains to the OS-level cause.
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn ephemeral_bind_resolves_port_zero() {
        let server = MetricsServer::bind(
            "127.0.0.1:0",
            Recorder::disabled(),
            "ephemeral",
            Observer::disabled(),
        )
        .unwrap();
        assert_ne!(server.addr().port(), 0, "port 0 resolves at bind time");
    }

    #[test]
    fn disabled_recorder_serves_observer_only_scrape() {
        let server = MetricsServer::bind(
            "127.0.0.1:0",
            Recorder::disabled(),
            "empty",
            Observer::console(),
        )
        .unwrap();
        let (status, body) = scrape(server.addr());
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("accu_obs_episodes_done"));
        validate_prometheus(&body).unwrap();
    }
}
