//! Rule-based watchdogs over the live [`Observer`] state.
//!
//! Three monitors, each firing at most once per run (latched):
//!
//! * **stall** — no episode completed within the stall window;
//! * **throughput_floor** — sustained eps/s below a floor, typically
//!   seeded from the last healthy `BENCH_trajectory.jsonl` entry via
//!   [`throughput_floor_from_trajectory`];
//! * **fault_rate** — mean faults per episode above a ceiling.
//!
//! Alarms are emitted as structured one-line JSON events
//! (`{"type":"obs.alarm",…}`) on stderr and into the progress stream,
//! and counted on the observer so `--watchdog=strict` can turn them
//! into a nonzero exit after the run.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::obs::progress::{ObsStats, Observer};
use crate::snapshot::{json_escape, json_number};
use crate::{parse_json, Json};

/// Schema version stamped onto `BENCH_trajectory.jsonl` entries.
///
/// Version history: entries without a `schema` field are version 1 (the
/// original `date`/`bench`/`fixture`/`budget`/`eps_per_sec`/`status`
/// shape); version 2 added the `schema` and `git` fields themselves.
/// Readers ([`throughput_floor_from_trajectory`], `bench_report`) skip
/// entries from schemas *newer* than they understand, so an old binary
/// never misreads a future format.
pub const TRAJECTORY_SCHEMA: u64 = 2;

/// Which watchdog rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlarmKind {
    /// No episode completed within the stall window.
    Stall,
    /// Sustained throughput below the configured floor.
    ThroughputFloor,
    /// Mean faults per episode above the configured ceiling.
    FaultRate,
}

impl AlarmKind {
    /// Stable identifier used in the JSON event.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlarmKind::Stall => "stall",
            AlarmKind::ThroughputFloor => "throughput_floor",
            AlarmKind::FaultRate => "fault_rate",
        }
    }
}

/// One fired watchdog alarm.
#[derive(Debug, Clone, PartialEq)]
pub struct Alarm {
    /// Which rule fired.
    pub kind: AlarmKind,
    /// Human-readable description.
    pub message: String,
    /// The observed value that tripped the rule.
    pub value: f64,
    /// The configured threshold it crossed.
    pub threshold: f64,
}

impl Alarm {
    /// The structured `obs.alarm` event as one JSON line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"type\":\"obs.alarm\",\"kind\":\"{}\",\"message\":\"{}\",\
             \"value\":{},\"threshold\":{}}}",
            self.kind.as_str(),
            json_escape(&self.message),
            json_number(self.value),
            json_number(self.threshold),
        )
    }
}

/// Watchdog rule thresholds. Parsed from the `--watchdog` flag value by
/// [`WatchdogConfig::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogConfig {
    /// Fire [`AlarmKind::Stall`] when no episode completes for this
    /// long.
    pub stall_window: Duration,
    /// Fire [`AlarmKind::ThroughputFloor`] when eps/s drops below this
    /// (disabled when `None`).
    pub min_eps: Option<f64>,
    /// Fire [`AlarmKind::FaultRate`] when faults per episode exceed
    /// this (disabled when `None`).
    pub fault_rate_max: Option<f64>,
    /// Grace period after start before the stall and throughput rules
    /// arm (network generation produces no episodes).
    pub warmup: Duration,
    /// Exit nonzero after the run if any alarm fired.
    pub strict: bool,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_window: Duration::from_secs(30),
            min_eps: None,
            fault_rate_max: None,
            warmup: Duration::from_secs(5),
            strict: false,
        }
    }
}

impl WatchdogConfig {
    /// Parses the `--watchdog` flag value: a comma-separated list of
    /// `strict`, `stall=SECS`, `floor=EPS`, `faults=RATE`,
    /// `warmup=SECS`. The empty string yields the defaults.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unrecognized or unparseable token.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut config = WatchdogConfig::default();
        for token in spec.split(',').filter(|t| !t.is_empty()) {
            match token.split_once('=') {
                None if token == "strict" => config.strict = true,
                Some(("stall", v)) => {
                    config.stall_window = parse_secs(v, "stall")?;
                }
                Some(("warmup", v)) => {
                    config.warmup = parse_secs(v, "warmup")?;
                }
                Some(("floor", v)) => {
                    config.min_eps = Some(parse_rate(v, "floor")?);
                }
                Some(("faults", v)) => {
                    config.fault_rate_max = Some(parse_rate(v, "faults")?);
                }
                _ => return Err(format!("unknown watchdog option {token:?}")),
            }
        }
        Ok(config)
    }
}

fn parse_secs(v: &str, opt: &str) -> Result<Duration, String> {
    v.parse::<f64>()
        .ok()
        .filter(|s| s.is_finite() && *s >= 0.0)
        .map(Duration::from_secs_f64)
        .ok_or_else(|| format!("watchdog {opt} wants seconds, got {v:?}"))
}

fn parse_rate(v: &str, opt: &str) -> Result<f64, String> {
    v.parse::<f64>()
        .ok()
        .filter(|r| r.is_finite() && *r >= 0.0)
        .ok_or_else(|| format!("watchdog {opt} wants a non-negative number, got {v:?}"))
}

/// Per-kind latches so each rule fires at most once.
#[derive(Debug, Default)]
struct Latches {
    stall: bool,
    floor: bool,
    faults: bool,
}

/// Evaluates the rules against one reading; pure so tests can drive it
/// with synthetic stats.
fn evaluate(config: &WatchdogConfig, stats: &ObsStats, latches: &mut Latches) -> Vec<Alarm> {
    let mut fired = Vec::new();
    let armed = stats.active && stats.elapsed >= config.warmup;
    if armed && !latches.stall && stats.since_last_progress >= config.stall_window {
        latches.stall = true;
        let stalled = stats.since_last_progress.as_secs_f64();
        fired.push(Alarm {
            kind: AlarmKind::Stall,
            message: format!(
                "no episode completed for {stalled:.1}s (window {:.1}s)",
                config.stall_window.as_secs_f64()
            ),
            value: stalled,
            threshold: config.stall_window.as_secs_f64(),
        });
    }
    if let Some(floor) = config.min_eps {
        let eps = stats.eps_per_sec();
        if armed && !latches.floor && eps < floor {
            latches.floor = true;
            fired.push(Alarm {
                kind: AlarmKind::ThroughputFloor,
                message: format!("throughput {eps:.2} eps/s below floor {floor:.2}"),
                value: eps,
                threshold: floor,
            });
        }
    }
    if let Some(ceiling) = config.fault_rate_max {
        let rate = stats.fault_rate();
        if !latches.faults && stats.episodes_done > 0 && rate > ceiling {
            latches.faults = true;
            fired.push(Alarm {
                kind: AlarmKind::FaultRate,
                message: format!("fault rate {rate:.3} per episode above {ceiling:.3}"),
                value: rate,
                threshold: ceiling,
            });
        }
    }
    fired
}

/// Reports a fired alarm: structured JSON on stderr plus the observer
/// (alarm count + progress stream).
fn report(alarm: &Alarm, observer: &Observer) {
    let line = alarm.to_json();
    eprintln!("{line}");
    observer.record_alarm(&line);
}

/// A background monitor thread evaluating [`WatchdogConfig`] rules
/// against an [`Observer`] every few hundred milliseconds until
/// dropped.
#[derive(Debug)]
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Rule evaluation cadence.
const TICK: Duration = Duration::from_millis(250);

impl Watchdog {
    /// Starts the monitor thread. A disabled observer still works — the
    /// stall rule simply never sees progress, so pair the watchdog with
    /// an enabled observer in practice.
    pub fn spawn(config: WatchdogConfig, observer: Observer) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("accu-obs-watchdog".to_string())
            .spawn(move || {
                let mut latches = Latches::default();
                while !thread_stop.load(Ordering::Relaxed) {
                    let stats = observer.stats();
                    for alarm in evaluate(&config, &stats, &mut latches) {
                        report(&alarm, &observer);
                    }
                    std::thread::park_timeout(TICK);
                }
            })
            .expect("failed to spawn watchdog thread");
        Watchdog {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

/// Why [`throughput_floor`] could not derive a floor. Callers must
/// *disable* the floor rule (warning once) rather than arm it with a
/// guessed threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloorUnavailable {
    /// The trajectory file does not exist or cannot be read.
    Missing,
    /// The file was read but holds no healthy (`status == "ok"`)
    /// schema-v2 entry this reader can compare against.
    NoHealthyEntries,
}

impl std::fmt::Display for FloorUnavailable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FloorUnavailable::Missing => write!(f, "trajectory file missing or unreadable"),
            FloorUnavailable::NoHealthyEntries => {
                write!(f, "no healthy v2 trajectory entries")
            }
        }
    }
}

/// Derives a throughput floor (eps/s) from a `BENCH_trajectory.jsonl`
/// file: one tenth of the most recent healthy (`status == "ok"`)
/// schema-v2 entry. Legacy v1 entries (no `schema` field) are ignored:
/// they predate the fixture/git provenance stamps, so a floor derived
/// from one is not comparable to the current benchmark. Schemas newer
/// than this reader are skipped as incomparable.
///
/// # Errors
///
/// Returns [`FloorUnavailable`] naming why no floor exists, so callers
/// can warn once and disable the rule instead of arming a meaningless
/// threshold.
pub fn throughput_floor(path: &Path) -> Result<f64, FloorUnavailable> {
    let text = std::fs::read_to_string(path).map_err(|_| FloorUnavailable::Missing)?;
    let mut last_ok: Option<f64> = None;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(obj) = parse_json(line) else {
            continue;
        };
        let schema = obj.get("schema").and_then(Json::as_u64).unwrap_or(1);
        if !(2..=TRAJECTORY_SCHEMA).contains(&schema) {
            continue;
        }
        if obj.get("status").and_then(Json::as_str) != Some("ok") {
            continue;
        }
        if let Some(eps) = obj.get("eps_per_sec").and_then(Json::as_f64) {
            if eps.is_finite() && eps > 0.0 {
                last_ok = Some(eps);
            }
        }
    }
    last_ok
        .map(|eps| eps * 0.1)
        .ok_or(FloorUnavailable::NoHealthyEntries)
}

/// [`throughput_floor`] with the reason discarded, for callers that
/// only care whether a floor exists.
pub fn throughput_floor_from_trajectory(path: &Path) -> Option<f64> {
    throughput_floor(path).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(active: bool, elapsed: f64, since_last: f64, done: u64, faults: u64) -> ObsStats {
        ObsStats {
            active,
            elapsed: Duration::from_secs_f64(elapsed),
            since_last_progress: Duration::from_secs_f64(since_last),
            episodes_done: done,
            episodes_total: 100,
            faults_seen: faults,
        }
    }

    #[test]
    fn parse_accepts_all_options_and_rejects_junk() {
        let d = WatchdogConfig::parse("").unwrap();
        assert_eq!(d, WatchdogConfig::default());
        let c = WatchdogConfig::parse("strict,stall=10,floor=5.5,faults=0.25,warmup=1").unwrap();
        assert!(c.strict);
        assert_eq!(c.stall_window, Duration::from_secs(10));
        assert_eq!(c.min_eps, Some(5.5));
        assert_eq!(c.fault_rate_max, Some(0.25));
        assert_eq!(c.warmup, Duration::from_secs(1));
        assert!(WatchdogConfig::parse("bogus").is_err());
        assert!(WatchdogConfig::parse("stall=abc").is_err());
        assert!(WatchdogConfig::parse("floor=-1").is_err());
    }

    #[test]
    fn stall_rule_fires_once_after_warmup() {
        let config = WatchdogConfig {
            stall_window: Duration::from_secs(30),
            warmup: Duration::from_secs(5),
            ..WatchdogConfig::default()
        };
        let mut latches = Latches::default();
        // Inside warmup: silent even though nothing has happened.
        assert!(evaluate(&config, &stats(true, 3.0, 3.0, 0, 0), &mut latches).is_empty());
        // Armed and stalled: fires.
        let fired = evaluate(&config, &stats(true, 40.0, 35.0, 2, 0), &mut latches);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlarmKind::Stall);
        assert!(fired[0].to_json().contains("\"kind\":\"stall\""));
        // Latched: never again.
        assert!(evaluate(&config, &stats(true, 80.0, 75.0, 2, 0), &mut latches).is_empty());
        // Inactive runs never stall.
        let mut fresh = Latches::default();
        assert!(evaluate(&config, &stats(false, 40.0, 35.0, 2, 0), &mut fresh).is_empty());
    }

    #[test]
    fn throughput_floor_and_fault_rules() {
        let config = WatchdogConfig {
            min_eps: Some(10.0),
            fault_rate_max: Some(0.5),
            warmup: Duration::from_secs(5),
            ..WatchdogConfig::default()
        };
        let mut latches = Latches::default();
        // 20 episodes in 10 s = 2 eps/s < 10; 15 faults / 20 eps = 0.75
        // > 0.5 → both rules fire in one tick.
        let fired = evaluate(&config, &stats(true, 10.0, 0.1, 20, 15), &mut latches);
        let kinds: Vec<AlarmKind> = fired.iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![AlarmKind::ThroughputFloor, AlarmKind::FaultRate]
        );
        assert!((fired[0].value - 2.0).abs() < 1e-9);
        assert_eq!(fired[0].threshold, 10.0);
        // Healthy stats fire nothing.
        let mut fresh = Latches::default();
        assert!(evaluate(&config, &stats(true, 10.0, 0.1, 200, 10), &mut fresh).is_empty());
    }

    #[test]
    fn spawned_watchdog_reports_through_the_observer() {
        let path =
            std::env::temp_dir().join(format!("accu-obs-watchdog-{}.jsonl", std::process::id()));
        let obs = Observer::to_path_quiet(&path).unwrap();
        obs.begin_run("cell", 1, 10);
        obs.episode_done(5); // fault rate 5.0
        let config = WatchdogConfig {
            fault_rate_max: Some(1.0),
            ..WatchdogConfig::default()
        };
        let dog = Watchdog::spawn(config, obs.clone());
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while obs.alarm_count() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        drop(dog);
        assert_eq!(obs.alarm_count(), 1);
        obs.end_run(1, 0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"kind\":\"fault_rate\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trajectory_floor_uses_last_healthy_comparable_entry() {
        let dir = std::env::temp_dir().join(format!("accu-obs-traj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trajectory.jsonl");
        std::fs::write(
            &path,
            concat!(
                // Legacy v1 entry (no schema field): not comparable,
                // skipped even though healthy.
                "{\"date\":\"2026-08-01\",\"bench\":\"engine\",\"eps_per_sec\":40.0,\"status\":\"ok\"}\n",
                // Regression entry: skipped by status.
                "{\"schema\":2,\"eps_per_sec\":90.0,\"status\":\"regression\"}\n",
                // Healthy v2 entry: wins as the most recent.
                "{\"schema\":2,\"git\":\"abc\",\"eps_per_sec\":60.0,\"status\":\"ok\"}\n",
                // Future schema: incomparable, skipped.
                "{\"schema\":99,\"eps_per_sec\":500.0,\"status\":\"ok\"}\n",
                "not json at all\n",
            ),
        )
        .unwrap();
        let floor = throughput_floor(&path).unwrap();
        assert!((floor - 6.0).abs() < 1e-9, "floor = {floor}");
        // Missing file → a typed reason, never a guess.
        assert_eq!(
            throughput_floor(&dir.join("absent.jsonl")),
            Err(FloorUnavailable::Missing)
        );
        assert!(throughput_floor_from_trajectory(&dir.join("absent.jsonl")).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trajectory_floor_requires_healthy_v2_entries() {
        let dir = std::env::temp_dir().join(format!("accu-obs-traj-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trajectory.jsonl");
        // Only legacy v1 and unhealthy v2 entries: the rule must
        // disable rather than arm a floor from incomparable data.
        std::fs::write(
            &path,
            concat!(
                "{\"date\":\"2026-08-01\",\"bench\":\"engine\",\"eps_per_sec\":40.0,\"status\":\"ok\"}\n",
                "{\"schema\":2,\"eps_per_sec\":90.0,\"status\":\"regression\"}\n",
            ),
        )
        .unwrap();
        assert_eq!(
            throughput_floor(&path),
            Err(FloorUnavailable::NoHealthyEntries)
        );
        assert_eq!(throughput_floor_from_trajectory(&path), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
