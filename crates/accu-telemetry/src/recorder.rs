//! The [`Recorder`] handle and its metric registry.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::counter::{Counter, CounterHandle};
use crate::gauge::{Gauge, GaugeHandle};
use crate::histogram::{Histogram, HistogramHandle};
use crate::snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot};

/// The shared registry behind an enabled recorder.
#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<Cow<'static, str>, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<Cow<'static, str>, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<Cow<'static, str>, Arc<Histogram>>>,
}

/// An explicit telemetry handle, threaded through the instrumented
/// layers (never a global).
///
/// Cloning is cheap (an `Arc` bump) and clones share one registry, so a
/// recorder can be handed to every worker thread of the experiment
/// runner and snapshotted once at the end.
///
/// A **disabled** recorder ([`Recorder::disabled`], also the
/// [`Default`]) hands out no-op [`CounterHandle`]s and
/// [`HistogramHandle`]s: registering costs nothing, incrementing is a
/// branch on `None`, and spans never read the clock. Instrumented code
/// therefore takes `&Recorder` unconditionally and pays near-zero cost
/// unless telemetry was requested.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Registry>>,
}

impl Recorder {
    /// A recorder that collects metrics into a fresh registry.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// A recorder whose handles are all no-ops.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A recorder that is enabled iff `on` (CLI-flag convenience).
    pub fn new(on: bool) -> Self {
        if on {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    /// Whether metrics are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or retrieves) the counter `name` and returns a handle
    /// to it. Fetch handles once, outside hot loops: the lookup takes a
    /// registry lock, the returned handle's `add` does not.
    pub fn counter(&self, name: impl Into<Cow<'static, str>>) -> CounterHandle {
        match &self.inner {
            None => CounterHandle::noop(),
            Some(reg) => {
                let mut map = reg.counters.lock().expect("telemetry registry poisoned");
                CounterHandle(Some(Arc::clone(map.entry(name.into()).or_default())))
            }
        }
    }

    /// Registers (or retrieves) the gauge `name` and returns a handle
    /// to it.
    pub fn gauge(&self, name: impl Into<Cow<'static, str>>) -> GaugeHandle {
        match &self.inner {
            None => GaugeHandle::noop(),
            Some(reg) => {
                let mut map = reg.gauges.lock().expect("telemetry registry poisoned");
                GaugeHandle(Some(Arc::clone(map.entry(name.into()).or_default())))
            }
        }
    }

    /// Registers (or retrieves) the histogram `name` and returns a
    /// handle to it.
    pub fn histogram(&self, name: impl Into<Cow<'static, str>>) -> HistogramHandle {
        match &self.inner {
            None => HistogramHandle::noop(),
            Some(reg) => {
                let mut map = reg.histograms.lock().expect("telemetry registry poisoned");
                HistogramHandle(Some(Arc::clone(map.entry(name.into()).or_default())))
            }
        }
    }

    /// Captures the current state of every registered metric, sorted by
    /// name. Returns `None` for a disabled recorder.
    pub fn snapshot(&self, label: &str) -> Option<Snapshot> {
        let reg = self.inner.as_ref()?;
        let counters = reg
            .counters
            .lock()
            .expect("telemetry registry poisoned")
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.to_string(),
                value: c.value(),
            })
            .collect();
        let gauges = reg
            .gauges
            .lock()
            .expect("telemetry registry poisoned")
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.to_string(),
                value: g.value(),
            })
            .collect();
        let histograms = reg
            .histograms
            .lock()
            .expect("telemetry registry poisoned")
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.to_string(),
                count: h.count(),
                sum: h.sum(),
                mean: h.mean(),
                min: h.min(),
                p50: h.quantile(0.5),
                p90: h.quantile(0.9),
                p99: h.quantile(0.99),
                max: h.max(),
                buckets: h
                    .bucket_counts()
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(i, &n)| (i as u8, n))
                    .collect(),
            })
            .collect();
        Some(Snapshot {
            label: label.to_string(),
            counters,
            gauges,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.counter("x").add(5);
        rec.gauge("g").set(5);
        rec.histogram("y").record(5);
        assert!(rec.snapshot("s").is_none());
        assert!(!Recorder::default().is_enabled());
        assert!(!Recorder::new(false).is_enabled());
        assert!(Recorder::new(true).is_enabled());
    }

    #[test]
    fn same_name_shares_the_metric() {
        let rec = Recorder::enabled();
        rec.counter("hits").incr();
        rec.counter("hits").add(2);
        rec.histogram("lat").record(7);
        rec.histogram("lat").record(9);
        let snap = rec.snapshot("end").unwrap();
        assert_eq!(snap.counter("hits"), Some(3));
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 16);
    }

    #[test]
    fn gauges_snapshot_and_lookup() {
        let rec = Recorder::enabled();
        rec.gauge("inflight").set(4);
        rec.gauge("inflight").sub(1);
        let snap = rec.snapshot("s").unwrap();
        assert_eq!(snap.gauge("inflight"), Some(3));
        assert_eq!(snap.gauge("missing"), None);
        assert!(snap.to_json().contains("\"gauges\":{\"inflight\":3}"));
    }

    #[test]
    fn clones_share_one_registry() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        std::thread::scope(|s| {
            let c = clone.clone();
            s.spawn(move || {
                let h = c.counter("episodes");
                for _ in 0..100 {
                    h.incr();
                }
            });
        });
        rec.counter("episodes").incr();
        assert_eq!(rec.snapshot("x").unwrap().counter("episodes"), Some(101));
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let rec = Recorder::enabled();
        rec.counter("b").incr();
        rec.counter("a").incr();
        rec.counter("c").incr();
        let names: Vec<String> = rec
            .snapshot("s")
            .unwrap()
            .counters
            .into_iter()
            .map(|c| c.name)
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn owned_and_static_names_collide_correctly() {
        let rec = Recorder::enabled();
        rec.counter("worker.0.episodes").incr();
        rec.counter(String::from("worker.0.episodes")).incr();
        assert_eq!(
            rec.snapshot("s").unwrap().counter("worker.0.episodes"),
            Some(2)
        );
    }
}
