//! Point-in-time metric snapshots and the JSONL sink.
//!
//! The workspace has no serde; snapshots serialize through a small
//! hand-rolled JSON writer. The schema is one object per line:
//!
//! ```json
//! {"type":"snapshot","label":"fig2/ABM","counters":{"sim.requests":900},
//!  "gauges":{"runner.inflight":4},
//!  "histograms":{"sim.select_ns":{"count":900,"sum":12345,"mean":13.7,
//!  "min":4,"p50":15,"p90":31,"p99":63,"max":214,"buckets":[[2,450],[4,449],[7,1]]}}}
//! {"type":"event","name":"episode_done","fields":{"worker":0,"benefit":54.0}}
//! ```

use std::fmt::{self, Write as _};
use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// One gauge's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Gauge value.
    pub value: i64,
}

/// One histogram's summary at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: u64,
    /// Exact mean sample.
    pub mean: f64,
    /// Exact minimum sample.
    pub min: u64,
    /// Estimated median (bucket upper bound).
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Non-empty power-of-two buckets as `(bucket index, count)` pairs,
    /// sorted by index: bucket `i` holds samples whose highest set bit
    /// is `i` (upper edge `2^(i+1) − 1`). This is the raw shape the
    /// Prometheus exposition and `telemetry_diff`'s histogram-shift
    /// analysis are computed from.
    pub buckets: Vec<(u8, u64)>,
}

/// A labelled point-in-time capture of a recorder's registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Free-form label (experiment id, bench name, …).
    pub label: String,
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serializes to a single JSON object (one JSONL line, no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"type\":\"snapshot\",\"label\":\"");
        out.push_str(&json_escape(&self.label));
        out.push_str("\",\"counters\":{");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(&c.name), c.value);
        }
        out.push('}');
        // Gauges joined the schema after the first release; omit the key
        // entirely when empty so gauge-free snapshots keep the old shape.
        if !self.gauges.is_empty() {
            out.push_str(",\"gauges\":{");
            for (i, g) in self.gauges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", json_escape(&g.name), g.value);
            }
            out.push('}');
        }
        out.push_str(",\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"p50\":{},\
                 \"p90\":{},\"p99\":{},\"max\":{}",
                json_escape(&h.name),
                h.count,
                h.sum,
                json_number(h.mean),
                h.min,
                h.p50,
                h.p90,
                h.p99,
                h.max
            );
            if !h.buckets.is_empty() {
                out.push_str(",\"buckets\":[");
                for (i, (idx, n)) in h.buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{idx},{n}]");
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

/// A value in a JSONL event's field map.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A float (serialized as `null` if non-finite).
    F64(f64),
    /// A string (escaped).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Escapes a string for inclusion inside JSON quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (`null` for NaN/∞, which JSON
/// cannot represent).
pub(crate) fn json_number(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, keeping the token unambiguous.
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// An append-only JSONL file sink for snapshots and events.
///
/// The sink flushes on drop — including during panic unwind — so lines
/// buffered by a worker that dies mid-run (e.g. a quarantined network)
/// still reach disk. A flush failure at drop time cannot be returned,
/// so it is reported on stderr instead of being silently swallowed;
/// callers that need the error should call [`JsonlSink::flush`]
/// explicitly first.
pub struct JsonlSink {
    writer: BufWriter<Box<dyn Write + Send>>,
    path: PathBuf,
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Err(err) = self.writer.flush() {
            eprintln!(
                "accu-telemetry: failed to flush {} at drop: {err}",
                self.path.display()
            );
        }
    }
}

impl JsonlSink {
    /// Creates (truncating) the sink file, creating parent directories
    /// as needed.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error — callers must surface it, not
    /// swallow it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = fs::File::create(&path)?;
        Ok(JsonlSink {
            writer: BufWriter::new(Box::new(file)),
            path,
        })
    }

    /// Builds a sink over an arbitrary writer (e.g. a chaos-injecting
    /// wrapper around a file). `path` is reporting-only: it names the
    /// sink in flush-failure messages and [`JsonlSink::path`].
    pub fn from_writer(writer: Box<dyn Write + Send>, path: impl AsRef<Path>) -> Self {
        JsonlSink {
            writer: BufWriter::new(writer),
            path: path.as_ref().to_path_buf(),
        }
    }

    /// The sink's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one snapshot line.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_snapshot(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        self.writer.write_all(snapshot.to_json().as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Appends one pre-serialized JSON line (the newline is added
    /// here). Used by emitters that build their lines by hand, e.g. the
    /// progress observer's reorder buffer.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Appends one event line with the given fields.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_event(&mut self, name: &str, fields: &[(&str, FieldValue)]) -> io::Result<()> {
        let mut line = String::with_capacity(64);
        line.push_str("{\"type\":\"event\",\"name\":\"");
        line.push_str(&json_escape(name));
        line.push_str("\",\"fields\":{");
        for (i, (key, value)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "\"{}\":", json_escape(key));
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(line, "{v}");
                }
                FieldValue::F64(v) => line.push_str(&json_number(*v)),
                FieldValue::Str(v) => {
                    let _ = write!(line, "\"{}\"", json_escape(v));
                }
            }
        }
        line.push_str("}}\n");
        self.writer.write_all(line.as_bytes())
    }

    /// Flushes buffered lines to disk.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn snapshot_json_shape() {
        let rec = Recorder::enabled();
        rec.counter("a.hits").add(3);
        rec.histogram("a.lat").record(10);
        let json = rec.snapshot("t/1").unwrap().to_json();
        assert!(json.starts_with("{\"type\":\"snapshot\",\"label\":\"t/1\""));
        assert!(json.contains("\"a.hits\":3"));
        assert!(json.contains("\"a.lat\":{\"count\":1,\"sum\":10,\"mean\":10.0"));
        // 10 has highest set bit 3, so it lands in bucket 3.
        assert!(json.contains("\"buckets\":[[3,1]]"));
        // No gauges were registered, so the key is omitted entirely.
        assert!(!json.contains("\"gauges\""));
        assert!(json.ends_with("}}"));
        // Exactly one line.
        assert!(!json.contains('\n'));
    }

    #[test]
    fn escaping_and_float_edge_cases() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(2.0), "2.0");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn sink_writes_snapshots_and_events() {
        let dir = std::env::temp_dir().join("accu-telemetry-test");
        let path = dir.join("out.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        let rec = Recorder::enabled();
        rec.counter("n").incr();
        sink.write_snapshot(&rec.snapshot("s").unwrap()).unwrap();
        sink.write_event(
            "done",
            &[
                ("worker", 3usize.into()),
                ("benefit", 54.5.into()),
                ("policy", "ABM".into()),
            ],
        )
        .unwrap();
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"n\":1"));
        assert!(lines[1].contains("\"worker\":3"));
        assert!(lines[1].contains("\"benefit\":54.5"));
        assert!(lines[1].contains("\"policy\":\"ABM\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_survives_panic_unwind_without_explicit_flush() {
        // A quarantined worker panics with buffered lines still in the
        // sink; the drop-flush during unwind must land them on disk.
        let dir = std::env::temp_dir().join("accu-telemetry-panic-test");
        let path = dir.join("unwound.jsonl");
        let path_clone = path.clone();
        let joined = std::thread::spawn(move || {
            let mut sink = JsonlSink::create(&path_clone).unwrap();
            sink.write_event("before_panic", &[("worker", 0usize.into())])
                .unwrap();
            panic!("simulated quarantined worker");
        })
        .join();
        assert!(joined.is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"before_panic\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let rec = Recorder::enabled();
        rec.counter("x").add(7);
        rec.histogram("y").record(1);
        let snap = rec.snapshot("s").unwrap();
        assert_eq!(snap.counter("x"), Some(7));
        assert_eq!(snap.counter("missing"), None);
        assert!(snap.histogram("y").is_some());
        assert!(snap.histogram("missing").is_none());
    }
}
