//! Compact JSONL causal-log export.
//!
//! One event per line, grouped by track in per-track sequence order:
//!
//! ```json
//! {"type":"trace","track":"worker-0","seq":41,"ts_ns":10250,
//!  "kind":"instant","name":"request","args":{"target":12,"accepted":true}}
//! ```
//!
//! Floats are serialized with shortest round-trip formatting, so a
//! replayer that parses them back recovers bit-identical values — the
//! property `trace_explain` relies on to verify each episode's
//! `total_benefit` exactly.

use std::fmt::Write as _;

use super::chrome::render_value;
use super::{EventKind, TrackSnapshot};
use crate::snapshot::json_escape;

pub(super) fn export(tracks: &[TrackSnapshot]) -> String {
    let total: usize = tracks.iter().map(|t| t.events.len()).sum();
    let mut out = String::with_capacity(total * 96);
    for track in tracks {
        if track.dropped > 0 {
            let _ = writeln!(
                out,
                "{{\"type\":\"trace_drops\",\"track\":\"{}\",\"dropped\":{}}}",
                json_escape(&track.name),
                track.dropped
            );
        }
        for event in &track.events {
            let kind = match event.kind {
                EventKind::Begin => "begin",
                EventKind::End => "end",
                EventKind::Instant => "instant",
            };
            let _ = write!(
                out,
                "{{\"type\":\"trace\",\"track\":\"{}\",\"seq\":{},\"ts_ns\":{},\
                 \"kind\":\"{kind}\",\"name\":\"{}\",\"args\":{{",
                json_escape(&track.name),
                event.seq,
                event.ts_ns,
                json_escape(&event.name),
            );
            for (i, (key, value)) in event.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":", json_escape(key));
                render_value(&mut out, value);
            }
            out.push_str("}}\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::{parse_json, Tracer};

    #[test]
    fn every_line_is_valid_json_and_floats_round_trip() {
        let tracer = Tracer::enabled();
        let track = tracer.track("w");
        let exact = 0.1f64 + 0.2f64; // not representable as a short decimal
        track.instant("request", &[("gain", exact.into()), ("ok", true.into())]);
        let log = tracer.export_causal().unwrap();
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 1);
        let parsed = parse_json(lines[0]).unwrap();
        let args = parsed.get("args").unwrap();
        let gain = args.get("gain").unwrap().as_f64().unwrap();
        assert_eq!(gain.to_bits(), exact.to_bits());
        assert_eq!(args.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("request"));
    }

    #[test]
    fn drop_marker_line_reports_ring_overwrites() {
        let tracer = Tracer::with_config(1, 2);
        let track = tracer.track("w");
        for _ in 0..5 {
            track.instant("e", &[]);
        }
        let log = tracer.export_causal().unwrap();
        let first = log.lines().next().unwrap();
        let parsed = parse_json(first).unwrap();
        assert_eq!(parsed.get("type").unwrap().as_str(), Some("trace_drops"));
        assert_eq!(parsed.get("dropped").unwrap().as_u64(), Some(3));
    }
}
