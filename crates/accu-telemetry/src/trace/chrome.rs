//! Chrome trace-event JSON export.
//!
//! Emits the `{"traceEvents":[...]}` object format understood by
//! Perfetto and `chrome://tracing`: one `pid` for the process, one
//! `tid` per track, a `thread_name` metadata record per track, `B`/`E`
//! phase pairs for spans and `i` (thread-scoped) for instants, with
//! timestamps in fractional microseconds.

use std::fmt::Write as _;

use super::{EventKind, TraceEvent, TraceValue, TrackSnapshot};
use crate::snapshot::{json_escape, json_number};

/// The single process id used for all tracks.
const PID: u64 = 1;

pub(super) fn export(tracks: &[TrackSnapshot]) -> String {
    let total: usize = tracks.iter().map(|t| t.events.len()).sum();
    let mut out = String::with_capacity(128 + total * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for track in tracks {
        let mut emit = |line: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(line);
        };
        emit(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0.0,\"pid\":{PID},\
             \"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            track.id,
            json_escape(&track.name)
        ));
        for event in balanced(&track.events) {
            emit(&render_event(&event, track.id));
        }
    }
    out.push_str("]}");
    out
}

/// Rebalances one track's begin/end sequence.
///
/// The ring buffer overwrites oldest-first, so the only unbalanced
/// shapes are end events whose begin was overwritten (dropped here) and
/// spans still open at export (closed here at the last timestamp).
/// Defensively, an end whose name does not match the innermost open
/// begin is also dropped, so the output nests properly no matter what
/// was collected.
fn balanced(events: &[TraceEvent]) -> Vec<TraceEvent> {
    let mut out: Vec<TraceEvent> = Vec::with_capacity(events.len());
    let mut open: Vec<usize> = Vec::new(); // indices into `out`
    for event in events {
        match event.kind {
            EventKind::Begin => {
                open.push(out.len());
                out.push(event.clone());
            }
            EventKind::End => {
                let matches = open.last().is_some_and(|&i| out[i].name == event.name);
                if matches {
                    open.pop();
                    out.push(event.clone());
                }
            }
            EventKind::Instant => out.push(event.clone()),
        }
    }
    let last_ts = events.last().map_or(0, |e| e.ts_ns);
    let last_seq = events.last().map_or(0, |e| e.seq);
    while let Some(i) = open.pop() {
        let name = out[i].name.clone();
        out.push(TraceEvent {
            seq: last_seq,
            ts_ns: last_ts,
            kind: EventKind::End,
            name,
            args: Vec::new(),
        });
    }
    out
}

fn render_event(event: &TraceEvent, tid: u64) -> String {
    let ph = match event.kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Instant => "i",
    };
    let ts_us = event.ts_ns as f64 / 1000.0;
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":{PID},\"tid\":{tid}",
        json_escape(&event.name),
        json_number(ts_us),
    );
    if event.kind == EventKind::Instant {
        line.push_str(",\"s\":\"t\"");
    }
    if !event.args.is_empty() {
        line.push_str(",\"args\":{");
        for (i, (key, value)) in event.args.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "\"{}\":", json_escape(key));
            render_value(&mut line, value);
        }
        line.push('}');
    }
    line.push('}');
    line
}

pub(super) fn render_value(out: &mut String, value: &TraceValue) {
    match value {
        TraceValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        TraceValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        TraceValue::F64(v) => out.push_str(&json_number(*v)),
        TraceValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        TraceValue::Str(v) => {
            let _ = write!(out, "\"{}\"", json_escape(v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{validate_chrome_trace, Tracer};

    #[test]
    fn export_is_valid_and_balanced() {
        let tracer = Tracer::enabled();
        let track = tracer.track("worker-0");
        {
            let _outer = track.span_with("chunk", &[("net", 0u64.into())]);
            let _inner = track.span("episodes");
            track.instant(
                "request",
                &[
                    ("target", 12u64.into()),
                    ("accepted", true.into()),
                    ("gain", 4.5f64.into()),
                    ("policy", "ABM".into()),
                ],
            );
        }
        let chrome = tracer.export_chrome().unwrap();
        let stats = validate_chrome_trace(&chrome).unwrap();
        assert_eq!(stats.tracks, 1);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
    }

    #[test]
    fn open_spans_are_closed_at_export() {
        let tracer = Tracer::enabled();
        let track = tracer.track("w");
        let _open = track.span("still-open");
        track.instant("x", &[]);
        let chrome = tracer.export_chrome().unwrap();
        let stats = validate_chrome_trace(&chrome).unwrap();
        assert_eq!(stats.spans, 1);
    }

    #[test]
    fn orphaned_ends_from_ring_overwrite_are_dropped() {
        // Capacity 3 with 2 leading begins: pushing enough events
        // overwrites the begins, leaving orphaned ends in the ring.
        let tracer = Tracer::with_config(1, 3);
        let track = tracer.track("w");
        let a = track.span("a");
        let b = track.span("b");
        track.instant("x", &[]);
        b.finish();
        a.finish();
        assert!(tracer.total_dropped() > 0);
        let chrome = tracer.export_chrome().unwrap();
        validate_chrome_trace(&chrome).unwrap();
    }
}
