//! A minimal dependency-free JSON reader and the Chrome-trace
//! structural validator.
//!
//! The workspace has no serde; CI and `trace_explain` validate exported
//! traces through this ~200-line recursive-descent parser instead. It
//! accepts exactly the JSON this crate emits (objects, arrays, strings
//! with escapes, numbers, booleans, null) and keeps object keys in
//! document order.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; `u64` accessors check integrality.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is a whole number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && *x >= i64::MIN as f64 && *x <= i64::MAX as f64 => {
                Some(*x as i64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the first
/// syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number token");
    token
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {token:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ascii \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole unescaped run in one go; validating
                // per character would make parsing quadratic in the
                // document size.
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        let value = parse_value(bytes, pos, depth + 1)?;
        items.push(value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChromeTraceStats {
    /// Distinct `(pid, tid)` tracks seen.
    pub tracks: usize,
    /// Matched begin/end span pairs.
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Metadata events.
    pub metadata: usize,
}

/// Structurally validates a Chrome trace-event JSON document: well-formed
/// JSON, a `traceEvents` array whose entries carry `name`/`ph`/`ts`/
/// `pid`/`tid`, and — the span-balance invariant — properly nested,
/// name-matched `B`/`E` pairs per `(pid, tid)` track with nothing left
/// open at the end.
///
/// # Errors
///
/// Returns a message pinpointing the first structural violation.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| "missing traceEvents field".to_string())?
        .as_arr()
        .ok_or_else(|| "traceEvents is not an array".to_string())?;
    let mut stats = ChromeTraceStats::default();
    // Per-track stack of open span names, keyed by (pid, tid).
    let mut open: Vec<((u64, u64), Vec<String>)> = Vec::new();
    let mut seen_tracks: Vec<(u64, u64)> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        event
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let pid = event
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = event
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let key = (pid, tid);
        if !seen_tracks.contains(&key) {
            seen_tracks.push(key);
        }
        let stack = match open.iter_mut().find(|(k, _)| *k == key) {
            Some((_, stack)) => stack,
            None => {
                open.push((key, Vec::new()));
                &mut open.last_mut().expect("just pushed").1
            }
        };
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => match stack.pop() {
                Some(top) if top == name => stats.spans += 1,
                Some(top) => {
                    return Err(format!(
                        "event {i}: end {name:?} does not match open span {top:?} \
                         on track {key:?}"
                    ));
                }
                None => {
                    return Err(format!(
                        "event {i}: end {name:?} with no open span on track {key:?}"
                    ));
                }
            },
            "i" | "I" => stats.instants += 1,
            "M" => stats.metadata += 1,
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    for (key, stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!("span {name:?} left open on track {key:?}"));
        }
    }
    stats.tracks = seen_tracks.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_strings_and_nesting() {
        let doc = parse_json(r#"{"a":[1,-2.5,1e3],"b":{"c":"x\nyA"},"d":null,"e":true}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\nyA")
        );
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("nul").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse_json(&deep).is_err());
    }

    #[test]
    fn integer_accessors_check_integrality() {
        let doc = parse_json("[3, 3.5, -2]").unwrap();
        let items = doc.as_arr().unwrap();
        assert_eq!(items[0].as_u64(), Some(3));
        assert_eq!(items[1].as_u64(), None);
        assert_eq!(items[2].as_u64(), None);
        assert_eq!(items[2].as_i64(), Some(-2));
    }

    #[test]
    fn validator_accepts_balanced_and_rejects_unbalanced() {
        let good = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1},
            {"name":"x","ph":"i","ts":1.5,"pid":1,"tid":1,"s":"t"},
            {"name":"a","ph":"E","ts":2.0,"pid":1,"tid":1}]}"#;
        let stats = validate_chrome_trace(good).unwrap();
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.tracks, 1);

        let open = r#"{"traceEvents":[{"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(open)
            .unwrap_err()
            .contains("left open"));

        let orphan = r#"{"traceEvents":[{"name":"a","ph":"E","ts":1.0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(orphan)
            .unwrap_err()
            .contains("no open span"));

        let crossed = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1},
            {"name":"b","ph":"B","ts":2.0,"pid":1,"tid":1},
            {"name":"a","ph":"E","ts":3.0,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":4.0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(crossed)
            .unwrap_err()
            .contains("does not match"));

        // Same names on different tracks balance independently.
        let two_tracks = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1},
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":2},
            {"name":"a","ph":"E","ts":2.0,"pid":1,"tid":2},
            {"name":"a","ph":"E","ts":2.0,"pid":1,"tid":1}]}"#;
        assert_eq!(validate_chrome_trace(two_tracks).unwrap().tracks, 2);

        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }
}
