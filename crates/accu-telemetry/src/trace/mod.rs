//! accu-trace: low-overhead structured event tracing.
//!
//! A [`Tracer`] owns a set of ring-buffered per-thread tracks. Each
//! worker thread opens a [`TraceTrack`] and emits begin/end spans and
//! instant events with typed payloads ([`TraceValue`]). Events carry a
//! process-global atomic sequence number and a nanosecond timestamp
//! relative to the tracer's epoch, so interleavings reconstruct exactly
//! even across threads.
//!
//! Like the [`Recorder`](crate::Recorder), a tracer is threaded
//! *explicitly* (no global state) and is either enabled or disabled. A
//! disabled tracer hands out no-op tracks whose hot-path methods branch
//! on `None` — no atomics, no clock reads, no allocation. An enabled
//! track additionally carries a per-track *active* gate (one relaxed
//! atomic load per emission) that the experiment runner toggles per
//! episode to implement `--trace :sample=N` episode sampling.
//!
//! Two exporters are provided:
//!
//! * [`Tracer::export_chrome`] — Chrome trace-event JSON, loadable in
//!   Perfetto or `chrome://tracing`, one track per worker. Begin/end
//!   pairs are re-balanced per track at export time, so ring-buffer
//!   overwrites and spans still open at export never produce an
//!   unbalanced file.
//! * [`Tracer::export_causal`] — a compact JSONL causal log, one event
//!   per line in per-track sequence order, replayable by the
//!   `trace_explain` binary.
//!
//! ```
//! use accu_telemetry::{TraceValue, Tracer};
//!
//! let tracer = Tracer::enabled();
//! let track = tracer.track("worker-0");
//! {
//!     let _span = track.span("chunk");
//!     track.instant("request", &[("target", TraceValue::U64(12))]);
//! }
//! let chrome = tracer.export_chrome().expect("enabled tracer exports");
//! assert!(chrome.contains("\"traceEvents\""));
//!
//! // Disabled tracers export nothing and their tracks are no-ops.
//! let off = Tracer::disabled();
//! off.track("worker-0").instant("request", &[]);
//! assert!(off.export_chrome().is_none());
//! ```

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

mod causal;
mod chrome;
mod json;

pub use json::{parse_json, validate_chrome_trace, ChromeTraceStats, Json};

/// Default per-track ring capacity, in events. At roughly 100 bytes per
/// event this bounds a track at a few megabytes; the oldest events are
/// overwritten first and counted in [`Tracer::total_dropped`].
pub const DEFAULT_TRACK_CAPACITY: usize = 1 << 16;

/// A typed event payload value.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float, serialized with shortest round-trip formatting so the
    /// causal log replays bit-exactly (`null` if non-finite).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on export).
    Str(Cow<'static, str>),
}

impl From<u64> for TraceValue {
    fn from(v: u64) -> Self {
        TraceValue::U64(v)
    }
}

impl From<usize> for TraceValue {
    fn from(v: usize) -> Self {
        TraceValue::U64(v as u64)
    }
}

impl From<i64> for TraceValue {
    fn from(v: i64) -> Self {
        TraceValue::I64(v)
    }
}

impl From<f64> for TraceValue {
    fn from(v: f64) -> Self {
        TraceValue::F64(v)
    }
}

impl From<bool> for TraceValue {
    fn from(v: bool) -> Self {
        TraceValue::Bool(v)
    }
}

impl From<&'static str> for TraceValue {
    fn from(v: &'static str) -> Self {
        TraceValue::Str(Cow::Borrowed(v))
    }
}

impl From<String> for TraceValue {
    fn from(v: String) -> Self {
        TraceValue::Str(Cow::Owned(v))
    }
}

/// The phase of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span start (Chrome phase `B`).
    Begin,
    /// Span end (Chrome phase `E`).
    End,
    /// A point-in-time event (Chrome phase `i`).
    Instant,
}

/// One collected trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Process-global sequence number (total order across tracks).
    pub seq: u64,
    /// Nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Event name.
    pub name: Cow<'static, str>,
    /// Typed payload, in emission order.
    pub args: Vec<(Cow<'static, str>, TraceValue)>,
}

/// One track's ring buffer plus its sampling gate.
#[derive(Debug)]
struct TrackBuffer {
    /// Stable track id, used as the Chrome `tid`.
    id: u64,
    name: String,
    /// Per-track sampling gate; one relaxed load per emission.
    active: AtomicBool,
    /// Events overwritten by the ring.
    dropped: AtomicU64,
    events: Mutex<VecDeque<TraceEvent>>,
}

/// State shared by a tracer and all its track handles.
#[derive(Debug)]
struct TraceShared {
    epoch: Instant,
    sample_every: u64,
    capacity: usize,
    seq: AtomicU64,
    tracks: Mutex<Vec<Arc<TrackBuffer>>>,
}

/// A per-track snapshot taken at export time.
#[derive(Debug)]
pub(crate) struct TrackSnapshot {
    pub(crate) id: u64,
    pub(crate) name: String,
    pub(crate) dropped: u64,
    pub(crate) events: Vec<TraceEvent>,
}

/// A cheaply cloneable handle to a trace collection, or a no-op.
///
/// See the [module docs](self) for the full model and an example.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TraceShared>>,
}

impl Tracer {
    /// A disabled tracer: every track it yields is a no-op and every
    /// export returns `None`.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer sampling every episode, with the default
    /// per-track ring capacity.
    pub fn enabled() -> Self {
        Tracer::with_config(1, DEFAULT_TRACK_CAPACITY)
    }

    /// An enabled tracer tracing every `sample_every`-th episode (see
    /// [`Tracer::sample_hit`]) with the given per-track ring capacity.
    /// Both parameters are clamped to at least 1.
    pub fn with_config(sample_every: u64, capacity: usize) -> Self {
        Tracer {
            inner: Some(Arc::new(TraceShared {
                epoch: Instant::now(),
                sample_every: sample_every.max(1),
                capacity: capacity.max(1),
                seq: AtomicU64::new(0),
                tracks: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this tracer collects anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The configured episode sampling period (1 when disabled).
    pub fn sample_every(&self) -> u64 {
        self.inner.as_ref().map_or(1, |s| s.sample_every)
    }

    /// Whether the episode with the given global index should be traced:
    /// enabled and `index % sample_every == 0`. Always false when
    /// disabled.
    pub fn sample_hit(&self, index: u64) -> bool {
        match &self.inner {
            Some(s) => index.is_multiple_of(s.sample_every),
            None => false,
        }
    }

    /// Opens a new track (one per worker thread by convention). Tracks
    /// start active; on a disabled tracer the returned track is a no-op.
    pub fn track(&self, name: &str) -> TraceTrack {
        let Some(shared) = &self.inner else {
            return TraceTrack::default();
        };
        let mut tracks = shared.tracks.lock().unwrap_or_else(|e| e.into_inner());
        let buffer = Arc::new(TrackBuffer {
            id: tracks.len() as u64 + 1,
            name: name.to_string(),
            active: AtomicBool::new(true),
            dropped: AtomicU64::new(0),
            events: Mutex::new(VecDeque::new()),
        });
        tracks.push(Arc::clone(&buffer));
        drop(tracks);
        TraceTrack {
            inner: Some(TrackHandle {
                shared: Arc::clone(shared),
                buffer,
            }),
        }
    }

    /// Total events overwritten by ring-buffer wraparound, across all
    /// tracks (0 when disabled).
    pub fn total_dropped(&self) -> u64 {
        self.snapshot_tracks()
            .iter()
            .map(|t| t.dropped)
            .sum::<u64>()
    }

    /// Total events currently retained across all tracks (0 when
    /// disabled).
    pub fn event_count(&self) -> usize {
        self.snapshot_tracks().iter().map(|t| t.events.len()).sum()
    }

    /// Exports all retained events as Chrome trace-event JSON
    /// (`{"traceEvents":[...]}`), or `None` when disabled. Begin/end
    /// pairs are balanced per track: ends orphaned by ring overwrite are
    /// dropped and spans still open at export are closed at the last
    /// timestamp, so the output always satisfies the span-balance
    /// invariant checked by [`validate_chrome_trace`].
    pub fn export_chrome(&self) -> Option<String> {
        self.inner.is_some().then(|| {
            let tracks = self.snapshot_tracks();
            chrome::export(&tracks)
        })
    }

    /// Exports all retained events as a JSONL causal log (one event per
    /// line, per-track sequence order), or `None` when disabled.
    pub fn export_causal(&self) -> Option<String> {
        self.inner.is_some().then(|| {
            let tracks = self.snapshot_tracks();
            causal::export(&tracks)
        })
    }

    fn snapshot_tracks(&self) -> Vec<TrackSnapshot> {
        let Some(shared) = &self.inner else {
            return Vec::new();
        };
        let tracks = shared.tracks.lock().unwrap_or_else(|e| e.into_inner());
        tracks
            .iter()
            .map(|buf| TrackSnapshot {
                id: buf.id,
                name: buf.name.clone(),
                dropped: buf.dropped.load(Ordering::Relaxed),
                events: buf
                    .events
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .iter()
                    .cloned()
                    .collect(),
            })
            .collect()
    }
}

/// A live handle into one track's buffer.
#[derive(Debug, Clone)]
struct TrackHandle {
    shared: Arc<TraceShared>,
    buffer: Arc<TrackBuffer>,
}

impl TrackHandle {
    fn push(&self, kind: EventKind, name: Cow<'static, str>, args: &[(&'static str, TraceValue)]) {
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        let ts_ns = u64::try_from(self.shared.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let event = TraceEvent {
            seq,
            ts_ns,
            kind,
            name,
            args: args
                .iter()
                .map(|(k, v)| (Cow::Borrowed(*k), v.clone()))
                .collect(),
        };
        let mut ring = self.buffer.events.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= self.shared.capacity {
            ring.pop_front();
            self.buffer.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }
}

/// A per-thread emission handle: a clone of the track shares the same
/// buffer and sampling gate, so the runner, simulator and policy emit
/// into one interleaved sequence per worker.
///
/// Default-constructed (or obtained from a disabled [`Tracer`]) tracks
/// are no-ops: every method is a branch on `None` with no atomics, no
/// clock reads and no allocation.
#[derive(Debug, Clone, Default)]
pub struct TraceTrack {
    inner: Option<TrackHandle>,
}

impl TraceTrack {
    /// A no-op track (same as `TraceTrack::default()`).
    pub fn disabled() -> Self {
        TraceTrack::default()
    }

    /// Whether this track is connected to an enabled tracer.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the sampling gate: while inactive, `instant` and `span`
    /// emit nothing (ends of already-open spans still emit, keeping
    /// begin/end balanced). No-op on a disabled track.
    pub fn set_active(&self, on: bool) {
        if let Some(handle) = &self.inner {
            handle.buffer.active.store(on, Ordering::Relaxed);
        }
    }

    /// Whether the track is enabled *and* its sampling gate is open.
    /// This is the hot-path guard: a branch on `None` when disabled,
    /// one relaxed atomic load when enabled.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.live().is_some()
    }

    #[inline]
    fn live(&self) -> Option<&TrackHandle> {
        match &self.inner {
            Some(handle) if handle.buffer.active.load(Ordering::Relaxed) => Some(handle),
            _ => None,
        }
    }

    /// Emits an instant event with the given payload. No-op when the
    /// track is disabled or its gate is closed.
    pub fn instant(&self, name: &'static str, args: &[(&'static str, TraceValue)]) {
        if let Some(handle) = self.live() {
            handle.push(EventKind::Instant, Cow::Borrowed(name), args);
        }
    }

    /// Opens a span; the returned guard emits the matching end event
    /// when dropped (including during panic unwind) or on
    /// [`TraceSpan::finish`]. If the gate is closed no begin is emitted
    /// and the guard is inert.
    pub fn span(&self, name: &'static str) -> TraceSpan {
        self.span_with(name, &[])
    }

    /// [`TraceTrack::span`] with a payload on the begin event.
    pub fn span_with(&self, name: &'static str, args: &[(&'static str, TraceValue)]) -> TraceSpan {
        let armed = match self.live() {
            Some(handle) => {
                handle.push(EventKind::Begin, Cow::Borrowed(name), args);
                true
            }
            None => false,
        };
        TraceSpan {
            track: self.clone(),
            name,
            armed,
        }
    }
}

/// RAII guard for an open span; see [`TraceTrack::span`].
///
/// The end event bypasses the sampling gate: once a begin was emitted,
/// the matching end is emitted unconditionally so per-track begin/end
/// sequences stay balanced even if the gate flips mid-span.
#[derive(Debug)]
pub struct TraceSpan {
    track: TraceTrack,
    name: &'static str,
    armed: bool,
}

impl TraceSpan {
    /// Ends the span now instead of at scope exit.
    pub fn finish(mut self) {
        self.end();
    }

    fn end(&mut self) {
        if self.armed {
            self.armed = false;
            if let Some(handle) = &self.track.inner {
                handle.push(EventKind::End, Cow::Borrowed(self.name), &[]);
            }
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(tracer: &Tracer) -> Vec<(EventKind, String)> {
        tracer
            .snapshot_tracks()
            .into_iter()
            .flat_map(|t| t.events)
            .map(|e| (e.kind, e.name.into_owned()))
            .collect()
    }

    #[test]
    fn disabled_tracks_are_noops() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let track = tracer.track("w");
        assert!(!track.is_enabled());
        assert!(!track.is_active());
        track.instant("x", &[("a", 1u64.into())]);
        let span = track.span("s");
        span.finish();
        assert!(tracer.export_chrome().is_none());
        assert!(tracer.export_causal().is_none());
        assert_eq!(tracer.event_count(), 0);
    }

    #[test]
    fn spans_and_instants_collect_in_order() {
        let tracer = Tracer::enabled();
        let track = tracer.track("w");
        {
            let _chunk = track.span("chunk");
            track.instant("request", &[("target", 3u64.into())]);
        }
        let got = names(&tracer);
        assert_eq!(
            got,
            vec![
                (EventKind::Begin, "chunk".to_string()),
                (EventKind::Instant, "request".to_string()),
                (EventKind::End, "chunk".to_string()),
            ]
        );
        assert_eq!(tracer.event_count(), 3);
        assert_eq!(tracer.total_dropped(), 0);
    }

    #[test]
    fn sequence_numbers_are_globally_unique_and_ordered() {
        let tracer = Tracer::enabled();
        let a = tracer.track("a");
        let b = tracer.track("b");
        a.instant("x", &[]);
        b.instant("y", &[]);
        a.instant("z", &[]);
        let mut seqs: Vec<u64> = tracer
            .snapshot_tracks()
            .into_iter()
            .flat_map(|t| t.events)
            .map(|e| e.seq)
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn sampling_gate_suppresses_events_but_not_span_ends() {
        let tracer = Tracer::enabled();
        let track = tracer.track("w");
        let span = track.span("chunk");
        track.set_active(false);
        assert!(!track.is_active());
        track.instant("dropped", &[]);
        let inert = track.span("never");
        inert.finish();
        span.finish(); // begin was emitted; end must follow despite the gate
        track.set_active(true);
        track.instant("kept", &[]);
        let got = names(&tracer);
        assert_eq!(
            got,
            vec![
                (EventKind::Begin, "chunk".to_string()),
                (EventKind::End, "chunk".to_string()),
                (EventKind::Instant, "kept".to_string()),
            ]
        );
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let tracer = Tracer::with_config(1, 4);
        let track = tracer.track("w");
        for i in 0..10u64 {
            track.instant("e", &[("i", i.into())]);
        }
        assert_eq!(tracer.event_count(), 4);
        assert_eq!(tracer.total_dropped(), 6);
        let first = tracer.snapshot_tracks().remove(0);
        let kept: Vec<u64> = first.events.iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn sample_hit_follows_the_period() {
        let tracer = Tracer::with_config(3, 64);
        assert!(tracer.sample_hit(0));
        assert!(!tracer.sample_hit(1));
        assert!(!tracer.sample_hit(2));
        assert!(tracer.sample_hit(3));
        assert_eq!(tracer.sample_every(), 3);
        let off = Tracer::disabled();
        assert!(!off.sample_hit(0));
        assert_eq!(off.sample_every(), 1);
    }

    #[test]
    fn clones_share_the_same_buffer_and_gate() {
        let tracer = Tracer::enabled();
        let track = tracer.track("w");
        let clone = track.clone();
        clone.set_active(false);
        track.instant("suppressed", &[]);
        clone.set_active(true);
        track.instant("a", &[]);
        clone.instant("b", &[]);
        assert_eq!(tracer.event_count(), 2);
    }

    #[test]
    fn span_end_emitted_on_panic_unwind() {
        let tracer = Tracer::enabled();
        let track = tracer.track("w");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = track.span("doomed");
            panic!("boom");
        }));
        assert!(result.is_err());
        let got = names(&tracer);
        assert_eq!(
            got,
            vec![
                (EventKind::Begin, "doomed".to_string()),
                (EventKind::End, "doomed".to_string()),
            ]
        );
    }
}
