//! Property tests for the event journal: **any** interleaving of
//! concurrent journal writers — different thread schedules, event
//! counts, severities, and correlation shapes, with or without a torn
//! final line — must read back as parseable JSONL whose per-writer
//! sequence numbers are strictly increasing, with exactly the torn
//! tail (and nothing else) skipped.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;

use accu_telemetry::{read_journal, Corr, Journal, Severity};
use proptest::prelude::*;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "accu_journal_prop_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{tag}.jsonl"))
}

const SEVERITIES: [Severity; 4] = [
    Severity::Debug,
    Severity::Info,
    Severity::Warn,
    Severity::Error,
];
const KINDS: [&str; 4] = ["job.run", "lease.acquire", "run.chunk", "obs.alarm"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn interleaved_writers_yield_parseable_seq_monotonic_journal(
        writers in 1usize..5,
        counts in proptest::collection::vec(1usize..24, 4),
        sev_seed in any::<u64>(),
        torn_tail in any::<bool>(),
    ) {
        let path = scratch(&format!("interleave_{writers}_{sev_seed}"));
        let _ = std::fs::remove_file(&path);

        let expected: usize = counts.iter().take(writers).sum();
        std::thread::scope(|scope| {
            for (w, &count) in counts.iter().take(writers).enumerate() {
                let path = path.clone();
                scope.spawn(move || {
                    // Each thread gets its own journal handle, hence
                    // its own writer id and sequence stream — exactly
                    // like racing daemon incarnations on one registry.
                    let journal = Journal::append_to(&path).expect("open journal");
                    for i in 0..count {
                        let pick = (sev_seed as usize)
                            .wrapping_add(w * 31)
                            .wrapping_add(i * 7);
                        let corr = if pick.is_multiple_of(3) {
                            Corr::none()
                        } else {
                            Corr::job(format!("job-{w}")).epoch(i as u64 + 1)
                        };
                        journal.log(
                            SEVERITIES[pick % SEVERITIES.len()],
                            KINDS[pick % KINDS.len()],
                            &format!("writer {w} event {i}"),
                            &corr,
                        );
                    }
                });
            }
        });
        if torn_tail {
            // A crash mid-append leaves a prefix of a line with no
            // terminating newline; readers must drop exactly it.
            let mut file = OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("reopen for tear");
            file.write_all(b"{\"type\":\"journal\",\"writer\":9,\"se")
                .expect("torn tail");
        }

        let read = read_journal(&path).expect("read back");
        prop_assert_eq!(
            read.events.len(),
            expected,
            "every completed append must read back"
        );
        prop_assert_eq!(read.skipped_lines, usize::from(torn_tail));
        prop_assert!(read.check_seq_monotonic().is_ok());
        // Per-writer event counts survive the interleaving intact.
        for (w, &count) in counts.iter().take(writers).enumerate() {
            let seen = read
                .events
                .iter()
                .filter(|e| e.message.starts_with(&format!("writer {w} ")))
                .count();
            prop_assert_eq!(seen, count, "writer {} lost events", w);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// The daemon's sharing pattern: one journal handle cloned across
    /// threads must still emit a single `(writer, seq)` stream whose
    /// file order matches its sequence order — racing clones may not
    /// reorder or lose events.
    #[test]
    fn cloned_handle_across_threads_stays_one_monotonic_stream(
        threads in 2usize..6,
        per_thread in 1usize..16,
        sev_seed in any::<u64>(),
    ) {
        let path = scratch(&format!("clone_{threads}_{per_thread}_{sev_seed}"));
        let _ = std::fs::remove_file(&path);
        let journal = Journal::append_to(&path).expect("open journal");
        std::thread::scope(|scope| {
            for t in 0..threads {
                let journal = journal.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let pick = (sev_seed as usize).wrapping_add(t * 13 + i);
                        journal.log(
                            SEVERITIES[pick % SEVERITIES.len()],
                            KINDS[pick % KINDS.len()],
                            &format!("thread {t} event {i}"),
                            &Corr::job("shared").attempt(t as u64),
                        );
                    }
                });
            }
        });
        let read = read_journal(&path).expect("read back");
        prop_assert_eq!(read.events.len(), threads * per_thread);
        prop_assert_eq!(read.skipped_lines, 0);
        prop_assert!(read.check_seq_monotonic().is_ok());
        let writers: std::collections::BTreeSet<u64> =
            read.events.iter().map(|e| e.writer).collect();
        prop_assert_eq!(writers.len(), 1, "clones share one writer id");
        let _ = std::fs::remove_file(&path);
    }
}
