//! Property tests for the trace layer: **any** emission sequence —
//! nested spans, instants, sampling-gate flips mid-span, multiple
//! tracks, ring capacities small enough to force overwrite — must
//! export as structurally valid Chrome trace JSON (balanced begin/end
//! per track) and as a causal log whose every line is valid JSON.

use accu_telemetry::{parse_json, validate_chrome_trace, Json, TraceSpan, TraceValue, Tracer};
use proptest::prelude::*;

/// One scripted action against a random track.
#[derive(Debug, Clone)]
enum Op {
    /// Emit an instant with a small payload.
    Instant(usize),
    /// Open a span (pushed on the per-track stack).
    Open(usize),
    /// Close the innermost open span of the track, if any.
    Close(usize),
    /// Flip the track's sampling gate.
    Gate(usize, bool),
}

const SPAN_NAMES: [&str; 4] = ["load", "chunk", "episodes", "fold"];

fn op_strategy(tracks: usize) -> impl Strategy<Value = Op> {
    (0usize..4, 0..tracks, any::<bool>()).prop_map(|(kind, track, on)| match kind {
        0 => Op::Instant(track),
        1 => Op::Open(track),
        2 => Op::Close(track),
        _ => Op::Gate(track, on),
    })
}

/// Runs a script against a fresh tracer and returns it with all spans
/// closed (by drop, exactly as the runner's RAII guards would).
fn run_script(ops: &[Op], tracks: usize, capacity: usize, sample: u64) -> Tracer {
    let tracer = Tracer::with_config(sample, capacity);
    let handles: Vec<_> = (0..tracks)
        .map(|t| tracer.track(&format!("worker-{t}")))
        .collect();
    let mut stacks: Vec<Vec<TraceSpan>> = (0..tracks).map(|_| Vec::new()).collect();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Instant(t) => handles[t].instant(
                "request",
                &[
                    ("step", TraceValue::U64(i as u64)),
                    ("gain", TraceValue::F64(i as f64 * 0.25)),
                    ("accepted", TraceValue::Bool(i % 2 == 0)),
                ],
            ),
            Op::Open(t) => {
                let name = SPAN_NAMES[stacks[t].len() % SPAN_NAMES.len()];
                stacks[t].push(handles[t].span_with(name, &[("i", TraceValue::U64(i as u64))]));
            }
            Op::Close(t) => {
                stacks[t].pop(); // drop emits the end event
            }
            Op::Gate(t, on) => handles[t].set_active(on),
        }
    }
    // Leftover spans unwind in reverse (drop order of the Vec is fine:
    // ends bypass the gate, and the exporter balances per track).
    drop(stacks);
    tracer
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariant: whatever the emission sequence and
    /// however small the ring, the Chrome export passes structural
    /// validation — every begin has a matching same-name end per track,
    /// nothing is left open.
    #[test]
    fn any_emission_sequence_exports_balanced_chrome_json(
        ops in proptest::collection::vec(op_strategy(3), 0..120),
        capacity in 1usize..48,
        sample in 1u64..5,
    ) {
        let tracer = run_script(&ops, 3, capacity, sample);
        let chrome = tracer.export_chrome().expect("enabled tracer exports");
        let stats = validate_chrome_trace(&chrome)
            .unwrap_or_else(|e| panic!("invalid chrome export: {e}\n{chrome}"));
        // Worker tracks always get their metadata row.
        prop_assert_eq!(stats.metadata, 3);
    }

    /// Every line of the causal export is standalone valid JSON with
    /// the documented envelope, and the drop markers account for
    /// exactly the events the ring overwrote.
    #[test]
    fn causal_export_lines_are_valid_json(
        ops in proptest::collection::vec(op_strategy(2), 0..100),
        capacity in 1usize..32,
    ) {
        let tracer = run_script(&ops, 2, capacity, 1);
        let causal = tracer.export_causal().expect("enabled tracer exports");
        let mut dropped = 0u64;
        for line in causal.lines() {
            let value = parse_json(line)
                .unwrap_or_else(|e| panic!("invalid causal line: {e}\n{line}"));
            let ty = value.get("type").and_then(Json::as_str).expect("type field");
            match ty {
                "trace" => {
                    for key in ["track", "seq", "ts_ns", "kind", "name"] {
                        prop_assert!(value.get(key).is_some(), "missing {} in {}", key, line);
                    }
                }
                "trace_drops" => {
                    dropped += value
                        .get("dropped")
                        .and_then(Json::as_u64)
                        .expect("dropped count");
                }
                other => prop_assert!(false, "unexpected line type {:?}", other),
            }
        }
        prop_assert_eq!(dropped, tracer.total_dropped());
    }

    /// Sequence numbers in the causal log are strictly increasing per
    /// track (the per-episode replay relies on per-track order).
    #[test]
    fn causal_export_is_ordered_per_track(
        ops in proptest::collection::vec(op_strategy(2), 0..80),
    ) {
        let tracer = run_script(&ops, 2, 1 << 12, 1);
        let causal = tracer.export_causal().expect("enabled tracer exports");
        let mut last_seq: std::collections::HashMap<String, u64> = Default::default();
        for line in causal.lines() {
            let value = parse_json(line).expect("valid line");
            if value.get("type").and_then(Json::as_str) != Some("trace") {
                continue;
            }
            let track = value
                .get("track")
                .and_then(Json::as_str)
                .expect("track")
                .to_string();
            let seq = value.get("seq").and_then(Json::as_u64).expect("seq");
            if let Some(prev) = last_seq.insert(track.clone(), seq) {
                prop_assert!(prev < seq, "track {} seq {} after {}", track, seq, prev);
            }
        }
    }
}
