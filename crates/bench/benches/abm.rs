//! Benchmarks of the ABM policy, including the DESIGN.md ablation of
//! incremental (dirty-set + lazy heap) rescoring against a naive
//! full-rescan greedy, and the `w_I` weight sweep.

use accu_bench::default_instance;
use accu_core::policy::{Abm, AbmWeights, Policy};
use accu_core::{run_attack, run_attack_recorded, AttackerView, Observation, Realization};
use accu_telemetry::{JsonlSink, Recorder};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use osn_graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Naive ABM: identical scoring, but recomputes every candidate's
/// potential from scratch at every step (the paper's Algorithm 1 as
/// literally written). The ablation baseline.
struct NaiveAbm {
    inner: Abm,
}

impl Policy for NaiveAbm {
    fn name(&self) -> &str {
        "NaiveABM"
    }
    fn reset(&mut self, _view: &AttackerView<'_>) {}
    fn select(&mut self, view: &AttackerView<'_>) -> Option<NodeId> {
        view.candidates()
            .map(|u| (self.inner.potential_of(view, u), u))
            .max_by(|a, b| a.0.total_cmp(&b.0).then_with(|| b.1.cmp(&a.1)))
            .map(|(_, u)| u)
    }
}

fn bench_full_attack(c: &mut Criterion) {
    let instance = default_instance();
    let mut rng = StdRng::seed_from_u64(9);
    let realization = Realization::sample(&instance, &mut rng);

    let mut group = c.benchmark_group("abm_attack_k100");
    group.sample_size(20);
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut abm = Abm::new(AbmWeights::balanced());
            black_box(run_attack(&instance, &realization, &mut abm, 100).total_benefit)
        })
    });
    group.bench_function("naive_full_rescan", |b| {
        b.iter(|| {
            let mut naive = NaiveAbm {
                inner: Abm::new(AbmWeights::balanced()),
            };
            black_box(run_attack(&instance, &realization, &mut naive, 100).total_benefit)
        })
    });
    group.finish();
}

fn bench_weight_sweep(c: &mut Criterion) {
    let instance = default_instance();
    let mut rng = StdRng::seed_from_u64(11);
    let realization = Realization::sample(&instance, &mut rng);
    let mut group = c.benchmark_group("abm_weight_sweep_k50");
    group.sample_size(20);
    for wi in [0.0f64, 0.2, 0.5] {
        group.bench_with_input(BenchmarkId::from_parameter(wi), &wi, |b, &wi| {
            b.iter(|| {
                let mut abm = Abm::new(AbmWeights::with_indirect(wi));
                black_box(run_attack(&instance, &realization, &mut abm, 50).total_benefit)
            })
        });
    }
    group.finish();
}

fn bench_potential_evaluation(c: &mut Criterion) {
    let instance = default_instance();
    let observation = Observation::for_instance(&instance);
    let abm = Abm::new(AbmWeights::balanced());
    c.bench_function("abm_potential_all_candidates", |b| {
        let view = AttackerView::new(&instance, &observation);
        b.iter(|| {
            let mut acc = 0.0f64;
            for u in view.candidates() {
                acc += abm.potential_of(&view, u);
            }
            black_box(acc)
        })
    });
}

fn bench_reset(c: &mut Criterion) {
    let instance = default_instance();
    let observation = Observation::for_instance(&instance);
    c.bench_function("abm_reset_heap_build", |b| {
        let view = AttackerView::new(&instance, &observation);
        b.iter(|| {
            let mut abm = Abm::new(AbmWeights::balanced());
            abm.reset(&view);
            black_box(abm.select(&view))
        })
    });
}

/// Not a timed benchmark: replays the k=100 attack once with an enabled
/// recorder and writes the per-stage telemetry snapshot next to the
/// bench results, so a profile accompanies every `cargo bench` run.
fn emit_telemetry_snapshot(_c: &mut Criterion) {
    let instance = default_instance();
    let mut rng = StdRng::seed_from_u64(9);
    let realization = Realization::sample(&instance, &mut rng);
    let recorder = Recorder::enabled();
    let mut abm = Abm::with_recorder(AbmWeights::balanced(), &recorder);
    black_box(run_attack_recorded(
        &instance,
        &realization,
        &mut abm,
        100,
        &recorder,
    ));
    let snapshot = recorder
        .snapshot("bench/abm_attack_k100")
        .expect("recorder is enabled");
    // Benches run with the package dir as CWD; anchor to the workspace
    // target dir so the snapshot lands next to the Criterion results.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/experiments/telemetry/bench_abm.jsonl");
    let write = JsonlSink::create(&path).and_then(|mut sink| {
        sink.write_snapshot(&snapshot)?;
        sink.flush()
    });
    match write {
        Ok(()) => println!("telemetry snapshot written to {}", path.display()),
        Err(e) => eprintln!("telemetry write failed: {e}"),
    }
}

criterion_group!(
    benches,
    bench_full_attack,
    bench_weight_sweep,
    bench_potential_evaluation,
    bench_reset,
    emit_telemetry_snapshot
);
criterion_main!(benches);
