//! One benchmark per paper artifact: each bench exercises the exact
//! code path that regenerates the table/figure, at micro scale, so
//! `cargo bench` both times and smoke-verifies the whole experiment
//! suite. (Full-scale regeneration: `cargo run -p accu-experiments
//! --bin figN --release [--paper]`.)

use accu_core::theory::{adaptive_submodular_ratio, curvature_ratio, exact_marginal_gain};
use accu_core::{AccuInstanceBuilder, Observation, Realization, UserClass};
use accu_datasets::{DatasetSpec, ProtocolConfig};
use accu_experiments::heatmap::run_heatmap;
use accu_experiments::{run_policy, run_policy_recorded, Cli, ExperimentScale, PolicyKind};
use accu_telemetry::{JsonlSink, Recorder};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use osn_graph::algo::DegreeStats;
use osn_graph::{GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Micro experiment scale shared by the figure benches.
fn micro_scale() -> ExperimentScale {
    ExperimentScale::from_cli(&Cli {
        samples: Some(1),
        runs: Some(1),
        budget: Some(30),
        scale: Some(0.005),
        ..Cli::default()
    })
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_dataset_stats", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let g = DatasetSpec::facebook()
                .scaled(0.25)
                .generate(&mut rng)
                .unwrap();
            black_box((g.edge_count(), DegreeStats::of(&g)))
        })
    });
}

fn bench_fig1(c: &mut Criterion) {
    let g = GraphBuilder::from_edges(2, [(0u32, 1u32)]).unwrap();
    let inst = AccuInstanceBuilder::new(g)
        .user_class(NodeId::new(0), UserClass::cautious(1))
        .benefits(NodeId::new(0), 2.0, 1.0)
        .build()
        .unwrap();
    let real = Realization::from_parts(&inst, vec![true], vec![false, true]).unwrap();
    c.bench_function("fig1_exact_marginal_gains", |b| {
        b.iter(|| {
            let empty = Observation::for_instance(&inst);
            let d0 = exact_marginal_gain(&inst, &empty, NodeId::new(0)).unwrap();
            let mut grown = Observation::for_instance(&inst);
            grown.record_acceptance(NodeId::new(1), &inst, &real);
            let d1 = exact_marginal_gain(&inst, &grown, NodeId::new(0)).unwrap();
            black_box((d0, d1, curvature_ratio(10.0, 20)))
        })
    });
    c.bench_function("fig1_adaptive_submodular_ratio", |b| {
        b.iter(|| black_box(adaptive_submodular_ratio(&inst).unwrap()))
    });
}

fn bench_fig2(c: &mut Criterion) {
    let scale = micro_scale();
    let mut group = c.benchmark_group("fig2_benefit_vs_k");
    group.sample_size(10);
    for policy in PolicyKind::paper_lineup() {
        group.bench_function(policy.name(), |b| {
            let figure = scale.figure_run(DatasetSpec::twitter(), ProtocolConfig::default());
            b.iter(|| black_box(run_policy(&figure, policy).mean_total_benefit()))
        });
    }
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let scale = micro_scale();
    let mut group = c.benchmark_group("fig3_marginal_breakdown");
    group.sample_size(10);
    group.bench_function("abm_trace_split", |b| {
        let figure = scale.figure_run(DatasetSpec::slashdot(), ProtocolConfig::default());
        b.iter(|| {
            let acc = run_policy(&figure, PolicyKind::abm_balanced());
            black_box((
                acc.mean_marginal_from_cautious(),
                acc.mean_marginal_from_reckless(),
            ))
        })
    });
    group.finish();
}

fn bench_fig4_fig5(c: &mut Criterion) {
    let scale = micro_scale();
    let mut group = c.benchmark_group("fig4_fig5_weight_sweep_point");
    group.sample_size(10);
    for wi in [0.0f64, 0.3] {
        group.bench_function(format!("w_I={wi}"), |b| {
            let figure = scale.figure_run(DatasetSpec::twitter(), ProtocolConfig::default());
            b.iter(|| {
                let acc = run_policy(&figure, PolicyKind::abm_with_indirect(wi));
                black_box((
                    acc.mean_total_benefit(),
                    acc.mean_cautious_friends(),
                    acc.cautious_request_fraction(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_fig6_fig7(c: &mut Criterion) {
    let scale = micro_scale();
    let mut group = c.benchmark_group("fig6_fig7_heatmap");
    group.sample_size(10);
    group.bench_function("2x2_grid", |b| {
        b.iter(|| {
            let hm = run_heatmap(&scale, &[20.0, 60.0], &[0.1, 0.5]);
            black_box((hm.benefit, hm.cautious))
        })
    });
    group.finish();
}

/// Not a timed benchmark: runs the micro-scale Fig. 2 pipeline once
/// with an enabled recorder and writes the telemetry snapshot next to
/// the bench results.
fn emit_telemetry_snapshot(_c: &mut Criterion) {
    let scale = micro_scale();
    let recorder = Recorder::enabled();
    let figure = scale.figure_run(DatasetSpec::twitter(), ProtocolConfig::default());
    black_box(run_policy_recorded(
        &figure,
        PolicyKind::abm_balanced(),
        &recorder,
    ));
    let snapshot = recorder
        .snapshot("bench/fig2_micro")
        .expect("recorder is enabled");
    // Benches run with the package dir as CWD; anchor to the workspace
    // target dir so the snapshot lands next to the Criterion results.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/experiments/telemetry/bench_figures.jsonl");
    let write = JsonlSink::create(&path).and_then(|mut sink| {
        sink.write_snapshot(&snapshot)?;
        sink.flush()
    });
    match write {
        Ok(()) => println!("telemetry snapshot written to {}", path.display()),
        Err(e) => eprintln!("telemetry write failed: {e}"),
    }
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_fig4_fig5,
    bench_fig6_fig7,
    emit_telemetry_snapshot
);
criterion_main!(benches);
