//! Benchmarks of the graph substrate, including the two DESIGN.md
//! storage ablations: binary-search adjacency vs hash-set membership,
//! and sorted-merge vs flag-array mutual-friend counting.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use osn_graph::algo::{
    betweenness_centrality, closeness_centrality, eigenvector_centrality, mutual_friend_count,
    pagerank, PageRankConfig,
};
use osn_graph::generators::{
    barabasi_albert, erdos_renyi_gnp, powerlaw_configuration, rmat, RmatParams,
};
use osn_graph::sampling::{bfs_sample, uniform_node_sample};
use osn_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("barabasi_albert_m8", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(barabasi_albert(n, 8, &mut rng).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("erdos_renyi_gnp", n), &n, |b, &n| {
            let p = 16.0 / n as f64;
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(erdos_renyi_gnp(n, p, &mut rng).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("powerlaw_config", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(powerlaw_configuration(n, 2.5, 2, 100, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

fn test_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(7);
    barabasi_albert(10_000, 10, &mut rng).unwrap()
}

/// Ablation: CSR binary-search `has_edge` vs a HashSet of edges.
fn bench_adjacency(c: &mut Criterion) {
    let g = test_graph();
    let mut rng = StdRng::seed_from_u64(3);
    let queries: Vec<(NodeId, NodeId)> = (0..1_000)
        .map(|_| {
            (
                NodeId::new(rng.gen_range(0..g.node_count() as u32)),
                NodeId::new(rng.gen_range(0..g.node_count() as u32)),
            )
        })
        .collect();
    let hashset: HashSet<(u32, u32)> = g
        .edges()
        .iter()
        .map(|e| (e.lo().as_u32(), e.hi().as_u32()))
        .collect();

    let mut group = c.benchmark_group("adjacency_ablation");
    group.bench_function("csr_binary_search", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(a, v) in &queries {
                if a != v && g.has_edge(a, v) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("hashset_lookup", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(a, v) in &queries {
                let key = if a <= v {
                    (a.as_u32(), v.as_u32())
                } else {
                    (v.as_u32(), a.as_u32())
                };
                if a != v && hashset.contains(&key) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

/// Ablation: sorted-merge mutual-friend counting vs flag-array
/// intersection.
fn bench_mutual(c: &mut Criterion) {
    let g = test_graph();
    let mut rng = StdRng::seed_from_u64(5);
    let pairs: Vec<(NodeId, NodeId)> = (0..500)
        .map(|_| {
            (
                NodeId::new(rng.gen_range(0..g.node_count() as u32)),
                NodeId::new(rng.gen_range(0..g.node_count() as u32)),
            )
        })
        .collect();

    let mut group = c.benchmark_group("mutual_friends_ablation");
    group.bench_function("sorted_merge", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &(a, v) in &pairs {
                total += mutual_friend_count(&g, a, v);
            }
            black_box(total)
        })
    });
    group.bench_function("flag_array", |b| {
        let mut flags = vec![false; g.node_count()];
        b.iter(|| {
            let mut total = 0usize;
            for &(a, v) in &pairs {
                for &w in g.neighbors(a) {
                    flags[w.index()] = true;
                }
                total += g.neighbors(v).iter().filter(|w| flags[w.index()]).count();
                for &w in g.neighbors(a) {
                    flags[w.index()] = false;
                }
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let g = test_graph();
    c.bench_function("pagerank_10k_nodes", |b| {
        b.iter(|| black_box(pagerank(&g, &PageRankConfig::new().max_iterations(30))))
    });
}

fn bench_centrality(c: &mut Criterion) {
    // Smaller graph: Brandes is O(n·m).
    let mut rng = StdRng::seed_from_u64(13);
    let g = barabasi_albert(1_000, 8, &mut rng).unwrap();
    let mut group = c.benchmark_group("centrality_1k_nodes");
    group.sample_size(10);
    group.bench_function("betweenness", |b| {
        b.iter(|| black_box(betweenness_centrality(&g)))
    });
    group.bench_function("closeness", |b| {
        b.iter(|| black_box(closeness_centrality(&g)))
    });
    group.bench_function("eigenvector", |b| {
        b.iter(|| black_box(eigenvector_centrality(&g, 50, 1e-9)))
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let g = test_graph();
    let mut group = c.benchmark_group("sampling_10k_to_2k");
    group.bench_function("bfs_snowball", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(bfs_sample(&g, 2_000, &mut rng).graph.edge_count())
        })
    });
    group.bench_function("uniform_nodes", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(uniform_node_sample(&g, 2_000, &mut rng).graph.edge_count())
        })
    });
    group.finish();
}

fn bench_rmat(c: &mut Criterion) {
    c.bench_function("rmat_scale13_ef8", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            black_box(
                rmat(13, 8, RmatParams::classic(), &mut rng)
                    .unwrap()
                    .edge_count(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_generators,
    bench_adjacency,
    bench_mutual,
    bench_pagerank,
    bench_centrality,
    bench_sampling,
    bench_rmat
);
criterion_main!(benches);
