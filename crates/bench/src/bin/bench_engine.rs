//! Episode-engine benchmark gate.
//!
//! Measures the zero-allocation Monte-Carlo episode engine on a fixed
//! fixture (the ~1.6k-node Twitter stand-in, ABM balanced, `k = 300`)
//! and reports:
//!
//! * `eps_per_sec` — steady-state episode throughput through
//!   [`accu_core::run_attack_episode`] with a reused `EpisodeScratch`;
//! * `ns_per_select` — mean `Policy::select` latency from the
//!   `sim.select_ns` histogram (measured in a separate instrumented
//!   pass, since an enabled recorder adds per-request clock reads);
//! * `allocs_per_episode` — heap allocations per episode in steady
//!   state, counted by a `#[global_allocator]` wrapper over the same
//!   seeds as the throughput pass (must be 0);
//! * `speedup_vs_head` — `eps_per_sec` over the pre-engine baseline
//!   (17.0 eps/s on the reference container, measured at the commit
//!   before the engine landed).
//!
//! `bench_engine` writes `BENCH_engine.json`; `bench_engine --check`
//! re-measures and exits non-zero if throughput regressed more than
//! `--max-regress` (default 0.25) against the committed file, or if a
//! steady-state episode allocates. Every `--check` run also appends a
//! dated entry to `BENCH_trajectory.jsonl` (next to the committed
//! file), so the perf history stays machine-readable across PRs
//! instead of only the latest snapshot surviving.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use accu_bench::{default_instance, git_revision, host_cores, json_field, utc_date};
use accu_core::policy::{Abm, AbmWeights};
use accu_core::{run_attack_episode, sim_metrics, EpisodeScratch, FaultPlan, RetryPolicy};
use accu_telemetry::obs::TRAJECTORY_SCHEMA;
use accu_telemetry::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pass-through allocator that counts allocations while armed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Pre-engine episode throughput on the reference container (episodes
/// per second on this exact fixture at the commit before the engine
/// overhaul). Kept as a constant so `speedup_vs_head` stays comparable
/// across re-measurements on that hardware.
const HEAD_BASELINE_EPS: f64 = 17.0;

const SEED: u64 = 9;
const BUDGET: usize = 300;
const WARMUP_EPISODES: usize = 5;
const MEASURED_EPISODES: usize = 60;

struct Measurement {
    eps_per_sec: f64,
    total_benefit: f64,
    ns_per_select: f64,
    allocs_per_episode: f64,
}

/// Runs `episodes` scratch-engine episodes from a fresh seed stream,
/// returning the summed benefit (determinism witness) and elapsed time.
fn run_pass(
    instance: &accu_core::AccuInstance,
    episodes: usize,
    recorder: &Recorder,
    scratch: &mut EpisodeScratch,
    policy: &mut Abm,
) -> (f64, std::time::Duration) {
    let plan = FaultPlan::none();
    let retry = RetryPolicy::give_up();
    let mut seed_rng = StdRng::seed_from_u64(SEED);
    let mut total = 0.0f64;
    let start = Instant::now();
    for _ in 0..episodes {
        let s: u64 = seed_rng.gen();
        let mut rng = StdRng::seed_from_u64(s);
        scratch.prepare(instance);
        scratch.realization.sample_into(instance, &mut rng);
        total += run_attack_episode(instance, policy, BUDGET, &plan, &retry, recorder, scratch)
            .total_benefit;
    }
    (total, start.elapsed())
}

fn measure() -> Measurement {
    let instance = default_instance();
    let mut scratch = EpisodeScratch::new();
    let mut policy = Abm::new(AbmWeights::balanced());
    let disabled = Recorder::disabled();

    // Warmup: size the scratch and the policy's per-instance caches.
    run_pass(
        &instance,
        WARMUP_EPISODES,
        &disabled,
        &mut scratch,
        &mut policy,
    );

    // Pass 1: throughput (no instrumentation).
    let (benefit, elapsed) = run_pass(
        &instance,
        MEASURED_EPISODES,
        &disabled,
        &mut scratch,
        &mut policy,
    );
    let eps_per_sec = MEASURED_EPISODES as f64 / elapsed.as_secs_f64();

    // Pass 2: identical seeds with the counting allocator armed —
    // steady state, so the engine must not touch the heap.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let (benefit2, _) = run_pass(
        &instance,
        MEASURED_EPISODES,
        &disabled,
        &mut scratch,
        &mut policy,
    );
    ARMED.store(false, Ordering::SeqCst);
    let allocs_per_episode = ALLOCS.load(Ordering::SeqCst) as f64 / MEASURED_EPISODES as f64;
    assert_eq!(
        benefit.to_bits(),
        benefit2.to_bits(),
        "same seeds must reproduce the same total benefit"
    );

    // Pass 3: per-select latency via the simulator's own histogram.
    let enabled = Recorder::enabled();
    run_pass(
        &instance,
        MEASURED_EPISODES,
        &enabled,
        &mut scratch,
        &mut policy,
    );
    let snap = enabled.snapshot("bench_engine").expect("enabled recorder");
    let ns_per_select = snap
        .histogram(sim_metrics::SELECT_NS)
        .map(|h| h.mean)
        .unwrap_or(f64::NAN);

    Measurement {
        eps_per_sec,
        total_benefit: benefit,
        ns_per_select,
        allocs_per_episode,
    }
}

fn render_json(m: &Measurement) -> String {
    format!(
        "{{\n  \"bench\": \"engine\",\n  \"fixture\": \"twitter_0.02/abm_balanced\",\n  \
         \"budget\": {BUDGET},\n  \"episodes\": {MEASURED_EPISODES},\n  \
         \"eps_per_sec\": {:.2},\n  \"ns_per_select\": {:.1},\n  \
         \"allocs_per_episode\": {:.3},\n  \"total_benefit\": {:.1},\n  \
         \"baseline_eps_per_sec\": {HEAD_BASELINE_EPS:.1},\n  \"speedup_vs_head\": {:.2}\n}}\n",
        m.eps_per_sec,
        m.ns_per_select,
        m.allocs_per_episode,
        m.total_benefit,
        m.eps_per_sec / HEAD_BASELINE_EPS,
    )
}

/// Appends one dated line to the trajectory log kept next to the
/// committed snapshot. Best-effort: a read-only checkout must not turn
/// a passing bench check into a failure.
///
/// Entries are stamped with the trajectory schema version
/// ([`TRAJECTORY_SCHEMA`]) and the producing git revision, so
/// cross-run analytics (`bench_report`, the `--watchdog` throughput
/// floor) can tell comparable entries from foreign ones and trace any
/// number back to its commit.
fn append_trajectory(out_path: &str, m: &Measurement, status: &str) {
    let path = Path::new(out_path)
        .parent()
        .unwrap_or_else(|| Path::new(""))
        .join("BENCH_trajectory.jsonl");
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let line = format!(
        "{{\"schema\":{TRAJECTORY_SCHEMA},\"git\":\"{}\",\"date\":\"{}\",\
         \"bench\":\"engine\",\"fixture\":\"twitter_0.02/abm_balanced\",\
         \"cores\":{},\"workers\":1,\
         \"budget\":{BUDGET},\"episodes\":{MEASURED_EPISODES},\"eps_per_sec\":{:.2},\
         \"ns_per_select\":{:.1},\"allocs_per_episode\":{:.3},\"total_benefit\":{:.1},\
         \"speedup_vs_head\":{:.2},\"status\":\"{status}\"}}\n",
        git_revision(),
        utc_date(secs),
        host_cores(),
        m.eps_per_sec,
        m.ns_per_select,
        m.allocs_per_episode,
        m.total_benefit,
        m.eps_per_sec / HEAD_BASELINE_EPS,
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    match appended {
        Ok(()) => println!("appended {status} entry to {}", path.display()),
        Err(e) => eprintln!("bench-check: cannot append to {}: {e}", path.display()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let mut out_path = "BENCH_engine.json".to_string();
    let mut max_regress = 0.25f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out PATH").clone(),
            "--max-regress" => {
                max_regress = it
                    .next()
                    .expect("--max-regress FRACTION")
                    .parse()
                    .expect("numeric --max-regress")
            }
            _ => {}
        }
    }

    let m = measure();
    println!(
        "engine bench: {:.2} eps/s ({MEASURED_EPISODES} episodes, k={BUDGET}), \
         {:.1} ns/select, {:.3} allocs/episode, total_benefit {:.1}, \
         {:.2}x vs pre-engine baseline",
        m.eps_per_sec,
        m.ns_per_select,
        m.allocs_per_episode,
        m.total_benefit,
        m.eps_per_sec / HEAD_BASELINE_EPS,
    );

    if check {
        let committed = std::fs::read_to_string(&out_path).unwrap_or_else(|e| {
            eprintln!("bench-check: cannot read {out_path}: {e}");
            std::process::exit(1);
        });
        let committed_eps = json_field(&committed, "eps_per_sec").unwrap_or_else(|| {
            eprintln!("bench-check: no eps_per_sec in {out_path}");
            std::process::exit(1);
        });
        let mut failed = false;
        if let Some(b) = json_field(&committed, "total_benefit") {
            if (b - m.total_benefit).abs() > 0.5 {
                eprintln!(
                    "bench-check: FAIL — total_benefit {:.1} != committed {b:.1} \
                     (engine output changed)",
                    m.total_benefit
                );
                failed = true;
            }
        }
        if m.allocs_per_episode > 0.0 {
            eprintln!(
                "bench-check: FAIL — {:.3} allocs/episode in steady state (expected 0)",
                m.allocs_per_episode
            );
            failed = true;
        }
        let floor = committed_eps * (1.0 - max_regress);
        if m.eps_per_sec < floor {
            eprintln!(
                "bench-check: FAIL — {:.2} eps/s is below {floor:.2} \
                 (committed {committed_eps:.2} minus {:.0}% tolerance)",
                m.eps_per_sec,
                max_regress * 100.0
            );
            failed = true;
        }
        append_trajectory(&out_path, &m, if failed { "fail" } else { "ok" });
        if failed {
            std::process::exit(1);
        }
        println!(
            "bench-check: OK ({:.2} eps/s vs committed {committed_eps:.2}, \
             tolerance {:.0}%)",
            m.eps_per_sec,
            max_regress * 100.0
        );
    } else {
        std::fs::write(&out_path, render_json(&m)).unwrap_or_else(|e| {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {out_path}");
    }
}
