//! Scale-tier benchmark: pack → reload → batched episodes at 10⁵–10⁷
//! nodes.
//!
//! For each requested node count the sweep:
//!
//! 1. **builds** a BA graph from scratch (timed — the cost the `.accg`
//!    store amortizes away),
//! 2. **packs** it to a versioned, checksummed `.accg` file
//!    ([`osn_graph::store`]),
//! 3. **reloads** it through the steady-state trusted loader (timed;
//!    `amortization` = build time over load time),
//! 4. applies the paper protocol and runs ABM episodes through the SoA
//!    batched sampler ([`BatchScratch`]), reporting `eps_per_sec`,
//!    `ns_per_select` (from a separate instrumented pass, as in
//!    `bench_engine`), steady-state `allocs_per_episode`, and the
//!    process peak RSS.
//!
//! Each tier appends one schema-stamped line to `BENCH_trajectory.jsonl`
//! (next to `--out`), carrying the host context (`cores`, `workers`) so
//! entries from differently-sized machines are never read as
//! like-for-like. A snapshot of all tiers lands in `--out`
//! (`BENCH_scale.json`).
//!
//! ```text
//! scale_sweep [--nodes 100000,1000000] [--degree 8] [--budget 50]
//!             [--episodes 4] [--lanes 4] [--seed 11] [--workers 1]
//!             [--dir target/scale] [--out BENCH_scale.json]
//!             [--telemetry FILE] [--metrics-addr ADDR]
//!             [--assert-zero-alloc]
//! ```
//!
//! `--assert-zero-alloc` (the CI gate) exits non-zero if any
//! steady-state episode touches the heap. `--telemetry FILE` appends a
//! `store.*` metric snapshot (per-tier pack/load timing histograms,
//! node/edge counters) as JSONL; `--metrics-addr ADDR` exposes the same
//! metrics for a Prometheus scrape while the sweep runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use accu_bench::{git_revision, host_cores, peak_rss_mib, utc_date};
use accu_core::policy::{Abm, AbmWeights};
use accu_core::{
    run_attack_episode, sim_metrics, AccuInstance, BatchScratch, FaultPlan, RetryPolicy,
};
use accu_datasets::{apply_protocol, ProtocolConfig};
use accu_telemetry::obs::{MetricsServer, Observer, TRAJECTORY_SCHEMA};
use accu_telemetry::{JsonlSink, Recorder};
use osn_graph::{generators, store, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pass-through allocator that counts allocations while armed.
struct CountingAlloc;

static ALLOCS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static ARMED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

use std::sync::atomic::Ordering;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

struct SweepConfig {
    nodes: Vec<usize>,
    degree: usize,
    budget: usize,
    episodes: usize,
    lanes: usize,
    seed: u64,
    workers: usize,
    dir: PathBuf,
    out: String,
    telemetry: Option<String>,
    metrics_addr: Option<String>,
    assert_zero_alloc: bool,
}

struct TierResult {
    nodes: usize,
    edges: usize,
    build_ms: f64,
    pack_ms: f64,
    load_ms: f64,
    amortization: f64,
    eps_per_sec: f64,
    ns_per_select: f64,
    allocs_per_episode: f64,
    total_benefit: f64,
    peak_rss_mib: f64,
}

fn fail(msg: &str) -> ! {
    eprintln!("scale_sweep: {msg}");
    std::process::exit(2);
}

fn parse_flags() -> SweepConfig {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SweepConfig {
        nodes: vec![100_000, 1_000_000],
        degree: 8,
        budget: 50,
        episodes: 4,
        lanes: 4,
        seed: 11,
        workers: 1,
        dir: PathBuf::from("target").join("scale"),
        out: "BENCH_scale.json".to_string(),
        telemetry: None,
        metrics_addr: None,
        assert_zero_alloc: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                .clone()
        };
        match a.as_str() {
            "--nodes" => {
                cfg.nodes = take("--nodes")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| fail(&format!("bad --nodes element {s:?}")))
                    })
                    .collect();
                if cfg.nodes.is_empty() {
                    fail("--nodes list is empty");
                }
            }
            "--degree" => {
                cfg.degree = take("--degree")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --degree"))
            }
            "--budget" => {
                cfg.budget = take("--budget")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --budget"))
            }
            "--episodes" => {
                cfg.episodes = take("--episodes")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --episodes"))
            }
            "--lanes" => {
                cfg.lanes = take("--lanes")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --lanes"))
            }
            "--seed" => {
                cfg.seed = take("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --seed"))
            }
            "--workers" => {
                cfg.workers = take("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --workers"))
            }
            "--dir" => cfg.dir = PathBuf::from(take("--dir")),
            "--out" => cfg.out = take("--out"),
            "--telemetry" => cfg.telemetry = Some(take("--telemetry")),
            "--metrics-addr" => cfg.metrics_addr = Some(take("--metrics-addr")),
            "--assert-zero-alloc" => cfg.assert_zero_alloc = true,
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if cfg.lanes == 0 || cfg.episodes == 0 || cfg.budget == 0 {
        fail("--lanes, --episodes, and --budget must be positive");
    }
    cfg
}

/// Builds the tier's instance from a loaded graph: paper protocol,
/// deterministic per-tier stream.
fn tier_instance(graph: Graph, seed: u64) -> AccuInstance {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_1234_8765);
    apply_protocol(graph, &ProtocolConfig::default(), &mut rng)
        .unwrap_or_else(|e| fail(&format!("protocol failed: {e}")))
}

/// One pass over `seeds` as batched episodes: `lanes`-wide SoA
/// sampling blocks, the outcome benefits summed as the determinism
/// witness. Seeds are pre-drawn by the caller so the armed
/// (allocation-counting) pass touches no heap.
fn run_batched_pass(
    instance: &AccuInstance,
    cfg: &SweepConfig,
    seeds: &[u64],
    batch: &mut BatchScratch,
    policy: &mut Abm,
    recorder: &Recorder,
) -> (f64, std::time::Duration) {
    let plan = FaultPlan::none();
    let retry = RetryPolicy::give_up();
    let mut total = 0.0f64;
    let start = Instant::now();
    for block in seeds.chunks(cfg.lanes) {
        batch.sample_lanes(instance, block);
        for lane in 0..block.len() {
            total += run_attack_episode(
                instance,
                policy,
                cfg.budget,
                &plan,
                &retry,
                recorder,
                batch.lane(lane),
            )
            .total_benefit;
        }
    }
    (total, start.elapsed())
}

fn run_tier(cfg: &SweepConfig, nodes: usize, store_rec: &Recorder) -> TierResult {
    println!("--- tier: {nodes} nodes (BA, m = {}) ---", cfg.degree);

    // Stage 1: build from scratch — the cost the store amortizes.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let t0 = Instant::now();
    let graph = generators::barabasi_albert(nodes, cfg.degree, &mut rng)
        .unwrap_or_else(|e| fail(&format!("generation failed: {e}")));
    let build = t0.elapsed();

    // Stage 2: pack.
    std::fs::create_dir_all(&cfg.dir)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", cfg.dir.display())));
    let accg = cfg.dir.join(format!("ba_{nodes}_d{}.accg", cfg.degree));
    let t1 = Instant::now();
    store::write_graph_file(&accg, &graph)
        .unwrap_or_else(|e| fail(&format!("cannot pack {}: {e}", accg.display())));
    let pack = t1.elapsed();

    // Stage 3: steady-state reload (checksummed trusted path — what the
    // runner and repeated sweeps pay after the first pack).
    drop(graph);
    let t2 = Instant::now();
    let loaded = store::read_graph_file_trusted(&accg)
        .unwrap_or_else(|e| fail(&format!("reload failed: {e}")));
    let load = t2.elapsed();
    let edges = loaded.edge_count();
    store_rec.counter("store.packs").incr();
    store_rec.counter("store.loads").incr();
    store_rec.counter("store.nodes").add(nodes as u64);
    store_rec.counter("store.edges").add(edges as u64);
    store_rec
        .histogram("store.build_ns")
        .record(build.as_nanos() as u64);
    store_rec
        .histogram("store.pack_ns")
        .record(pack.as_nanos() as u64);
    store_rec
        .histogram("store.load_ns")
        .record(load.as_nanos() as u64);
    println!(
        "  build {:.1} ms · pack {:.1} ms · reload {:.1} ms · {:.1}x amortization",
        build.as_secs_f64() * 1e3,
        pack.as_secs_f64() * 1e3,
        load.as_secs_f64() * 1e3,
        build.as_secs_f64() / load.as_secs_f64().max(1e-9),
    );

    // Stage 4: batched episodes.
    let instance = tier_instance(loaded, cfg.seed);
    let mut batch = BatchScratch::new(cfg.lanes);
    let mut policy = Abm::new(AbmWeights::balanced());
    let disabled = Recorder::disabled();
    let seeds: Vec<u64> = {
        use rand::Rng;
        let mut seed_rng = StdRng::seed_from_u64(cfg.seed);
        (0..cfg.episodes).map(|_| seed_rng.gen()).collect()
    };

    // Warmup: size every lane and the policy's per-instance caches.
    run_batched_pass(&instance, cfg, &seeds, &mut batch, &mut policy, &disabled);

    // Throughput pass, with the counting allocator armed — warmed lanes
    // must run allocation-free.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let (benefit, elapsed) =
        run_batched_pass(&instance, cfg, &seeds, &mut batch, &mut policy, &disabled);
    ARMED.store(false, Ordering::SeqCst);
    let allocs_per_episode = ALLOCS.load(Ordering::SeqCst) as f64 / cfg.episodes as f64;
    let eps_per_sec = cfg.episodes as f64 / elapsed.as_secs_f64();

    // Instrumented pass for select latency (identical seeds; a live
    // recorder adds clock reads, so it gets its own pass).
    let enabled = Recorder::enabled();
    let (benefit2, _) = run_batched_pass(&instance, cfg, &seeds, &mut batch, &mut policy, &enabled);
    assert_eq!(
        benefit.to_bits(),
        benefit2.to_bits(),
        "same seeds must reproduce the same total benefit"
    );
    let snap = enabled.snapshot("scale_sweep").expect("enabled recorder");
    let ns_per_select = snap
        .histogram(sim_metrics::SELECT_NS)
        .map(|h| h.mean)
        .unwrap_or(f64::NAN);

    let rss = peak_rss_mib().unwrap_or(f64::NAN);
    println!(
        "  {eps_per_sec:.3} eps/s ({} episodes, k = {}, {} lanes) · {ns_per_select:.1} ns/select \
         · {allocs_per_episode:.3} allocs/episode · peak RSS {rss:.0} MiB",
        cfg.episodes, cfg.budget, cfg.lanes,
    );

    TierResult {
        nodes,
        edges,
        build_ms: build.as_secs_f64() * 1e3,
        pack_ms: pack.as_secs_f64() * 1e3,
        load_ms: load.as_secs_f64() * 1e3,
        amortization: build.as_secs_f64() / load.as_secs_f64().max(1e-9),
        eps_per_sec,
        ns_per_select,
        allocs_per_episode,
        total_benefit: benefit,
        peak_rss_mib: rss,
    }
}

fn tier_json(cfg: &SweepConfig, t: &TierResult, indent: &str) -> String {
    format!(
        "{indent}{{\n\
         {indent}  \"fixture\": \"ba_{}_d{}/abm_balanced\",\n\
         {indent}  \"nodes\": {},\n\
         {indent}  \"edges\": {},\n\
         {indent}  \"budget\": {},\n\
         {indent}  \"episodes\": {},\n\
         {indent}  \"lanes\": {},\n\
         {indent}  \"build_ms\": {:.1},\n\
         {indent}  \"pack_ms\": {:.1},\n\
         {indent}  \"load_ms\": {:.1},\n\
         {indent}  \"amortization\": {:.2},\n\
         {indent}  \"eps_per_sec\": {:.3},\n\
         {indent}  \"ns_per_select\": {:.1},\n\
         {indent}  \"allocs_per_episode\": {:.3},\n\
         {indent}  \"total_benefit\": {:.1},\n\
         {indent}  \"peak_rss_mib\": {:.1}\n\
         {indent}}}",
        t.nodes,
        cfg.degree,
        t.nodes,
        t.edges,
        cfg.budget,
        cfg.episodes,
        cfg.lanes,
        t.build_ms,
        t.pack_ms,
        t.load_ms,
        t.amortization,
        t.eps_per_sec,
        t.ns_per_select,
        t.allocs_per_episode,
        t.total_benefit,
        t.peak_rss_mib,
    )
}

/// Appends one schema-stamped line per tier to the trajectory log next
/// to `--out`, carrying the host context. Best-effort, like
/// `bench_engine`: a read-only checkout must not fail the sweep.
fn append_trajectory(cfg: &SweepConfig, t: &TierResult, status: &str) {
    let path = Path::new(&cfg.out)
        .parent()
        .unwrap_or_else(|| Path::new(""))
        .join("BENCH_trajectory.jsonl");
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let line = format!(
        "{{\"schema\":{TRAJECTORY_SCHEMA},\"git\":\"{}\",\"date\":\"{}\",\
         \"bench\":\"scale\",\"fixture\":\"ba_{}_d{}/abm_balanced\",\
         \"cores\":{},\"workers\":{},\"nodes\":{},\"edges\":{},\
         \"budget\":{},\"episodes\":{},\"lanes\":{},\
         \"build_ms\":{:.1},\"pack_ms\":{:.1},\"load_ms\":{:.1},\"amortization\":{:.2},\
         \"eps_per_sec\":{:.3},\"ns_per_select\":{:.1},\"allocs_per_episode\":{:.3},\
         \"total_benefit\":{:.1},\"peak_rss_mib\":{:.1},\"status\":\"{status}\"}}\n",
        git_revision(),
        utc_date(secs),
        t.nodes,
        cfg.degree,
        host_cores(),
        cfg.workers,
        t.nodes,
        t.edges,
        cfg.budget,
        cfg.episodes,
        cfg.lanes,
        t.build_ms,
        t.pack_ms,
        t.load_ms,
        t.amortization,
        t.eps_per_sec,
        t.ns_per_select,
        t.allocs_per_episode,
        t.total_benefit,
        t.peak_rss_mib,
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    match appended {
        Ok(()) => println!("  appended {status} entry to {}", path.display()),
        Err(e) => eprintln!("scale_sweep: cannot append to {}: {e}", path.display()),
    }
}

fn main() {
    let cfg = parse_flags();
    println!(
        "scale sweep: tiers {:?}, BA m = {}, k = {}, {} episodes x {} lanes, {} cores",
        cfg.nodes,
        cfg.degree,
        cfg.budget,
        cfg.episodes,
        cfg.lanes,
        host_cores(),
    );
    // Store-facing telemetry is opt-in; with neither flag the recorder
    // is a no-op and the sweep's hot paths are untouched.
    let store_rec = if cfg.telemetry.is_some() || cfg.metrics_addr.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let _metrics = cfg.metrics_addr.as_ref().map(|addr| {
        match MetricsServer::bind(addr, store_rec.clone(), "scale_sweep", Observer::disabled()) {
            Ok(server) => {
                eprintln!("scale_sweep metrics on http://{}/metrics", server.addr());
                server
            }
            Err(e) => fail(&format!("metrics server: {e}")),
        }
    });
    let mut tiers = Vec::new();
    let mut alloc_violation = false;
    for &nodes in &cfg.nodes {
        let tier = run_tier(&cfg, nodes, &store_rec);
        let leaked = tier.allocs_per_episode > 0.0;
        alloc_violation |= leaked;
        append_trajectory(
            &cfg,
            &tier,
            if leaked && cfg.assert_zero_alloc {
                "fail"
            } else {
                "ok"
            },
        );
        tiers.push(tier);
    }

    let body: Vec<String> = tiers.iter().map(|t| tier_json(&cfg, t, "    ")).collect();
    let snapshot = format!(
        "{{\n  \"bench\": \"scale\",\n  \"cores\": {},\n  \"workers\": {},\n  \
         \"tiers\": [\n{}\n  ]\n}}\n",
        host_cores(),
        cfg.workers,
        body.join(",\n"),
    );
    match std::fs::write(&cfg.out, &snapshot) {
        Ok(()) => println!("wrote {}", cfg.out),
        Err(e) => eprintln!("scale_sweep: cannot write {}: {e}", cfg.out),
    }

    if let Some(path) = &cfg.telemetry {
        let result = JsonlSink::create(path).and_then(|mut sink| {
            if let Some(snap) = store_rec.snapshot("scale_sweep/store") {
                sink.write_snapshot(&snap)?;
            }
            sink.flush()
        });
        match result {
            Ok(()) => println!("wrote telemetry {path}"),
            Err(e) => fail(&format!("cannot write telemetry {path}: {e}")),
        }
    }

    if cfg.assert_zero_alloc && alloc_violation {
        eprintln!("scale_sweep: FAIL — a steady-state episode allocated (expected 0)");
        std::process::exit(1);
    }
}
