//! Shared fixtures and provenance helpers for the ACCU benchmarks.

#![forbid(unsafe_code)]

use accu_core::AccuInstance;
use accu_datasets::{apply_protocol, DatasetSpec, ProtocolConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reproducible benchmark instance: a scaled dataset with the paper's
/// protocol applied.
pub fn bench_instance(spec: DatasetSpec, scale: f64, cautious: usize, seed: u64) -> AccuInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = spec.scaled(scale).generate(&mut rng).expect("generation");
    apply_protocol(
        graph,
        &ProtocolConfig {
            cautious_count: cautious,
            ..ProtocolConfig::default()
        },
        &mut rng,
    )
    .expect("protocol")
}

/// The default benchmark network: a ~1.6k-node Twitter stand-in.
pub fn default_instance() -> AccuInstance {
    bench_instance(DatasetSpec::twitter(), 0.02, 20, 42)
}

/// Renders a unix timestamp as a UTC `YYYY-MM-DD` date (civil-from-days
/// conversion — no time-zone database, no dependency).
pub fn utc_date(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}")
}

/// The git revision of the working tree, for trajectory provenance.
/// Best-effort: builds from a tarball (no repo, no git binary) stamp
/// `"unknown"`.
pub fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Pulls a numeric field out of flat committed bench JSON without a
/// parser dependency.
pub fn json_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Logical cores visible to this process — the host-context stamp the
/// trajectory log carries so entries from differently-sized machines
/// are never compared as like-for-like.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Peak resident set size of this process in mebibytes, read from
/// `/proc/self/status` (`VmHWM`). `None` off Linux or when the field is
/// missing; benches report it best-effort.
pub fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let inst = default_instance();
        assert!(inst.node_count() > 1_000);
        assert_eq!(inst.cautious_users().len(), 20);
    }

    #[test]
    fn utc_date_renders_known_epochs() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(951_868_800), "2000-03-01");
        assert_eq!(utc_date(1_754_006_400), "2025-08-01");
    }

    #[test]
    fn json_field_reads_flat_numbers() {
        let text = "{\"eps_per_sec\": 61.10,\n\"allocs\":0.000,\"neg\":-2.5}";
        assert_eq!(json_field(text, "eps_per_sec"), Some(61.10));
        assert_eq!(json_field(text, "allocs"), Some(0.0));
        assert_eq!(json_field(text, "neg"), Some(-2.5));
        assert_eq!(json_field(text, "missing"), None);
    }

    #[test]
    fn host_probes_return_sane_values() {
        assert!(host_cores() >= 1);
        if let Some(mib) = peak_rss_mib() {
            assert!(mib > 1.0, "peak RSS {mib} MiB is implausibly small");
        }
    }
}
