//! Shared fixtures for the ACCU benchmarks.

#![forbid(unsafe_code)]

use accu_core::AccuInstance;
use accu_datasets::{apply_protocol, DatasetSpec, ProtocolConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reproducible benchmark instance: a scaled dataset with the paper's
/// protocol applied.
pub fn bench_instance(spec: DatasetSpec, scale: f64, cautious: usize, seed: u64) -> AccuInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = spec.scaled(scale).generate(&mut rng).expect("generation");
    apply_protocol(
        graph,
        &ProtocolConfig {
            cautious_count: cautious,
            ..ProtocolConfig::default()
        },
        &mut rng,
    )
    .expect("protocol")
}

/// The default benchmark network: a ~1.6k-node Twitter stand-in.
pub fn default_instance() -> AccuInstance {
    bench_instance(DatasetSpec::twitter(), 0.02, 20, 42)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let inst = default_instance();
        assert!(inst.node_count() > 1_000);
        assert_eq!(inst.cautious_users().len(), 20);
    }
}
