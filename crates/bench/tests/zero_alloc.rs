//! Steady-state episodes through the scratch engine must not allocate.
//!
//! The counting allocator lives here rather than in `accu-bench`'s
//! library (which is `#![forbid(unsafe_code)]`); an integration test is
//! its own crate, so the `GlobalAlloc` impl stays quarantined to the
//! test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use accu_core::policy::{Abm, AbmWeights};
use accu_core::{
    run_attack_episode, run_attack_episode_traced, AccuInstanceBuilder, EpisodeScratch, FaultPlan,
    RetryPolicy, UserClass,
};
use accu_telemetry::{Recorder, Tracer};
use osn_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// The armed window is process-global, so tests that arm it must not
/// overlap — a parallel test's allocations would be counted too.
static ARM_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn steady_state_episodes_allocate_nothing() {
    let _guard = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(13);
    let g = osn_graph::generators::barabasi_albert(120, 4, &mut rng).unwrap();
    let mut b = AccuInstanceBuilder::new(g);
    for i in 0..120u32 {
        if i % 9 == 2 {
            b = b.user_class(NodeId::new(i), UserClass::cautious(2));
        }
    }
    let instance = b.build().unwrap();

    let mut scratch = EpisodeScratch::new();
    let mut policy = Abm::new(AbmWeights::balanced());
    let plan = FaultPlan::none();
    let retry = RetryPolicy::give_up();
    let recorder = Recorder::disabled();
    let k = 30;

    let episode = |scratch: &mut EpisodeScratch, policy: &mut Abm, seed: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        scratch.prepare(&instance);
        scratch.realization.sample_into(&instance, &mut rng);
        run_attack_episode(&instance, policy, k, &plan, &retry, &recorder, scratch).total_benefit
    };

    // Warm pass: grow every buffer and per-instance cache to final size.
    let mut seed_rng = StdRng::seed_from_u64(77);
    let warm_seeds: Vec<u64> = (0..20).map(|_| seed_rng.gen()).collect();
    let mut warm_total = 0.0;
    for &s in &warm_seeds {
        warm_total += episode(&mut scratch, &mut policy, s);
    }

    // Measured pass: identical seeds, so buffer high-water marks cannot
    // move — any allocation here is an engine regression.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let mut measured_total = 0.0;
    for &s in &warm_seeds {
        measured_total += episode(&mut scratch, &mut policy, s);
    }
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        warm_total.to_bits(),
        measured_total.to_bits(),
        "identical seeds must reproduce identical totals"
    );
    assert_eq!(
        allocs, 0,
        "steady-state scratch episodes must not touch the heap"
    );
}

/// The trace layer's disabled path is part of the zero-alloc contract:
/// episodes running through `run_attack_episode_traced` with a live
/// tracer whose sampling gate is **closed** must behave exactly like
/// untraced episodes — no events, no heap traffic, identical totals.
/// The hot-path cost of tracing-off is one relaxed atomic load.
#[test]
fn gated_off_traced_episodes_allocate_nothing() {
    let _guard = ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(29);
    let g = osn_graph::generators::barabasi_albert(120, 4, &mut rng).unwrap();
    let mut b = AccuInstanceBuilder::new(g);
    for i in 0..120u32 {
        if i % 9 == 2 {
            b = b.user_class(NodeId::new(i), UserClass::cautious(2));
        }
    }
    let instance = b.build().unwrap();

    let mut scratch = EpisodeScratch::new();
    let mut policy = Abm::new(AbmWeights::balanced());
    let plan = FaultPlan::none();
    let retry = RetryPolicy::give_up();
    let recorder = Recorder::disabled();
    let k = 30;

    // A real, enabled tracer — but the gate is closed, as it is for
    // every unsampled episode of a `--trace :sample=N` run.
    let tracer = Tracer::enabled();
    let track = tracer.track("worker-0");
    policy.attach_tracer(&track);
    track.set_active(false);

    let episode = |scratch: &mut EpisodeScratch, policy: &mut Abm, seed: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        scratch.prepare(&instance);
        scratch.realization.sample_into(&instance, &mut rng);
        run_attack_episode_traced(
            &instance, policy, k, &plan, &retry, &recorder, &track, scratch,
        )
        .total_benefit
    };

    let mut seed_rng = StdRng::seed_from_u64(91);
    let warm_seeds: Vec<u64> = (0..20).map(|_| seed_rng.gen()).collect();
    let mut warm_total = 0.0;
    for &s in &warm_seeds {
        warm_total += episode(&mut scratch, &mut policy, s);
    }

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let mut measured_total = 0.0;
    for &s in &warm_seeds {
        measured_total += episode(&mut scratch, &mut policy, s);
    }
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        warm_total.to_bits(),
        measured_total.to_bits(),
        "a gated-off tracer must not perturb episode results"
    );
    assert_eq!(
        allocs, 0,
        "the tracing-disabled hot path must not touch the heap"
    );
    assert_eq!(
        tracer.event_count(),
        0,
        "a closed gate must suppress every event"
    );
}
