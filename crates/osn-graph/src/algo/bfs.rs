//! Breadth-first search.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Distance marker for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Computes hop distances from `source` to every node.
///
/// Unreachable nodes get [`UNREACHABLE`] (`u32::MAX`).
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::bfs_distances, GraphBuilder, NodeId};
///
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2)])?;
/// let d = bfs_distances(&g, NodeId::new(0));
/// assert_eq!(&d[..3], &[0, 1, 2]);
/// assert_eq!(d[3], u32::MAX); // node 3 is isolated
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for &w in g.neighbors(v) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Returns the nodes reachable from `source` in BFS visitation order
/// (including `source` itself, first).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_order(g: &Graph, source: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in g.neighbors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn distances_on_a_path() {
        let g = GraphBuilder::from_edges(5, [(0u32, 1u32), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(bfs_distances(&g, NodeId::new(0)), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, NodeId::new(2)), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_marked() {
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32)]).unwrap();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn order_visits_levels_in_sequence() {
        // Star: center first, then all leaves.
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3)]).unwrap();
        let order = bfs_order(&g, NodeId::new(0));
        assert_eq!(order[0], NodeId::new(0));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn order_excludes_unreachable() {
        let g = GraphBuilder::from_edges(5, [(0u32, 1u32), (3, 4)]).unwrap();
        let order = bfs_order(&g, NodeId::new(3));
        assert_eq!(order, vec![NodeId::new(3), NodeId::new(4)]);
    }
}
