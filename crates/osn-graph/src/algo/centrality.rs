//! Centrality measures beyond PageRank.
//!
//! Used as additional target-selection baselines for the ACCU attacker
//! and for the defender-side analysis of which users most enable
//! cautious-user compromise.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Betweenness centrality by Brandes' algorithm — `O(n·m)` for
/// unweighted graphs.
///
/// Returns the unnormalized scores for the undirected graph (each pair
/// counted once, i.e. the directed accumulation divided by 2).
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::betweenness_centrality, GraphBuilder};
///
/// // Path 0-1-2: the middle vertex lies on the single (0,2) shortest path.
/// let g = GraphBuilder::from_edges(3, [(0u32, 1u32), (1, 2)])?;
/// let b = betweenness_centrality(&g);
/// assert_eq!(b, vec![0.0, 1.0, 0.0]);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn betweenness_centrality(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut centrality = vec![0.0f64; n];
    // Reusable per-source buffers.
    let mut stack: Vec<NodeId> = Vec::with_capacity(n);
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    for s in g.nodes() {
        stack.clear();
        for p in preds.iter_mut() {
            p.clear();
        }
        sigma.fill(0.0);
        dist.fill(-1);
        delta.fill(0.0);
        sigma[s.index()] = 1.0;
        dist[s.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in g.neighbors(v) {
                if dist[w.index()] < 0 {
                    dist[w.index()] = dist[v.index()] + 1;
                    queue.push_back(w);
                }
                if dist[w.index()] == dist[v.index()] + 1 {
                    sigma[w.index()] += sigma[v.index()];
                    preds[w.index()].push(v);
                }
            }
        }
        while let Some(w) = stack.pop() {
            for &v in &preds[w.index()] {
                delta[v.index()] += sigma[v.index()] / sigma[w.index()] * (1.0 + delta[w.index()]);
            }
            if w != s {
                centrality[w.index()] += delta[w.index()];
            }
        }
    }
    // Each undirected pair was counted from both endpoints.
    for c in centrality.iter_mut() {
        *c /= 2.0;
    }
    centrality
}

/// Closeness centrality: `(reachable − 1) / Σ distances`, scaled by the
/// reachable fraction (the Wasserman–Faust correction for disconnected
/// graphs). Isolated nodes score 0.
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::closeness_centrality, GraphBuilder};
///
/// let g = GraphBuilder::from_edges(3, [(0u32, 1u32), (1, 2)])?;
/// let c = closeness_centrality(&g);
/// assert!(c[1] > c[0]); // the center is closest to everyone
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn closeness_centrality(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut scores = vec![0.0f64; n];
    for v in g.nodes() {
        let dist = super::bfs_distances(g, v);
        let mut sum = 0u64;
        let mut reachable = 0u64;
        for &d in &dist {
            if d != u32::MAX && d > 0 {
                sum += d as u64;
                reachable += 1;
            }
        }
        if sum > 0 {
            let r = reachable as f64;
            scores[v.index()] = (r / sum as f64) * (r / (n.saturating_sub(1)) as f64);
        }
    }
    scores
}

/// Eigenvector centrality by power iteration (L2-normalized).
///
/// Returns a vector of non-negative scores with unit L2 norm, or all
/// zeros for an empty/edgeless graph.
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::eigenvector_centrality, GraphBuilder};
///
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3)])?;
/// let e = eigenvector_centrality(&g, 100, 1e-9);
/// assert!(e[0] > e[1]); // the hub dominates
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn eigenvector_centrality(g: &Graph, max_iterations: usize, tolerance: f64) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 || g.edge_count() == 0 {
        return vec![0.0; n];
    }
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iterations {
        next.fill(0.0);
        for v in g.nodes() {
            let xv = x[v.index()];
            // Iterate with A + I: same eigenvectors, but the dominant
            // eigenvalue is strictly largest even on bipartite graphs
            // (plain power iteration oscillates on, e.g., stars).
            next[v.index()] += xv;
            for &w in g.neighbors(v) {
                next[w.index()] += xv;
            }
        }
        let norm = next.iter().map(|a| a * a).sum::<f64>().sqrt();
        if norm == 0.0 {
            return vec![0.0; n];
        }
        for a in next.iter_mut() {
            *a /= norm;
        }
        let delta: f64 = x.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut x, &mut next);
        if delta < tolerance {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn star5() -> Graph {
        GraphBuilder::from_edges(5, [(0u32, 1u32), (0, 2), (0, 3), (0, 4)]).unwrap()
    }

    #[test]
    fn betweenness_of_star_concentrates_on_hub() {
        let b = betweenness_centrality(&star5());
        // The hub lies on all C(4,2) = 6 leaf pairs' shortest paths.
        assert_eq!(b[0], 6.0);
        for score in &b[1..5] {
            assert_eq!(*score, 0.0);
        }
    }

    #[test]
    fn betweenness_of_cycle_is_uniform() {
        let g =
            GraphBuilder::from_edges(5, [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let b = betweenness_centrality(&g);
        for &x in &b {
            assert!((x - b[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn betweenness_splits_across_parallel_paths() {
        // Two disjoint 2-hop paths between 0 and 3: each midpoint gets
        // half of the (0,3) pair.
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 3), (0, 2), (2, 3)]).unwrap();
        let b = betweenness_centrality(&g);
        assert!((b[1] - 0.5).abs() < 1e-12, "b = {b:?}");
        assert!((b[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn closeness_handles_disconnection() {
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32)]).unwrap();
        let c = closeness_centrality(&g);
        assert!(c[0] > 0.0);
        assert_eq!(c[2], 0.0);
        // The correction penalizes small components: in a 4-node graph a
        // node reaching only 1 neighbor scores 1 * (1/3).
        assert!((c[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn eigenvector_is_normalized_and_hub_heavy() {
        let e = eigenvector_centrality(&star5(), 200, 1e-12);
        let norm: f64 = e.iter().map(|a| a * a).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-9);
        assert!(e[0] > e[1]);
        // Star eigenvector: hub = 1/√2, leaves = 1/(2·√... ) hub² = 0.5.
        assert!((e[0] * e[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn eigenvector_of_edgeless_graph_is_zero() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(eigenvector_centrality(&g, 10, 1e-9), vec![0.0; 3]);
    }

    #[test]
    fn empty_graph_everywhere() {
        let g = GraphBuilder::new(0).build();
        assert!(betweenness_centrality(&g).is_empty());
        assert!(closeness_centrality(&g).is_empty());
        assert!(eigenvector_centrality(&g, 10, 1e-9).is_empty());
    }
}
