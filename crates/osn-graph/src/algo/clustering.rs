//! Clustering coefficients and triangle counting.

use crate::{Graph, NodeId};

use super::mutual::merge_count;

/// Counts the triangles of `g`.
///
/// Iterates edges and merges the endpoints' sorted adjacency rows; each
/// triangle is seen once per edge, so the merged total is divided by 3.
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::triangle_count, GraphBuilder};
///
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 0), (2, 3)])?;
/// assert_eq!(triangle_count(&g), 1);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn triangle_count(g: &Graph) -> usize {
    let mut total = 0usize;
    for e in g.edges() {
        total += merge_count(g.neighbors(e.lo()), g.neighbors(e.hi()));
    }
    total / 3
}

/// Local clustering coefficient of `v`: the fraction of pairs of
/// neighbors that are themselves adjacent. Nodes with degree < 2 have
/// coefficient 0.
///
/// # Panics
///
/// Panics if `v` is out of range.
pub fn local_clustering_coefficient(g: &Graph, v: NodeId) -> f64 {
    let d = g.degree(v);
    if d < 2 {
        return 0.0;
    }
    let neigh = g.neighbors(v);
    let mut closed = 0usize;
    for (i, &a) in neigh.iter().enumerate() {
        for &b in &neigh[i + 1..] {
            if g.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Global clustering coefficient (transitivity): `3·triangles / open +
/// closed triplets`. Returns 0 for graphs without any path of length 2.
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::global_clustering_coefficient, GraphBuilder};
///
/// // Triangle: fully transitive.
/// let g = GraphBuilder::from_edges(3, [(0u32, 1u32), (1, 2), (2, 0)])?;
/// assert!((global_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn global_clustering_coefficient(g: &Graph) -> f64 {
    let triplets: usize = g
        .nodes()
        .map(|v| {
            let d = g.degree(v);
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if triplets == 0 {
        return 0.0;
    }
    3.0 * triangle_count(g) as f64 / triplets as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn triangle_counting_on_k4() {
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .unwrap();
        assert_eq!(triangle_count(&g), 4);
        assert!((global_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_no_triangles() {
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)]).unwrap();
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn local_coefficient_cases() {
        // 0 is the apex of a triangle fan: neighbors {1, 2} adjacent.
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (1, 2), (0, 3)]).unwrap();
        // neighbors(0) = {1,2,3}; adjacent pairs among them: (1,2) only.
        assert!((local_clustering_coefficient(&g, NodeId::new(0)) - 1.0 / 3.0).abs() < 1e-12);
        // degree-1 node:
        assert_eq!(local_clustering_coefficient(&g, NodeId::new(3)), 0.0);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }
}
