//! Connected components.

use crate::{Graph, NodeId};

use super::bfs_order;

/// Result of [`connected_components`]: per-node component labels plus
/// component sizes.
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::connected_components, GraphBuilder, NodeId};
///
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (2, 3)])?;
/// let cc = connected_components(&g);
/// assert_eq!(cc.count(), 2);
/// assert_eq!(cc.label(NodeId::new(0)), cc.label(NodeId::new(1)));
/// assert_ne!(cc.label(NodeId::new(0)), cc.label(NodeId::new(2)));
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    labels: Vec<u32>,
    sizes: Vec<usize>,
}

impl ComponentLabels {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component label of `v` (labels are dense, `0..count`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: NodeId) -> u32 {
        self.labels[v.index()]
    }

    /// Sizes of the components, indexed by label.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Label of the largest component (ties broken by smallest label).
    ///
    /// Returns `None` for the empty graph.
    pub fn largest(&self) -> Option<u32> {
        self.sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
    }
}

/// Labels the connected components of `g` by repeated BFS.
pub fn connected_components(g: &Graph) -> ComponentLabels {
    let n = g.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    for v in g.nodes() {
        if labels[v.index()] != u32::MAX {
            continue;
        }
        let label = sizes.len() as u32;
        let members = bfs_order(g, v);
        for w in &members {
            labels[w.index()] = label;
        }
        sizes.push(members.len());
    }
    ComponentLabels { labels, sizes }
}

/// Returns the node set of the largest connected component, sorted by id.
///
/// Returns an empty vector for the empty graph.
pub fn largest_component(g: &Graph) -> Vec<NodeId> {
    let cc = connected_components(g);
    match cc.largest() {
        None => Vec::new(),
        Some(l) => g.nodes().filter(|&v| cc.label(v) == l).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn single_component() {
        let g = GraphBuilder::from_edges(3, [(0u32, 1u32), (1, 2)]).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 1);
        assert_eq!(cc.sizes(), &[3]);
        assert_eq!(cc.largest(), Some(0));
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = GraphBuilder::new(3).build();
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 3);
        assert_eq!(cc.sizes(), &[1, 1, 1]);
    }

    #[test]
    fn largest_component_extraction() {
        let g = GraphBuilder::from_edges(6, [(0u32, 1u32), (1, 2), (4, 5)]).unwrap();
        let big = largest_component(&g);
        assert_eq!(big, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 0);
        assert_eq!(cc.largest(), None);
        assert!(largest_component(&g).is_empty());
    }
}
