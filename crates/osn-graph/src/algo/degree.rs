//! Degree statistics.
//!
//! The ACCU experiment setup selects cautious users from the degree band
//! `[10, 100]`; Table I reports node/edge counts per dataset. Both come
//! from these helpers.

use crate::{Graph, NodeId};

/// Summary statistics of a graph's degree sequence.
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::DegreeStats, GraphBuilder};
///
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3)])?;
/// let s = DegreeStats::of(&g);
/// assert_eq!(s.max, 3);
/// assert_eq!(s.min, 1);
/// assert!((s.mean - 1.5).abs() < 1e-12);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree (0 for the empty graph).
    pub min: usize,
    /// Maximum degree (0 for the empty graph).
    pub max: usize,
    /// Mean degree `2m/n` (0 for the empty graph).
    pub mean: f64,
    /// Median degree (0 for the empty graph).
    pub median: usize,
}

impl DegreeStats {
    /// Computes degree statistics of `g`.
    pub fn of(g: &Graph) -> Self {
        let n = g.node_count();
        if n == 0 {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
            };
        }
        let mut degs: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        DegreeStats {
            min: degs[0],
            max: degs[n - 1],
            mean: g.average_degree(),
            median: degs[n / 2],
        }
    }
}

/// Histogram of node degrees: `hist[d]` is the number of nodes with
/// degree `d`. The vector has length `max_degree + 1` (empty for the
/// empty graph).
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::degree_histogram, GraphBuilder};
///
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3)])?;
/// assert_eq!(degree_histogram(&g), vec![0, 3, 0, 1]);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    if g.node_count() == 0 {
        return Vec::new();
    }
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Returns all nodes whose degree lies in the inclusive band
/// `[lo, hi]`, sorted by id.
///
/// This is the candidate pool from which the paper draws cautious users
/// (band `[10, 100]`: "nodes with really high degrees are not likely to
/// be cautious, while nodes with low degrees are usually not important").
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::nodes_with_degree_in, GraphBuilder, NodeId};
///
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3)])?;
/// assert_eq!(nodes_with_degree_in(&g, 2, 10), vec![NodeId::new(0)]);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn nodes_with_degree_in(g: &Graph, lo: usize, hi: usize) -> Vec<NodeId> {
    g.nodes()
        .filter(|&v| (lo..=hi).contains(&g.degree(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_of_path() {
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)]).unwrap();
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert_eq!(s.median, 2);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = GraphBuilder::new(0).build();
        let s = DegreeStats::of(&g);
        assert_eq!(
            s,
            DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0
            }
        );
        assert!(degree_histogram(&g).is_empty());
    }

    #[test]
    fn histogram_counts_every_node_once() {
        let g = GraphBuilder::from_edges(5, [(0u32, 1u32), (1, 2), (2, 3), (3, 4)]).unwrap();
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 5);
        assert_eq!(hist[1], 2); // the two path endpoints
        assert_eq!(hist[2], 3);
    }

    #[test]
    fn degree_band_filtering() {
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3), (1, 2)]).unwrap();
        // degrees: 0 -> 3, 1 -> 2, 2 -> 2, 3 -> 1
        assert_eq!(
            nodes_with_degree_in(&g, 2, 2),
            vec![NodeId::new(1), NodeId::new(2)]
        );
        assert!(nodes_with_degree_in(&g, 4, 9).is_empty());
        assert_eq!(nodes_with_degree_in(&g, 0, 9).len(), 4);
    }
}
