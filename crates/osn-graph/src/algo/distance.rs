//! Distance-based graph characteristics.

use rand::Rng;

use crate::{Graph, NodeId};

use super::bfs::{bfs_distances, UNREACHABLE};

/// Lower-bounds the diameter by the double-sweep heuristic: BFS from a
/// start node, then BFS again from the farthest node found. Exact on
/// trees; a tight lower bound in practice on social networks.
///
/// Returns `None` for graphs where the start node is isolated (or the
/// graph is empty).
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::double_sweep_diameter, GraphBuilder, NodeId};
///
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)])?;
/// assert_eq!(double_sweep_diameter(&g, NodeId::new(1)), Some(3));
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn double_sweep_diameter(g: &Graph, start: NodeId) -> Option<u32> {
    if g.node_count() == 0 || g.degree(start) == 0 {
        return None;
    }
    let first = bfs_distances(g, start);
    let (far, _) = first
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE)
        .max_by_key(|(_, &d)| d)?;
    let second = bfs_distances(g, NodeId::from(far));
    second.iter().filter(|&&d| d != UNREACHABLE).max().copied()
}

/// Estimates the mean shortest-path length by BFS from `samples` random
/// source nodes, averaging over reachable pairs. Returns `None` if no
/// finite distances were found.
pub fn sampled_average_path_length<R: Rng + ?Sized>(
    g: &Graph,
    samples: usize,
    rng: &mut R,
) -> Option<f64> {
    if g.node_count() == 0 {
        return None;
    }
    let mut total = 0u64;
    let mut pairs = 0u64;
    for _ in 0..samples {
        let src = NodeId::new(rng.gen_range(0..g.node_count() as u32));
        for &d in &bfs_distances(g, src) {
            if d != UNREACHABLE && d > 0 {
                total += d as u64;
                pairs += 1;
            }
        }
    }
    (pairs > 0).then(|| total as f64 / pairs as f64)
}

/// Degree assortativity: the Pearson correlation between the degrees of
/// edge endpoints. Positive for social networks (hubs befriend hubs),
/// negative for technological ones. Returns 0 for graphs whose degrees
/// do not vary across edges.
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::degree_assortativity, GraphBuilder};
///
/// // A star is maximally disassortative: hubs only touch leaves.
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3)])?;
/// assert!(degree_assortativity(&g) < 0.0 || g.edge_count() == 0);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn degree_assortativity(g: &Graph) -> f64 {
    let m = g.edge_count();
    if m == 0 {
        return 0.0;
    }
    // Standard edge-sample Pearson correlation, counting each edge in
    // both orientations for symmetry.
    let (mut sx, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64);
    let n = (2 * m) as f64;
    for e in g.edges() {
        let a = g.degree(e.lo()) as f64;
        let b = g.degree(e.hi()) as f64;
        sx += a + b;
        sxx += a * a + b * b;
        sxy += 2.0 * a * b;
    }
    let mean = sx / n;
    let var = sxx / n - mean * mean;
    if var <= 1e-15 {
        return 0.0;
    }
    (sxy / n - mean * mean) / var
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, watts_strogatz};
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn diameter_of_path_and_cycle() {
        let path = GraphBuilder::from_edges(5, [(0u32, 1u32), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(double_sweep_diameter(&path, NodeId::new(2)), Some(4));
        let cycle =
            GraphBuilder::from_edges(6, [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
                .unwrap();
        // Double sweep on a cycle finds the true diameter 3.
        assert_eq!(double_sweep_diameter(&cycle, NodeId::new(0)), Some(3));
    }

    #[test]
    fn diameter_of_isolated_start_is_none() {
        let g = GraphBuilder::from_edges(3, [(0u32, 1u32)]).unwrap();
        assert_eq!(double_sweep_diameter(&g, NodeId::new(2)), None);
    }

    #[test]
    fn path_length_estimate_on_complete_graph_is_one() {
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let l = sampled_average_path_length(&g, 4, &mut rng).unwrap();
        assert!((l - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_world_has_shorter_paths_than_lattice() {
        let mut rng = StdRng::seed_from_u64(1);
        let lattice = watts_strogatz(200, 6, 0.0, &mut rng).unwrap();
        let rewired = watts_strogatz(200, 6, 0.3, &mut rng).unwrap();
        let ll = sampled_average_path_length(&lattice, 10, &mut rng).unwrap();
        let lr = sampled_average_path_length(&rewired, 10, &mut rng).unwrap();
        assert!(lr < ll, "rewired {lr} should beat lattice {ll}");
    }

    #[test]
    fn star_is_disassortative() {
        let g = GraphBuilder::from_edges(5, [(0u32, 1u32), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(degree_assortativity(&g), -1.0);
    }

    #[test]
    fn regular_graph_assortativity_is_degenerate_zero() {
        let cycle = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(degree_assortativity(&cycle), 0.0);
        let empty = GraphBuilder::new(3).build();
        assert_eq!(degree_assortativity(&empty), 0.0);
    }

    #[test]
    fn ba_graphs_are_not_strongly_assortative() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(2_000, 4, &mut rng).unwrap();
        let r = degree_assortativity(&g);
        assert!(
            (-0.5..=0.2).contains(&r),
            "BA assortativity {r} out of expected band"
        );
    }
}
