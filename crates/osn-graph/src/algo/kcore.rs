//! k-core decomposition (Matula–Beck peeling).

use crate::{Graph, NodeId};

/// Computes the core number of every node: the largest `k` such that
/// the node belongs to a subgraph where every node has degree ≥ `k`.
///
/// Linear-time bucket peeling. Core numbers characterize how deeply a
/// user sits inside densely knit regions — an alternative axis for
/// selecting "high-profile" cautious users.
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::core_numbers, GraphBuilder};
///
/// // Triangle with a pendant: the triangle is the 2-core.
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 0), (2, 3)])?;
/// assert_eq!(core_numbers(&g), vec![2, 2, 2, 1]);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n).map(|i| g.degree(NodeId::from(i))).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort nodes by degree.
    let mut bin_start = vec![0usize; max_degree + 2];
    for &d in &degree {
        bin_start[d + 1] += 1;
    }
    for i in 1..bin_start.len() {
        bin_start[i] += bin_start[i - 1];
    }
    let mut position = vec![0usize; n];
    let mut ordered = vec![0usize; n];
    {
        let mut cursor = bin_start.clone();
        for v in 0..n {
            position[v] = cursor[degree[v]];
            ordered[position[v]] = v;
            cursor[degree[v]] += 1;
        }
    }
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = ordered[i];
        core[v] = degree[v] as u32;
        for &w in g.neighbors(NodeId::from(v)) {
            let w = w.index();
            if degree[w] > degree[v] {
                // Move w one bucket down: swap it with the first node of
                // its current bucket, then shrink the bucket boundary.
                let dw = degree[w];
                let pw = position[w];
                let start = bin_start[dw];
                let u = ordered[start];
                if u != w {
                    ordered.swap(start, pw);
                    position[w] = start;
                    position[u] = pw;
                }
                bin_start[dw] += 1;
                degree[w] -= 1;
            }
        }
    }
    core
}

/// Returns the nodes of the maximum k-core (the innermost shell),
/// sorted by id, together with its `k`.
///
/// Returns `(0, all nodes)` for an edgeless graph.
pub fn max_core(g: &Graph) -> (u32, Vec<NodeId>) {
    let core = core_numbers(g);
    let k = core.iter().copied().max().unwrap_or(0);
    let members = (0..g.node_count())
        .filter(|&i| core[i] == k)
        .map(NodeId::from)
        .collect();
    (k, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clique_core_is_degree() {
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .unwrap();
        assert_eq!(core_numbers(&g), vec![3; 4]);
        let (k, members) = max_core(&g);
        assert_eq!(k, 3);
        assert_eq!(members.len(), 4);
    }

    #[test]
    fn path_has_core_one() {
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)]).unwrap();
        assert_eq!(core_numbers(&g), vec![1; 4]);
    }

    #[test]
    fn pendant_chain_peels_off() {
        // K4 with a 2-chain hanging off node 0.
        let g = GraphBuilder::from_edges(
            6,
            [
                (0u32, 1u32),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (0, 4),
                (4, 5),
            ],
        )
        .unwrap();
        let core = core_numbers(&g);
        assert_eq!(&core[..4], &[3, 3, 3, 3]);
        assert_eq!(core[4], 1);
        assert_eq!(core[5], 1);
    }

    #[test]
    fn isolated_nodes_are_zero_core() {
        let g = GraphBuilder::from_edges(3, [(0u32, 1u32)]).unwrap();
        assert_eq!(core_numbers(&g), vec![1, 1, 0]);
        let g = GraphBuilder::new(2).build();
        assert_eq!(core_numbers(&g), vec![0, 0]);
        let (k, members) = max_core(&g);
        assert_eq!(k, 0);
        assert_eq!(members.len(), 2);
    }

    /// Reference implementation: shell-by-shell peeling with full
    /// rescans. A node removed while peeling shell `k` has core number
    /// `k`.
    fn naive_core_numbers(g: &Graph) -> Vec<u32> {
        let n = g.node_count();
        let mut alive = vec![true; n];
        let mut core = vec![0u32; n];
        for k in 0..=(g.max_degree() as u32) {
            loop {
                let mut removed = false;
                for v in 0..n {
                    if !alive[v] {
                        continue;
                    }
                    let deg = g
                        .neighbors(NodeId::from(v))
                        .iter()
                        .filter(|w| alive[w.index()])
                        .count() as u32;
                    if deg <= k {
                        core[v] = k;
                        alive[v] = false;
                        removed = true;
                    }
                }
                if !removed {
                    break;
                }
            }
        }
        core
    }

    #[test]
    fn matches_naive_peeling_on_random_graphs() {
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = barabasi_albert(60, 3, &mut rng).unwrap();
            let fast = core_numbers(&g);
            let naive = naive_core_numbers(&g);
            assert_eq!(fast, naive, "seed {seed}");
        }
    }

    #[test]
    fn core_is_monotone_under_peeling_invariant() {
        // Every node's core number is ≤ its degree, and within the
        // subgraph of nodes with core ≥ c each node keeps ≥ c neighbors.
        let mut rng = StdRng::seed_from_u64(9);
        let g = barabasi_albert(200, 4, &mut rng).unwrap();
        let core = core_numbers(&g);
        for v in g.nodes() {
            assert!(core[v.index()] as usize <= g.degree(v));
            let c = core[v.index()];
            let inside = g
                .neighbors(v)
                .iter()
                .filter(|w| core[w.index()] >= c)
                .count() as u32;
            assert!(
                inside >= c,
                "node {v}: core {c} but only {inside} high-core neighbors"
            );
        }
    }
}
