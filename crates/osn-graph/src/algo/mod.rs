//! Graph algorithms used by the ACCU policies and experiment setup.

mod bfs;
mod centrality;
mod clustering;
mod components;
mod degree;
mod distance;
mod kcore;
mod mutual;
mod pagerank;

pub use bfs::{bfs_distances, bfs_order, UNREACHABLE};
pub use centrality::{betweenness_centrality, closeness_centrality, eigenvector_centrality};
pub use clustering::{global_clustering_coefficient, local_clustering_coefficient, triangle_count};
pub use components::{connected_components, largest_component, ComponentLabels};
pub use degree::{degree_histogram, nodes_with_degree_in, DegreeStats};
pub use distance::{degree_assortativity, double_sweep_diameter, sampled_average_path_length};
pub use kcore::{core_numbers, max_core};
pub use mutual::{common_neighbors, mutual_count, mutual_friend_count};
pub use pagerank::{pagerank, PageRankConfig};
