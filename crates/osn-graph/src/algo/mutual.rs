//! Mutual-friend (common-neighbor) computations.
//!
//! The cautious acceptance rule `|N(v) ∩ N(s)| ≥ θ_v` makes
//! common-neighbor counting the hot operation of the ACCU simulator.
//! Neighbor lists are sorted, so intersection is a linear merge.

use crate::{Graph, NodeId};

/// Counts the common neighbors of `a` and `b` by merging their sorted
/// adjacency rows — `O(deg(a) + deg(b))`.
///
/// # Panics
///
/// Panics if either node is out of range.
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::mutual_friend_count, GraphBuilder, NodeId};
///
/// // Triangle plus a pendant: 0 and 1 share neighbor 2.
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (1, 2), (2, 3)])?;
/// assert_eq!(mutual_friend_count(&g, NodeId::new(0), NodeId::new(1)), 1);
/// assert_eq!(mutual_friend_count(&g, NodeId::new(0), NodeId::new(3)), 1);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn mutual_friend_count(g: &Graph, a: NodeId, b: NodeId) -> usize {
    merge_count(g.neighbors(a), g.neighbors(b))
}

/// Returns the sorted list of common neighbors of `a` and `b`.
///
/// # Panics
///
/// Panics if either node is out of range.
pub fn common_neighbors(g: &Graph, a: NodeId, b: NodeId) -> Vec<NodeId> {
    let (mut i, mut j) = (0usize, 0usize);
    let (na, nb) = (g.neighbors(a), g.neighbors(b));
    let mut out = Vec::new();
    while i < na.len() && j < nb.len() {
        match na[i].cmp(&nb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(na[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Counts elements common to two sorted slices.
pub(crate) fn merge_count(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn disjoint_neighborhoods() {
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (2, 3)]).unwrap();
        assert_eq!(mutual_friend_count(&g, NodeId::new(0), NodeId::new(2)), 0);
        assert!(common_neighbors(&g, NodeId::new(0), NodeId::new(2)).is_empty());
    }

    #[test]
    fn shared_hub() {
        // Both 1 and 2 attach to hubs 0 and 3.
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (3, 1), (3, 2)]).unwrap();
        assert_eq!(mutual_friend_count(&g, NodeId::new(1), NodeId::new(2)), 2);
        assert_eq!(
            common_neighbors(&g, NodeId::new(1), NodeId::new(2)),
            vec![NodeId::new(0), NodeId::new(3)]
        );
    }

    #[test]
    fn adjacency_does_not_imply_commonality() {
        let g = GraphBuilder::from_edges(2, [(0u32, 1u32)]).unwrap();
        assert_eq!(mutual_friend_count(&g, NodeId::new(0), NodeId::new(1)), 0);
    }

    #[test]
    fn merge_count_matches_naive() {
        let a: Vec<NodeId> = [1u32, 3, 5, 7, 9].into_iter().map(NodeId::new).collect();
        let b: Vec<NodeId> = [2u32, 3, 4, 7, 10].into_iter().map(NodeId::new).collect();
        assert_eq!(merge_count(&a, &b), 2);
        assert_eq!(merge_count(&a, &[]), 0);
        assert_eq!(merge_count(&a, &a), a.len());
    }
}
