//! Mutual-friend (common-neighbor) computations.
//!
//! The cautious acceptance rule `|N(v) ∩ N(s)| ≥ θ_v` makes
//! common-neighbor counting the hot operation of the ACCU simulator.
//! Neighbor lists are sorted, so intersection is a linear merge.

use crate::{Graph, NodeId};

/// Counts the common neighbors of `a` and `b` by merging their sorted
/// adjacency rows — `O(deg(a) + deg(b))`.
///
/// # Panics
///
/// Panics if either node is out of range.
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::mutual_friend_count, GraphBuilder, NodeId};
///
/// // Triangle plus a pendant: 0 and 1 share neighbor 2.
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (1, 2), (2, 3)])?;
/// assert_eq!(mutual_friend_count(&g, NodeId::new(0), NodeId::new(1)), 1);
/// assert_eq!(mutual_friend_count(&g, NodeId::new(0), NodeId::new(3)), 1);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn mutual_friend_count(g: &Graph, a: NodeId, b: NodeId) -> usize {
    mutual_count(g.neighbors(a), g.neighbors(b))
}

/// Size-skew threshold above which [`mutual_count`] switches from the
/// linear merge to galloping: probing pays a `log` factor per element
/// of the small side, which only wins once the large side is
/// substantially longer.
const GALLOP_SKEW: usize = 16;

/// Counts elements common to two sorted, duplicate-free slices —
/// the intersection kernel behind [`mutual_friend_count`] and the
/// cautious-index construction in `accu-core`.
///
/// Balanced inputs use a linear merge (`O(|a| + |b|)`); heavily skewed
/// inputs (one side ≥ 16× longer) use a galloping scan
/// (`O(min · log max)`), the classic win for hub-vs-leaf adjacency
/// intersections in power-law graphs.
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::mutual_count, NodeId};
///
/// let a: Vec<NodeId> = [1u32, 4, 9].into_iter().map(NodeId::new).collect();
/// let b: Vec<NodeId> = [0u32, 4, 5, 9, 12].into_iter().map(NodeId::new).collect();
/// assert_eq!(mutual_count(&a, &b), 2);
/// ```
pub fn mutual_count(a: &[NodeId], b: &[NodeId]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() / small.len() >= GALLOP_SKEW {
        gallop_count(small, large)
    } else {
        merge_count(small, large)
    }
}

/// Galloping lower bound: the first index `i ≥ lo` with
/// `large[i] >= x`, found by exponential probing then binary search in
/// the bracketed window.
fn lower_bound_from(large: &[NodeId], mut lo: usize, x: NodeId) -> usize {
    let mut step = 1usize;
    let mut hi = lo;
    while hi < large.len() && large[hi] < x {
        lo = hi + 1;
        hi += step;
        step *= 2;
    }
    let hi = hi.min(large.len());
    lo + large[lo..hi].partition_point(|&y| y < x)
}

/// Intersection count by galloping the small side through the large
/// one. Both slices sorted and duplicate-free.
fn gallop_count(small: &[NodeId], large: &[NodeId]) -> usize {
    let mut count = 0usize;
    let mut from = 0usize;
    for &x in small {
        if from >= large.len() {
            break;
        }
        let pos = lower_bound_from(large, from, x);
        if pos < large.len() && large[pos] == x {
            count += 1;
            from = pos + 1;
        } else {
            from = pos;
        }
    }
    count
}

/// Returns the sorted list of common neighbors of `a` and `b`.
///
/// # Panics
///
/// Panics if either node is out of range.
pub fn common_neighbors(g: &Graph, a: NodeId, b: NodeId) -> Vec<NodeId> {
    let (mut i, mut j) = (0usize, 0usize);
    let (na, nb) = (g.neighbors(a), g.neighbors(b));
    let mut out = Vec::new();
    while i < na.len() && j < nb.len() {
        match na[i].cmp(&nb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(na[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Counts elements common to two sorted slices.
pub(crate) fn merge_count(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn disjoint_neighborhoods() {
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (2, 3)]).unwrap();
        assert_eq!(mutual_friend_count(&g, NodeId::new(0), NodeId::new(2)), 0);
        assert!(common_neighbors(&g, NodeId::new(0), NodeId::new(2)).is_empty());
    }

    #[test]
    fn shared_hub() {
        // Both 1 and 2 attach to hubs 0 and 3.
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (3, 1), (3, 2)]).unwrap();
        assert_eq!(mutual_friend_count(&g, NodeId::new(1), NodeId::new(2)), 2);
        assert_eq!(
            common_neighbors(&g, NodeId::new(1), NodeId::new(2)),
            vec![NodeId::new(0), NodeId::new(3)]
        );
    }

    #[test]
    fn adjacency_does_not_imply_commonality() {
        let g = GraphBuilder::from_edges(2, [(0u32, 1u32)]).unwrap();
        assert_eq!(mutual_friend_count(&g, NodeId::new(0), NodeId::new(1)), 0);
    }

    #[test]
    fn gallop_matches_merge_on_skewed_rows() {
        // Small side of 3 vs a large side of 200: well past the skew
        // threshold, so mutual_count takes the galloping path; compare
        // it against the straightforward merge.
        let small: Vec<NodeId> = [3u32, 100, 398].into_iter().map(NodeId::new).collect();
        let large: Vec<NodeId> = (0..200u32).map(|i| NodeId::new(2 * i)).collect();
        assert_eq!(mutual_count(&small, &large), merge_count(&small, &large));
        assert_eq!(mutual_count(&small, &large), 2); // 100 and 398; 3 is odd
                                                     // Argument order must not matter.
        assert_eq!(mutual_count(&large, &small), mutual_count(&small, &large));
        // Exhaustive cross-check over deterministic pseudo-random rows.
        let mut x = 12345u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u32 % 1000
        };
        for trial in 0..50 {
            let mut a: Vec<u32> = (0..(trial % 7 + 1)).map(|_| next()).collect();
            let mut b: Vec<u32> = (0..(trial * 13 % 300 + 1)).map(|_| next()).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let a: Vec<NodeId> = a.into_iter().map(NodeId::new).collect();
            let b: Vec<NodeId> = b.into_iter().map(NodeId::new).collect();
            assert_eq!(mutual_count(&a, &b), merge_count(&a, &b), "trial {trial}");
        }
        assert_eq!(mutual_count(&small, &[]), 0);
        assert_eq!(mutual_count(&[], &large), 0);
    }

    #[test]
    fn merge_count_matches_naive() {
        let a: Vec<NodeId> = [1u32, 3, 5, 7, 9].into_iter().map(NodeId::new).collect();
        let b: Vec<NodeId> = [2u32, 3, 4, 7, 10].into_iter().map(NodeId::new).collect();
        assert_eq!(merge_count(&a, &b), 2);
        assert_eq!(merge_count(&a, &[]), 0);
        assert_eq!(merge_count(&a, &a), a.len());
    }
}
