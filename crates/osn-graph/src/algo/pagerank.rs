//! PageRank on undirected graphs.
//!
//! The PageRank baseline in the ACCU paper picks request targets by
//! descending PageRank score. On an undirected graph each edge acts as a
//! pair of opposite directed links.

use crate::Graph;

/// Configuration for [`pagerank`].
///
/// # Examples
///
/// ```
/// use osn_graph::algo::PageRankConfig;
///
/// let cfg = PageRankConfig::new().damping(0.9).max_iterations(50);
/// assert_eq!(cfg.damping_factor(), 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    damping: f64,
    max_iterations: usize,
    tolerance: f64,
}

impl PageRankConfig {
    /// Creates the conventional configuration: damping 0.85, at most 100
    /// iterations, L1 tolerance `1e-10`.
    pub fn new() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-10,
        }
    }

    /// Sets the damping factor (clamped to `[0, 1]`).
    pub fn damping(mut self, d: f64) -> Self {
        self.damping = d.clamp(0.0, 1.0);
        self
    }

    /// Sets the iteration cap.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the L1 convergence tolerance.
    pub fn tolerance(mut self, t: f64) -> Self {
        self.tolerance = t.max(0.0);
        self
    }

    /// Current damping factor.
    pub fn damping_factor(&self) -> f64 {
        self.damping
    }
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes PageRank scores by power iteration.
///
/// Returns one score per node, summing to 1 (for non-empty graphs).
/// Dangling (isolated) nodes redistribute their mass uniformly, the
/// standard correction.
///
/// # Examples
///
/// ```
/// use osn_graph::{algo::{pagerank, PageRankConfig}, GraphBuilder, NodeId};
///
/// // Star: the hub collects the most rank.
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3)])?;
/// let pr = pagerank(&g, &PageRankConfig::new());
/// assert!(pr[0] > pr[1]);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn pagerank(g: &Graph, cfg: &PageRankConfig) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..cfg.max_iterations {
        let mut dangling_mass = 0.0;
        for v in g.nodes() {
            let d = g.degree(v);
            if d == 0 {
                dangling_mass += rank[v.index()];
            }
        }
        for x in next.iter_mut() {
            *x = (1.0 - cfg.damping) * uniform + cfg.damping * dangling_mass * uniform;
        }
        for v in g.nodes() {
            let d = g.degree(v);
            if d > 0 {
                let share = cfg.damping * rank[v.index()] / d as f64;
                for &w in g.neighbors(v) {
                    next[w.index()] += share;
                }
            }
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < cfg.tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, NodeId};

    #[test]
    fn scores_sum_to_one() {
        let g =
            GraphBuilder::from_edges(5, [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let pr = pagerank(&g, &PageRankConfig::new());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn regular_graph_is_uniform() {
        // Cycle: all nodes symmetric.
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3), (3, 0)]).unwrap();
        let pr = pagerank(&g, &PageRankConfig::new());
        for &x in &pr {
            assert!((x - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_dominates_star() {
        let g = GraphBuilder::from_edges(5, [(0u32, 1u32), (0, 2), (0, 3), (0, 4)]).unwrap();
        let pr = pagerank(&g, &PageRankConfig::new());
        for leaf in 1..5 {
            assert!(pr[0] > pr[leaf]);
        }
    }

    #[test]
    fn dangling_nodes_keep_total_mass() {
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32)]).unwrap(); // 2, 3 isolated
        let pr = pagerank(&g, &PageRankConfig::new());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(pr[2] > 0.0);
    }

    #[test]
    fn zero_damping_is_uniform() {
        let g = GraphBuilder::from_edges(3, [(0u32, 1u32)]).unwrap();
        let pr = pagerank(&g, &PageRankConfig::new().damping(0.0));
        for &x in &pr {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_graph_returns_empty() {
        let g = GraphBuilder::new(0).build();
        assert!(pagerank(&g, &PageRankConfig::new()).is_empty());
    }

    #[test]
    fn config_builder_clamps() {
        let cfg = PageRankConfig::default().damping(1.7).tolerance(-3.0);
        assert_eq!(cfg.damping_factor(), 1.0);
        let _ = NodeId::new(0); // silence unused import lint paranoia
    }
}
