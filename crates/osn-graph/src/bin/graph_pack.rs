//! Packs generated graphs into the `.accg` CSR store.
//!
//! Generating a 10⁶–10⁷-node graph takes seconds to minutes; loading a
//! packed one takes milliseconds. This converter generates a graph from
//! one of the scale-tier families (BA / WS / config-model / R-MAT),
//! writes it as a versioned, checksummed `.accg` file, and reports the
//! generate/pack/reload timings so the amortization is visible.
//!
//! ```text
//! graph_pack --family ba     --nodes 1000000 [--degree 8] [--seed 42] --out g.accg
//! graph_pack --family ws     --nodes 1000000 [--degree 8] [--beta 0.1] --out g.accg
//! graph_pack --family config --nodes 1000000 [--gamma 2.5] [--min-deg 2] [--max-deg 300] --out g.accg
//! graph_pack --family rmat   --nodes 1048576 [--edge-factor 8] --out g.accg
//! graph_pack --info g.accg
//! ```
//!
//! R-MAT node counts are rounded up to the next power of two. `--info`
//! loads and re-validates an existing file and prints its stats.
//!
//! `--telemetry FILE` appends a `store.*` metric snapshot (pack/load/
//! verify timing histograms plus node/edge counters) as JSONL, and
//! `--metrics-addr ADDR` additionally exposes the same metrics for a
//! Prometheus scrape while the pack runs.

use std::process::exit;
use std::time::Instant;

use accu_telemetry::obs::{MetricsServer, Observer};
use accu_telemetry::{JsonlSink, Recorder};
use osn_graph::generators::{self, RmatParams};
use osn_graph::{store, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

const USAGE: &str = "usage: graph_pack --family <ba|ws|config|rmat> --nodes N \
                     [--degree M] [--beta B] [--gamma G] [--min-deg D] [--max-deg D] \
                     [--edge-factor F] [--seed S] [--telemetry FILE] [--metrics-addr ADDR] \
                     --out FILE\n       graph_pack --info FILE";

fn fail(msg: &str) -> ! {
    eprintln!("graph_pack: {msg}\n{USAGE}");
    exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> T {
    let raw = value.unwrap_or_else(|| fail(&format!("{flag} needs a value")));
    raw.parse()
        .unwrap_or_else(|_| fail(&format!("cannot parse {flag} value {raw:?}")))
}

fn print_stats(g: &Graph) {
    println!(
        "  nodes {} · edges {} · max degree {} · avg degree {:.2}",
        g.node_count(),
        g.edge_count(),
        g.max_degree(),
        g.average_degree()
    );
}

fn info(path: &str) {
    let t0 = Instant::now();
    let g = store::read_graph_file(path).unwrap_or_else(|e| {
        eprintln!("graph_pack: cannot load {path}: {e}");
        exit(1);
    });
    let load = t0.elapsed();
    println!("{path}: valid .accg (v{})", store::STORE_VERSION);
    print_stats(&g);
    println!("  loaded+validated in {:.1} ms", load.as_secs_f64() * 1e3);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        fail("no arguments");
    }
    let mut family = None::<String>;
    let mut nodes = None::<usize>;
    let mut degree = 8usize;
    let mut beta = 0.1f64;
    let mut gamma = 2.5f64;
    let mut min_deg = 2usize;
    let mut max_deg = 300usize;
    let mut edge_factor = 8usize;
    let mut seed = 42u64;
    let mut out = None::<String>;
    let mut telemetry = None::<String>;
    let mut metrics_addr = None::<String>;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--info" => {
                info(&parse::<String>("--info", it.next()));
                return;
            }
            "--family" => family = Some(parse("--family", it.next())),
            "--nodes" => nodes = Some(parse("--nodes", it.next())),
            "--degree" => degree = parse("--degree", it.next()),
            "--beta" => beta = parse("--beta", it.next()),
            "--gamma" => gamma = parse("--gamma", it.next()),
            "--min-deg" => min_deg = parse("--min-deg", it.next()),
            "--max-deg" => max_deg = parse("--max-deg", it.next()),
            "--edge-factor" => edge_factor = parse("--edge-factor", it.next()),
            "--seed" => seed = parse("--seed", it.next()),
            "--out" => out = Some(parse("--out", it.next())),
            "--telemetry" => telemetry = Some(parse("--telemetry", it.next())),
            "--metrics-addr" => metrics_addr = Some(parse("--metrics-addr", it.next())),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    let family = family.unwrap_or_else(|| fail("--family is required"));
    let n = nodes.unwrap_or_else(|| fail("--nodes is required"));
    let out = out.unwrap_or_else(|| fail("--out is required"));

    // Telemetry is opt-in; with neither flag the recorder is a no-op.
    let recorder = if telemetry.is_some() || metrics_addr.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let _metrics = metrics_addr.map(|addr| {
        match MetricsServer::bind(&addr, recorder.clone(), "graph_pack", Observer::disabled()) {
            Ok(server) => {
                eprintln!("graph_pack metrics on http://{}/metrics", server.addr());
                server
            }
            Err(e) => {
                eprintln!("graph_pack: metrics server: {e}");
                exit(1);
            }
        }
    });

    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    let built = match family.as_str() {
        "ba" => generators::barabasi_albert(n, degree, &mut rng),
        "ws" => generators::watts_strogatz(n, degree, beta, &mut rng),
        "config" => generators::powerlaw_configuration(n, gamma, min_deg, max_deg, &mut rng),
        "rmat" => {
            let scale = (n.max(2) as u64).next_power_of_two().trailing_zeros();
            generators::rmat(scale, edge_factor, RmatParams::classic(), &mut rng)
        }
        other => fail(&format!("unknown family {other:?}")),
    };
    let g = built.unwrap_or_else(|e| {
        eprintln!("graph_pack: generation failed: {e}");
        exit(1);
    });
    let gen_t = t0.elapsed();

    let t1 = Instant::now();
    if let Err(e) = store::write_graph_file(&out, &g) {
        eprintln!("graph_pack: cannot write {out}: {e}");
        exit(1);
    }
    let pack_t = t1.elapsed();

    // Steady-state reload path (checksum + bounds checks, as used by
    // the scale benchmarks), timed; then the fully-validated loader,
    // timed; then an untimed equality check against the generated
    // graph, which proves both loads end-to-end.
    let t2 = Instant::now();
    let back = store::read_graph_file_trusted(&out).unwrap_or_else(|e| {
        eprintln!("graph_pack: reload failed: {e}");
        exit(1);
    });
    let load_t = t2.elapsed();
    let t3 = Instant::now();
    let verified = store::read_graph_file(&out).unwrap_or_else(|e| {
        eprintln!("graph_pack: reload verification failed: {e}");
        exit(1);
    });
    let verify_t = t3.elapsed();
    if back != g || verified != g {
        eprintln!("graph_pack: reload does not match the generated graph");
        exit(1);
    }

    recorder.counter("store.packs").incr();
    recorder.counter("store.loads").incr();
    recorder.counter("store.verified_loads").incr();
    recorder.counter("store.nodes").add(g.node_count() as u64);
    recorder.counter("store.edges").add(g.edge_count() as u64);
    recorder
        .histogram("store.generate_ns")
        .record(gen_t.as_nanos() as u64);
    recorder
        .histogram("store.pack_ns")
        .record(pack_t.as_nanos() as u64);
    recorder
        .histogram("store.load_ns")
        .record(load_t.as_nanos() as u64);
    recorder
        .histogram("store.verify_ns")
        .record(verify_t.as_nanos() as u64);
    if let Some(path) = telemetry {
        let result = JsonlSink::create(&path).and_then(|mut sink| {
            if let Some(snapshot) = recorder.snapshot(&format!("graph_pack/{family}")) {
                sink.write_snapshot(&snapshot)?;
            }
            sink.flush()
        });
        if let Err(e) = result {
            eprintln!("graph_pack: cannot write telemetry {path}: {e}");
            exit(1);
        }
    }

    println!("packed {family} graph to {out}");
    print_stats(&g);
    println!(
        "  generate {:.1} ms · pack {:.1} ms · reload {:.1} ms ({:.1}x reload speedup) · verified reload {:.1} ms",
        gen_t.as_secs_f64() * 1e3,
        pack_t.as_secs_f64() * 1e3,
        load_t.as_secs_f64() * 1e3,
        gen_t.as_secs_f64() / load_t.as_secs_f64().max(1e-9),
        verify_t.as_secs_f64() * 1e3,
    );
}
