//! Incremental construction of immutable [`Graph`]s.

use std::collections::HashSet;

use crate::{Edge, Graph, GraphError, NodeId};

/// Builder that accumulates edges and produces an immutable [`Graph`].
///
/// The node count is fixed up front; nodes are the dense ids
/// `0..node_count`. Duplicate edges are silently deduplicated (the insert
/// reports whether the edge was new), self-loops and out-of-range
/// endpoints are rejected.
///
/// # Examples
///
/// ```
/// use osn_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(NodeId::new(0), NodeId::new(1))?;
/// b.add_edge(NodeId::new(1), NodeId::new(2))?;
/// // duplicates are fine; the second insert reports `false`:
/// assert!(!b.add_edge(NodeId::new(2), NodeId::new(1))?);
/// let g = b.build();
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    node_count: usize,
    edges: HashSet<Edge>,
    /// First edge rejected by [`Extend::extend`], deferred so bulk
    /// insertion stays panic-free; surfaced by [`try_build`](Self::try_build).
    deferred: Option<GraphError>,
    /// How many edges [`Extend::extend`] rejected in total.
    rejected: usize,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `node_count` nodes and no edges.
    pub fn new(node_count: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: HashSet::new(),
            deferred: None,
            rejected: 0,
        }
    }

    /// Creates a builder pre-sized for roughly `edge_hint` edges.
    pub fn with_edge_capacity(node_count: usize, edge_hint: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: HashSet::with_capacity(edge_hint),
            deferred: None,
            rejected: 0,
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `(a, b)`.
    ///
    /// Returns `Ok(true)` if the edge was new, `Ok(false)` if it was
    /// already present.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `a == b` and
    /// [`GraphError::NodeOutOfRange`] if either endpoint is `>=
    /// node_count`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool, GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        for v in [a, b] {
            if v.index() >= self.node_count {
                return Err(GraphError::NodeOutOfRange {
                    node: v,
                    node_count: self.node_count,
                });
            }
        }
        Ok(self.edges.insert(Edge::new(a, b)))
    }

    /// Returns `true` if the edge `(a, b)` has been added.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.edges.contains(&Edge::new(a, b))
    }

    /// Fallible bulk insertion: adds edges until the first invalid one
    /// and returns its [`GraphError`]. Edges added before the failure
    /// stay in the builder. Use this instead of [`Extend::extend`] when
    /// the input is untrusted and should be rejected, not degraded.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GraphError`] from [`add_edge`](Self::add_edge).
    pub fn try_extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) -> Result<(), GraphError> {
        for e in iter {
            self.add_edge(e.lo(), e.hi())?;
        }
        Ok(())
    }

    /// The first error [`Extend::extend`] deferred, if any.
    pub fn deferred_error(&self) -> Option<&GraphError> {
        self.deferred.as_ref()
    }

    /// How many edges [`Extend::extend`] rejected so far.
    pub fn rejected_edges(&self) -> usize {
        self.rejected
    }

    /// Builds the immutable CSR-backed [`Graph`].
    ///
    /// Edges are sorted into canonical order, so the same edge set always
    /// produces the same graph regardless of insertion order.
    ///
    /// Edges rejected by [`Extend::extend`] are *dropped by policy*:
    /// `build` returns the graph over the valid edges. Call
    /// [`try_build`](Self::try_build) to treat any rejected edge as an
    /// error instead.
    pub fn build(self) -> Graph {
        let mut edges: Vec<Edge> = self.edges.into_iter().collect();
        edges.sort_unstable();
        Graph::from_sorted_dedup_edges(self.node_count, edges)
    }

    /// Like [`build`](Self::build), but surfaces the error deferred by a
    /// panic-free [`Extend::extend`] over invalid edges.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] recorded by `extend` if any edge
    /// was rejected since the builder was created.
    ///
    /// # Examples
    ///
    /// ```
    /// use osn_graph::{Edge, GraphBuilder, GraphError, NodeId};
    ///
    /// let mut b = GraphBuilder::new(2);
    /// b.extend([Edge::new(NodeId::new(0), NodeId::new(5))]); // no panic
    /// assert_eq!(b.rejected_edges(), 1);
    /// assert!(matches!(
    ///     b.try_build(),
    ///     Err(GraphError::NodeOutOfRange { .. })
    /// ));
    /// ```
    pub fn try_build(mut self) -> Result<Graph, GraphError> {
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        Ok(self.build())
    }

    /// Convenience: builds a graph directly from an edge iterator.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GraphError`] from [`add_edge`](Self::add_edge).
    ///
    /// # Examples
    ///
    /// ```
    /// use osn_graph::{Graph, GraphBuilder};
    ///
    /// let g = GraphBuilder::from_edges(3, [(0u32, 1u32), (1, 2)])?;
    /// assert_eq!(g.edge_count(), 2);
    /// # Ok::<(), osn_graph::GraphError>(())
    /// ```
    pub fn from_edges<I, E>(node_count: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = E>,
        E: Into<Edge>,
    {
        let mut b = GraphBuilder::new(node_count);
        for e in edges {
            let e = e.into();
            b.add_edge(e.lo(), e.hi())?;
        }
        Ok(b.build())
    }
}

impl Extend<Edge> for GraphBuilder {
    /// Extends with edges, never panicking: invalid edges are skipped
    /// and the first rejection is deferred, to be surfaced by
    /// [`try_build`](GraphBuilder::try_build) (or inspected via
    /// [`deferred_error`](GraphBuilder::deferred_error) /
    /// [`rejected_edges`](GraphBuilder::rejected_edges)).
    /// [`build`](GraphBuilder::build) drops the rejected edges by policy.
    ///
    /// Use [`try_extend`](GraphBuilder::try_extend) to fail fast on
    /// untrusted input instead.
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        for e in iter {
            if let Err(err) = self.add_edge(e.lo(), e.hi()) {
                if self.deferred.is_none() {
                    self.deferred = Some(err);
                }
                self.rejected += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(3);
        let err = b.add_edge(NodeId::new(1), NodeId::new(1)).unwrap_err();
        assert_eq!(
            err,
            GraphError::SelfLoop {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(3);
        let err = b.add_edge(NodeId::new(0), NodeId::new(3)).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: NodeId::new(3),
                node_count: 3
            }
        );
    }

    #[test]
    fn dedups_edges_in_either_order() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(NodeId::new(0), NodeId::new(2)).unwrap());
        assert!(!b.add_edge(NodeId::new(2), NodeId::new(0)).unwrap());
        assert_eq!(b.edge_count(), 1);
        assert!(b.has_edge(NodeId::new(2), NodeId::new(0)));
    }

    #[test]
    fn build_is_insertion_order_independent() {
        let g1 = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)]).unwrap();
        let g2 = GraphBuilder::from_edges(4, [(2u32, 3u32), (1, 0), (2, 1)]).unwrap();
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn extend_accepts_valid_edges() {
        let mut b = GraphBuilder::new(3);
        b.extend([Edge::new(NodeId::new(0), NodeId::new(1))]);
        assert_eq!(b.edge_count(), 1);
        assert!(b.deferred_error().is_none());
        assert_eq!(b.rejected_edges(), 0);
        assert!(b.try_build().is_ok());
    }

    #[test]
    fn extend_defers_errors_instead_of_panicking() {
        let mut b = GraphBuilder::new(3);
        b.extend([
            Edge::new(NodeId::new(0), NodeId::new(1)),
            Edge::new(NodeId::new(0), NodeId::new(9)), // out of range: deferred
            Edge::new(NodeId::new(2), NodeId::new(2)), // self-loop: counted too
            Edge::new(NodeId::new(1), NodeId::new(2)),
        ]);
        assert_eq!(b.edge_count(), 2);
        assert_eq!(b.rejected_edges(), 2);
        // The first rejection is the one surfaced.
        assert!(matches!(
            b.deferred_error(),
            Some(GraphError::NodeOutOfRange { .. })
        ));
        // `build` drops rejected edges by policy...
        let g = b.clone().build();
        assert_eq!(g.edge_count(), 2);
        // ...while `try_build` treats them as an error.
        assert!(matches!(
            b.try_build(),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn try_extend_fails_fast_on_first_invalid_edge() {
        let mut b = GraphBuilder::new(3);
        let err = b
            .try_extend([
                Edge::new(NodeId::new(0), NodeId::new(1)),
                Edge::new(NodeId::new(1), NodeId::new(1)),
                Edge::new(NodeId::new(1), NodeId::new(2)),
            ])
            .unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { .. }));
        // Edges before the failure stay; the one after was never visited.
        assert_eq!(b.edge_count(), 1);
        // try_extend does not defer: build-by-policy is untainted.
        assert!(b.deferred_error().is_none());
        assert!(b.try_build().is_ok());
    }
}
