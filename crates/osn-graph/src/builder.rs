//! Incremental construction of immutable [`Graph`]s.

use std::collections::HashSet;

use crate::{Edge, Graph, GraphError, NodeId};

/// Builder that accumulates edges and produces an immutable [`Graph`].
///
/// The node count is fixed up front; nodes are the dense ids
/// `0..node_count`. Duplicate edges are silently deduplicated (the insert
/// reports whether the edge was new), self-loops and out-of-range
/// endpoints are rejected.
///
/// # Examples
///
/// ```
/// use osn_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(NodeId::new(0), NodeId::new(1))?;
/// b.add_edge(NodeId::new(1), NodeId::new(2))?;
/// // duplicates are fine; the second insert reports `false`:
/// assert!(!b.add_edge(NodeId::new(2), NodeId::new(1))?);
/// let g = b.build();
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    node_count: usize,
    edges: HashSet<Edge>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `node_count` nodes and no edges.
    pub fn new(node_count: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: HashSet::new(),
        }
    }

    /// Creates a builder pre-sized for roughly `edge_hint` edges.
    pub fn with_edge_capacity(node_count: usize, edge_hint: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: HashSet::with_capacity(edge_hint),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `(a, b)`.
    ///
    /// Returns `Ok(true)` if the edge was new, `Ok(false)` if it was
    /// already present.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `a == b` and
    /// [`GraphError::NodeOutOfRange`] if either endpoint is `>=
    /// node_count`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool, GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        for v in [a, b] {
            if v.index() >= self.node_count {
                return Err(GraphError::NodeOutOfRange {
                    node: v,
                    node_count: self.node_count,
                });
            }
        }
        Ok(self.edges.insert(Edge::new(a, b)))
    }

    /// Returns `true` if the edge `(a, b)` has been added.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.edges.contains(&Edge::new(a, b))
    }

    /// Builds the immutable CSR-backed [`Graph`].
    ///
    /// Edges are sorted into canonical order, so the same edge set always
    /// produces the same graph regardless of insertion order.
    pub fn build(self) -> Graph {
        let mut edges: Vec<Edge> = self.edges.into_iter().collect();
        edges.sort_unstable();
        Graph::from_sorted_dedup_edges(self.node_count, edges)
    }

    /// Convenience: builds a graph directly from an edge iterator.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GraphError`] from [`add_edge`](Self::add_edge).
    ///
    /// # Examples
    ///
    /// ```
    /// use osn_graph::{Graph, GraphBuilder};
    ///
    /// let g = GraphBuilder::from_edges(3, [(0u32, 1u32), (1, 2)])?;
    /// assert_eq!(g.edge_count(), 2);
    /// # Ok::<(), osn_graph::GraphError>(())
    /// ```
    pub fn from_edges<I, E>(node_count: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = E>,
        E: Into<Edge>,
    {
        let mut b = GraphBuilder::new(node_count);
        for e in edges {
            let e = e.into();
            b.add_edge(e.lo(), e.hi())?;
        }
        Ok(b.build())
    }
}

impl Extend<Edge> for GraphBuilder {
    /// Extends with edges, panicking on invalid ones.
    ///
    /// Use [`add_edge`](Self::add_edge) when inputs are untrusted.
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        for e in iter {
            self.add_edge(e.lo(), e.hi())
                .expect("invalid edge in Extend<Edge>");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(3);
        let err = b.add_edge(NodeId::new(1), NodeId::new(1)).unwrap_err();
        assert_eq!(
            err,
            GraphError::SelfLoop {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(3);
        let err = b.add_edge(NodeId::new(0), NodeId::new(3)).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: NodeId::new(3),
                node_count: 3
            }
        );
    }

    #[test]
    fn dedups_edges_in_either_order() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(NodeId::new(0), NodeId::new(2)).unwrap());
        assert!(!b.add_edge(NodeId::new(2), NodeId::new(0)).unwrap());
        assert_eq!(b.edge_count(), 1);
        assert!(b.has_edge(NodeId::new(2), NodeId::new(0)));
    }

    #[test]
    fn build_is_insertion_order_independent() {
        let g1 = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)]).unwrap();
        let g2 = GraphBuilder::from_edges(4, [(2u32, 3u32), (1, 0), (2, 1)]).unwrap();
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn extend_accepts_valid_edges() {
        let mut b = GraphBuilder::new(3);
        b.extend([Edge::new(NodeId::new(0), NodeId::new(1))]);
        assert_eq!(b.edge_count(), 1);
    }
}
