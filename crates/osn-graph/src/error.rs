//! Error types for graph construction, algorithms and I/O.

use std::error::Error as StdError;
use std::fmt;
use std::io;

use crate::NodeId;

/// Errors produced while building or manipulating a graph.
///
/// # Examples
///
/// ```
/// use osn_graph::{GraphBuilder, GraphError, NodeId};
///
/// let mut b = GraphBuilder::new(2);
/// let err = b.add_edge(NodeId::new(0), NodeId::new(5)).unwrap_err();
/// assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a node outside `0..node_count`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// A self-loop `(v, v)` was supplied; OSN friendships are irreflexive.
    SelfLoop {
        /// The node that would have been connected to itself.
        node: NodeId,
    },
    /// A generator or algorithm received an invalid parameter.
    InvalidParameter {
        /// Parameter name, e.g. `"attachment degree m"`.
        what: &'static str,
        /// Human-readable description of the violated constraint.
        requirement: &'static str,
    },
    /// More distinct nodes than the dense `u32` id space (or a
    /// configured cap) can address. Without this check, compaction past
    /// the limit would silently alias distinct labels onto the same id.
    TooManyNodes {
        /// The node-count limit that was exceeded.
        limit: usize,
    },
    /// A generator was asked for more edges than the dense `u32`
    /// [`EdgeId`](crate::EdgeId) space can address. Without this check,
    /// id narrowing past the limit would silently truncate.
    TooManyEdges {
        /// The requested edge count.
        requested: u128,
        /// The edge-count limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node {node} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed")
            }
            GraphError::InvalidParameter { what, requirement } => {
                write!(f, "invalid parameter {what}: {requirement}")
            }
            GraphError::TooManyNodes { limit } => {
                write!(f, "graph exceeds the {limit}-node limit")
            }
            GraphError::TooManyEdges { requested, limit } => {
                write!(
                    f,
                    "requested {requested} edges, exceeding the {limit}-edge limit"
                )
            }
        }
    }
}

impl StdError for GraphError {}

/// Errors produced while reading or writing edge-list files.
#[derive(Debug)]
#[non_exhaustive]
pub enum IoError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed as an edge.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content (truncated).
        content: String,
    },
    /// The parsed edges violated a graph invariant.
    Graph(GraphError),
    /// A line exceeded the configured maximum length.
    LineTooLong {
        /// 1-based line number.
        line: usize,
        /// The configured byte limit.
        limit: usize,
    },
    /// A line was not valid UTF-8.
    InvalidUtf8 {
        /// 1-based line number.
        line: usize,
    },
    /// The input declared or accumulated more nodes/edges than the
    /// configured cap.
    LimitExceeded {
        /// Which limit, e.g. `"nodes"` or `"edges"`.
        what: &'static str,
        /// The configured cap.
        limit: usize,
    },
    /// A duplicate edge was found under [`DuplicatePolicy::Reject`].
    ///
    /// [`DuplicatePolicy::Reject`]: crate::io::DuplicatePolicy::Reject
    DuplicateEdge {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// Original (label) endpoints of the edge.
        a: u64,
        /// Other endpoint.
        b: u64,
    },
    /// A self-loop was found under [`SelfLoopPolicy::Reject`].
    ///
    /// [`SelfLoopPolicy::Reject`]: crate::io::SelfLoopPolicy::Reject
    SelfLoopEdge {
        /// 1-based line number.
        line: usize,
        /// The node (original label) looping onto itself.
        node: u64,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "line {line}: cannot parse edge from {content:?}")
            }
            IoError::Graph(e) => write!(f, "invalid edge list: {e}"),
            IoError::LineTooLong { line, limit } => {
                write!(f, "line {line}: longer than the {limit}-byte limit")
            }
            IoError::InvalidUtf8 { line } => {
                write!(f, "line {line}: not valid UTF-8")
            }
            IoError::LimitExceeded { what, limit } => {
                write!(f, "edge list exceeds the {limit}-{what} limit")
            }
            IoError::DuplicateEdge { line, a, b } => {
                write!(f, "line {line}: duplicate edge ({a}, {b})")
            }
            IoError::SelfLoopEdge { line, node } => {
                write!(f, "line {line}: self-loop on node {node}")
            }
        }
    }
}

impl StdError for IoError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = GraphError::NodeOutOfRange {
            node: NodeId::new(9),
            node_count: 3,
        };
        assert_eq!(e.to_string(), "node 9 out of range for graph with 3 nodes");
        let e = GraphError::SelfLoop {
            node: NodeId::new(1),
        };
        assert_eq!(e.to_string(), "self-loop on node 1 is not allowed");
        let e = GraphError::InvalidParameter {
            what: "m",
            requirement: "must be >= 1",
        };
        assert_eq!(e.to_string(), "invalid parameter m: must be >= 1");
    }

    #[test]
    fn io_error_wraps_sources() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e = IoError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));

        let e = IoError::Parse {
            line: 4,
            content: "a b".into(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("line 4"));

        let e = IoError::from(GraphError::SelfLoop {
            node: NodeId::new(0),
        });
        assert!(e.source().is_some());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
        assert_send_sync::<IoError>();
    }
}
