//! Community-affiliation graph model (AGM-style) with overlapping
//! communities.
//!
//! Collaboration networks like DBLP are built from *overlapping* groups
//! (papers, labs, venues): authors belong to several, and each group is
//! densely connected internally. The planted-partition model captures
//! density but not overlap; this generator assigns every node a random
//! number of community memberships (sizes drawn from a truncated power
//! law) and connects members of each community independently, which
//! reproduces the high clustering *and* the inter-community bridging by
//! multi-membership hubs.

use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Parameters for [`community_affiliation`].
///
/// # Examples
///
/// ```
/// use osn_graph::generators::{community_affiliation, AgmParams};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let params = AgmParams::new(2.0, 5, 60, 0.4)?;
/// let g = community_affiliation(500, &params, &mut StdRng::seed_from_u64(1))?;
/// assert_eq!(g.node_count(), 500);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgmParams {
    /// Mean community memberships per node (≥ 1 draws a `1 +
    /// Poisson-like` count).
    memberships_per_node: f64,
    /// Smallest community size.
    min_size: usize,
    /// Largest community size.
    max_size: usize,
    /// Edge probability inside each community.
    p_in: f64,
}

impl AgmParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `memberships_per_node
    /// < 1`, sizes are inverted or zero, or `p_in` is outside `[0, 1]`.
    pub fn new(
        memberships_per_node: f64,
        min_size: usize,
        max_size: usize,
        p_in: f64,
    ) -> Result<Self, GraphError> {
        if memberships_per_node < 1.0 || !memberships_per_node.is_finite() {
            return Err(GraphError::InvalidParameter {
                what: "memberships per node",
                requirement: "must be at least 1",
            });
        }
        if min_size < 2 || min_size > max_size {
            return Err(GraphError::InvalidParameter {
                what: "community size bounds",
                requirement: "need 2 <= min_size <= max_size",
            });
        }
        if !(0.0..=1.0).contains(&p_in) {
            return Err(GraphError::InvalidParameter {
                what: "intra-community probability p_in",
                requirement: "must be within [0, 1]",
            });
        }
        Ok(AgmParams {
            memberships_per_node,
            min_size,
            max_size,
            p_in,
        })
    }

    /// DBLP-flavored defaults: ~2 memberships per author, communities of
    /// 5–60 with intra-density 0.4.
    pub fn dblp_like() -> Self {
        AgmParams {
            memberships_per_node: 2.0,
            min_size: 5,
            max_size: 60,
            p_in: 0.4,
        }
    }
}

/// Samples an overlapping-community affiliation graph over `n` nodes.
///
/// Community sizes follow a power law (`∝ s^{-2}`) truncated to the
/// configured band; communities draw members uniformly until every node
/// has its target membership count (in expectation); each community's
/// member pairs are connected independently with `p_in`.
///
/// # Errors
///
/// Propagates [`GraphError`] from construction (parameters are checked
/// by [`AgmParams::new`]).
pub fn community_affiliation<R: Rng + ?Sized>(
    n: usize,
    params: &AgmParams,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return Ok(b.build());
    }
    // Draw communities until the total membership mass reaches
    // n · memberships_per_node.
    let target_mass = (n as f64 * params.memberships_per_node) as usize;
    let mut mass = 0usize;
    // Cumulative weights for size ∝ s^{-2} on [min_size, max_size].
    let sizes: Vec<usize> = (params.min_size..=params.max_size.min(n)).collect();
    let weights: Vec<f64> = sizes.iter().map(|&s| (s as f64).powi(-2)).collect();
    let total_w: f64 = weights.iter().sum();
    let mut members: Vec<u32> = Vec::new();
    while mass < target_mass {
        // Sample a community size.
        let mut r = rng.gen_range(0.0..total_w);
        let mut size = *sizes.last().expect("non-empty size band");
        for (i, &w) in weights.iter().enumerate() {
            if r < w {
                size = sizes[i];
                break;
            }
            r -= w;
        }
        // Draw distinct members uniformly.
        members.clear();
        while members.len() < size {
            let v = rng.gen_range(0..n as u32);
            if !members.contains(&v) {
                members.push(v);
            }
        }
        mass += size;
        // Connect member pairs with p_in.
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if rng.gen_bool(params.p_in) {
                    b.add_edge(NodeId::new(members[i]), NodeId::new(members[j]))?;
                }
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::global_clustering_coefficient;
    use crate::generators::erdos_renyi_gnm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_validate() {
        assert!(AgmParams::new(0.5, 5, 60, 0.4).is_err());
        assert!(AgmParams::new(2.0, 1, 60, 0.4).is_err());
        assert!(AgmParams::new(2.0, 60, 5, 0.4).is_err());
        assert!(AgmParams::new(2.0, 5, 60, 1.4).is_err());
        assert!(AgmParams::new(2.0, 5, 60, 0.4).is_ok());
    }

    #[test]
    fn generates_requested_node_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = community_affiliation(400, &AgmParams::dblp_like(), &mut rng).unwrap();
        assert_eq!(g.node_count(), 400);
        assert!(g.edge_count() > 400);
    }

    #[test]
    fn clusters_far_more_than_er_at_equal_density() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = community_affiliation(600, &AgmParams::dblp_like(), &mut rng).unwrap();
        let er = erdos_renyi_gnm(600, g.edge_count(), &mut rng).unwrap();
        let c_agm = global_clustering_coefficient(&g);
        let c_er = global_clustering_coefficient(&er);
        assert!(
            c_agm > 5.0 * c_er,
            "AGM clustering {c_agm} should dwarf ER {c_er}"
        );
    }

    #[test]
    fn tiny_graphs_degenerate_gracefully() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = community_affiliation(1, &AgmParams::dblp_like(), &mut rng).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = AgmParams::dblp_like();
        let g1 = community_affiliation(200, &p, &mut StdRng::seed_from_u64(7)).unwrap();
        let g2 = community_affiliation(200, &p, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(g1.edges(), g2.edges());
    }
}
