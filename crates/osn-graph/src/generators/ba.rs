//! Barabási–Albert preferential attachment.

use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Samples a Barabási–Albert preferential-attachment graph.
///
/// Starts from a clique on `m + 1` seed nodes; every later node attaches
/// to `m` distinct existing nodes chosen proportionally to their current
/// degree. The result has a power-law degree tail — the degree
/// heterogeneity (a few hubs, many low-degree users) that drives the
/// MaxDegree/PageRank baselines and the cautious-user degree band in the
/// ACCU experiments.
///
/// The number of edges is `m·(m+1)/2 + (n − m − 1)·m`, so `m ≈ m_target /
/// n_target` reproduces a dataset's edge density.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m == 0` or `n < m + 1`.
///
/// # Examples
///
/// ```
/// use osn_graph::generators::barabasi_albert;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let g = barabasi_albert(1_000, 5, &mut rng)?;
/// assert_eq!(g.node_count(), 1_000);
/// assert!(g.max_degree() > 20); // hubs emerge
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if m == 0 {
        return Err(GraphError::InvalidParameter {
            what: "attachment degree m",
            requirement: "must be at least 1",
        });
    }
    if n < m + 1 {
        return Err(GraphError::InvalidParameter {
            what: "node count n",
            requirement: "must be at least m + 1",
        });
    }
    let n32 = super::check_node_count(n)?;
    let target = super::check_edge_count(
        (m as u128) * (m as u128 + 1) / 2 + (n as u128 - m as u128 - 1) * m as u128,
    )?;
    // Exact narrowing: m < n ≤ u32::MAX, checked above.
    let m32 = m as u32;
    let mut b = GraphBuilder::with_edge_capacity(n, target);
    // `endpoints` holds every edge endpoint once; drawing a uniform
    // element is exactly degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * target);
    for i in 0..=m32 {
        for j in (i + 1)..=m32 {
            b.add_edge(NodeId::new(i), NodeId::new(j))?;
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    let mut chosen: Vec<u32> = Vec::with_capacity(m);
    for v in (m32 + 1)..n32 {
        chosen.clear();
        // Draw m distinct targets by rejection; duplicates are rare
        // because m << current node count in all realistic settings.
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(NodeId::new(v), NodeId::new(t))?;
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(barabasi_albert(10, 0, &mut rng).is_err());
        assert!(barabasi_albert(3, 3, &mut rng).is_err());
    }

    #[test]
    fn edge_count_formula_holds() {
        let mut rng = StdRng::seed_from_u64(1);
        let (n, m) = (200usize, 4usize);
        let g = barabasi_albert(n, m, &mut rng).unwrap();
        assert_eq!(g.edge_count(), m * (m + 1) / 2 + (n - m - 1) * m);
        assert_eq!(g.node_count(), n);
    }

    #[test]
    fn every_late_node_has_degree_at_least_m() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(300, 3, &mut rng).unwrap();
        for v in g.nodes() {
            assert!(g.degree(v) >= 3, "node {v} has degree {}", g.degree(v));
        }
    }

    #[test]
    fn heavy_tail_emerges() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(2_000, 5, &mut rng).unwrap();
        // In a BA graph the max degree grows like sqrt(n); an ER graph
        // with the same density would concentrate near the mean (~10).
        assert!(g.max_degree() > 3 * g.average_degree() as usize);
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(42)).unwrap();
        let g2 = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(42)).unwrap();
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn huge_edge_requests_fail_with_typed_error() {
        // ~5·10¹² edges: far over the u32 edge-id space. Must fail
        // before any generation work, not truncate ids.
        let mut rng = StdRng::seed_from_u64(5);
        let err = barabasi_albert(500_000_000, 10_000, &mut rng).unwrap_err();
        assert!(matches!(err, GraphError::TooManyEdges { .. }), "{err}");
    }

    #[test]
    fn minimal_case_is_a_clique() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = barabasi_albert(3, 2, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 3);
    }
}
