//! Planted-partition (stochastic block) community graphs.

use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, NodeId};

use super::erdos_renyi_gnp;

/// Parameters for [`planted_partition`].
///
/// Nodes are split into contiguous communities; edges appear with
/// probability `p_in` inside a community and `p_out` across communities.
///
/// # Examples
///
/// ```
/// use osn_graph::generators::{planted_partition, PlantedPartition};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let params = PlantedPartition::new(vec![50, 50, 100], 0.2, 0.002)?;
/// let g = planted_partition(&params, &mut StdRng::seed_from_u64(7))?;
/// assert_eq!(g.node_count(), 200);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedPartition {
    sizes: Vec<usize>,
    p_in: f64,
    p_out: f64,
}

impl PlantedPartition {
    /// Creates validated planted-partition parameters.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if any community is
    /// empty, or either probability is outside `[0, 1]`.
    pub fn new(sizes: Vec<usize>, p_in: f64, p_out: f64) -> Result<Self, GraphError> {
        if sizes.is_empty() || sizes.contains(&0) {
            return Err(GraphError::InvalidParameter {
                what: "community sizes",
                requirement: "must be non-empty with positive sizes",
            });
        }
        for (name, p) in [("p_in", p_in), ("p_out", p_out)] {
            if !(0.0..=1.0).contains(&p) {
                let what = if name == "p_in" { "p_in" } else { "p_out" };
                return Err(GraphError::InvalidParameter {
                    what,
                    requirement: "must be within [0, 1]",
                });
            }
        }
        Ok(PlantedPartition { sizes, p_in, p_out })
    }

    /// Community sizes, in node-id order.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Intra-community edge probability.
    pub fn p_in(&self) -> f64 {
        self.p_in
    }

    /// Inter-community edge probability.
    pub fn p_out(&self) -> f64 {
        self.p_out
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// Community index of each node (contiguous blocks).
    pub fn memberships(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.node_count());
        for (c, &s) in self.sizes.iter().enumerate() {
            out.extend(std::iter::repeat_n(c, s));
        }
        out
    }
}

/// Samples a planted-partition graph.
///
/// This is the stand-in for community-structured collaboration networks
/// (the paper's DBLP dataset): dense clusters connected by a sparse
/// backbone. Mutual-friend counts are high within communities, which is
/// exactly the regime where cautious-user thresholds are reachable.
///
/// # Errors
///
/// Propagates [`GraphError`] from graph construction (parameters are
/// validated by [`PlantedPartition::new`]).
pub fn planted_partition<R: Rng + ?Sized>(
    params: &PlantedPartition,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let n = params.node_count();
    let mut b = GraphBuilder::new(n);
    // Intra-community edges: sample each block as a small G(n_c, p_in).
    let mut offset = 0usize;
    for &s in &params.sizes {
        let sub = erdos_renyi_gnp(s, params.p_in, rng)?;
        for e in sub.edges() {
            b.add_edge(
                NodeId::from(offset + e.lo().index()),
                NodeId::from(offset + e.hi().index()),
            )?;
        }
        offset += s;
    }
    // Inter-community edges: geometric skipping over cross pairs, block
    // by block, to stay O(expected edges).
    if params.p_out > 0.0 {
        let memberships = params.memberships();
        if params.p_out >= 1.0 {
            for i in 0..n {
                for j in (i + 1)..n {
                    if memberships[i] != memberships[j] {
                        b.add_edge(NodeId::from(i), NodeId::from(j))?;
                    }
                }
            }
        } else {
            let lnq = (1.0 - params.p_out).ln();
            let (mut v, mut w) = (1usize, -1i64);
            while v < n {
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                w += 1 + (r.ln() / lnq).floor() as i64;
                while w >= v as i64 && v < n {
                    w -= v as i64;
                    v += 1;
                }
                if v < n && memberships[v] != memberships[w as usize] {
                    b.add_edge(NodeId::from(v), NodeId::from(w as usize))?;
                }
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(PlantedPartition::new(vec![], 0.1, 0.01).is_err());
        assert!(PlantedPartition::new(vec![5, 0], 0.1, 0.01).is_err());
        assert!(PlantedPartition::new(vec![5], 1.1, 0.01).is_err());
        assert!(PlantedPartition::new(vec![5], 0.1, -0.2).is_err());
    }

    #[test]
    fn memberships_are_contiguous_blocks() {
        let p = PlantedPartition::new(vec![2, 3], 0.5, 0.0).unwrap();
        assert_eq!(p.memberships(), vec![0, 0, 1, 1, 1]);
        assert_eq!(p.node_count(), 5);
        assert_eq!(p.sizes(), &[2, 3]);
    }

    #[test]
    fn no_cross_edges_when_p_out_zero() {
        let p = PlantedPartition::new(vec![30, 30], 0.5, 0.0).unwrap();
        let g = planted_partition(&p, &mut StdRng::seed_from_u64(0)).unwrap();
        let m = p.memberships();
        for e in g.edges() {
            assert_eq!(m[e.lo().index()], m[e.hi().index()]);
        }
    }

    #[test]
    fn intra_density_exceeds_inter_density() {
        let p = PlantedPartition::new(vec![100, 100], 0.2, 0.01).unwrap();
        let g = planted_partition(&p, &mut StdRng::seed_from_u64(1)).unwrap();
        let m = p.memberships();
        let (mut intra, mut inter) = (0usize, 0usize);
        for e in g.edges() {
            if m[e.lo().index()] == m[e.hi().index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // Expected intra ≈ 2*C(100,2)*0.2 = 1980; inter ≈ 100*100*0.01 = 100.
        assert!(intra > 5 * inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn p_out_one_connects_all_cross_pairs() {
        let p = PlantedPartition::new(vec![3, 3], 0.0, 1.0).unwrap();
        let g = planted_partition(&p, &mut StdRng::seed_from_u64(2)).unwrap();
        assert_eq!(g.edge_count(), 9);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = PlantedPartition::new(vec![40, 60], 0.15, 0.02).unwrap();
        let g1 = planted_partition(&p, &mut StdRng::seed_from_u64(5)).unwrap();
        let g2 = planted_partition(&p, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(g1.edges(), g2.edges());
    }
}
