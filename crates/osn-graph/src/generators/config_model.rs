//! Power-law configuration model.

use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Samples a power-law degree sequence with exponent `gamma` truncated to
/// `[min_deg, max_deg]`, adjusted to have an even sum.
///
/// Degrees are drawn by inverse-transform sampling from the discrete
/// distribution `P(d) ∝ d^(−gamma)` on `min_deg..=max_deg`. If the sum is
/// odd, one degree is incremented (or decremented at the cap) to make the
/// stub count even, as the configuration model requires.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `min_deg == 0`,
/// `min_deg > max_deg`, or `gamma <= 0`.
///
/// # Examples
///
/// ```
/// use osn_graph::generators::powerlaw_degree_sequence;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let degs = powerlaw_degree_sequence(1_000, 2.5, 2, 100, &mut rng)?;
/// assert_eq!(degs.len(), 1_000);
/// assert_eq!(degs.iter().sum::<usize>() % 2, 0);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn powerlaw_degree_sequence<R: Rng + ?Sized>(
    n: usize,
    gamma: f64,
    min_deg: usize,
    max_deg: usize,
    rng: &mut R,
) -> Result<Vec<usize>, GraphError> {
    if min_deg == 0 || min_deg > max_deg {
        return Err(GraphError::InvalidParameter {
            what: "degree bounds",
            requirement: "need 1 <= min_deg <= max_deg",
        });
    }
    if !gamma.is_finite() || gamma <= 0.0 {
        return Err(GraphError::InvalidParameter {
            what: "power-law exponent gamma",
            requirement: "must be positive and finite",
        });
    }
    // Cumulative weights of d^(-gamma) over the truncated support.
    let mut cum = Vec::with_capacity(max_deg - min_deg + 1);
    let mut acc = 0.0f64;
    for d in min_deg..=max_deg {
        acc += (d as f64).powf(-gamma);
        cum.push(acc);
    }
    let total = acc;
    let mut degs = Vec::with_capacity(n);
    for _ in 0..n {
        let r = rng.gen_range(0.0..total);
        let i = cum.partition_point(|&c| c < r);
        degs.push(min_deg + i.min(max_deg - min_deg));
    }
    if degs.iter().sum::<usize>() % 2 == 1 {
        // Repair parity without leaving the [min_deg, max_deg] band.
        if let Some(d) = degs.iter_mut().find(|d| **d < max_deg) {
            *d += 1;
        } else {
            degs[0] -= 1; // all at cap; min_deg<=cap-? safe since cap>=1
        }
    }
    Ok(degs)
}

/// Samples a simple graph whose degree sequence approximately follows a
/// truncated power law, via the erased configuration model.
///
/// Stubs are shuffled and paired; self-loops and duplicate edges are
/// erased (dropped), so realized degrees can fall slightly below their
/// targets — the standard "erased" variant, which keeps the graph simple
/// as required by the OSN model.
///
/// This is the stand-in for collaboration networks like DBLP where degree
/// is heavy-tailed but hubs are weaker than in preferential-attachment
/// social graphs.
///
/// # Errors
///
/// Propagates parameter errors from [`powerlaw_degree_sequence`].
///
/// # Examples
///
/// ```
/// use osn_graph::generators::powerlaw_configuration;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let g = powerlaw_configuration(500, 2.3, 2, 50, &mut rng)?;
/// assert_eq!(g.node_count(), 500);
/// assert!(g.edge_count() > 400);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn powerlaw_configuration<R: Rng + ?Sized>(
    n: usize,
    gamma: f64,
    min_deg: usize,
    max_deg: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let degs = powerlaw_degree_sequence(n, gamma, min_deg, max_deg.min(n.saturating_sub(1)), rng)?;
    configuration_from_degrees(&degs, rng)
}

/// Pairs stubs of the given degree sequence, erasing self-loops and
/// duplicates (erased configuration model).
fn configuration_from_degrees<R: Rng + ?Sized>(
    degs: &[usize],
    rng: &mut R,
) -> Result<Graph, GraphError> {
    super::check_node_count(degs.len())?;
    let stub_count: u128 = degs.iter().map(|&d| d as u128).sum();
    super::check_edge_count(stub_count / 2)?;
    let mut stubs: Vec<u32> = Vec::with_capacity(degs.iter().sum());
    for (v, &d) in degs.iter().enumerate() {
        // Exact narrowing: v < degs.len() ≤ u32::MAX, checked above.
        for _ in 0..d {
            stubs.push(v as u32);
        }
    }
    // Fisher–Yates shuffle, then pair consecutive stubs.
    for i in (1..stubs.len()).rev() {
        let j = rng.gen_range(0..=i);
        stubs.swap(i, j);
    }
    let mut b = GraphBuilder::with_edge_capacity(degs.len(), stubs.len() / 2);
    for pair in stubs.chunks_exact(2) {
        let (a, c) = (pair[0], pair[1]);
        if a != c {
            // Duplicate edges return Ok(false); both erasures are silent.
            b.add_edge(NodeId::new(a), NodeId::new(c))?;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequence_respects_bounds_and_parity() {
        let mut rng = StdRng::seed_from_u64(0);
        let degs = powerlaw_degree_sequence(500, 2.1, 3, 40, &mut rng).unwrap();
        assert!(degs.iter().all(|&d| (3..=41).contains(&d)));
        assert_eq!(degs.iter().sum::<usize>() % 2, 0);
    }

    #[test]
    fn sequence_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(powerlaw_degree_sequence(10, 2.0, 0, 5, &mut rng).is_err());
        assert!(powerlaw_degree_sequence(10, 2.0, 6, 5, &mut rng).is_err());
        assert!(powerlaw_degree_sequence(10, -1.0, 1, 5, &mut rng).is_err());
        assert!(powerlaw_degree_sequence(10, f64::NAN, 1, 5, &mut rng).is_err());
    }

    #[test]
    fn smaller_gamma_means_heavier_tail() {
        let d_heavy =
            powerlaw_degree_sequence(2_000, 1.8, 2, 200, &mut StdRng::seed_from_u64(1)).unwrap();
        let d_light =
            powerlaw_degree_sequence(2_000, 3.5, 2, 200, &mut StdRng::seed_from_u64(1)).unwrap();
        let mean = |d: &[usize]| d.iter().sum::<usize>() as f64 / d.len() as f64;
        assert!(mean(&d_heavy) > mean(&d_light));
    }

    #[test]
    fn graph_degrees_do_not_exceed_targets() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = powerlaw_configuration(400, 2.5, 2, 30, &mut rng).unwrap();
        // Erasure only removes stubs, never adds.
        for v in g.nodes() {
            assert!(g.degree(v) <= 31);
        }
    }

    #[test]
    fn erasure_loses_few_edges_for_sparse_sequences() {
        let mut rng = StdRng::seed_from_u64(3);
        let degs = powerlaw_degree_sequence(1_000, 2.5, 2, 50, &mut rng).unwrap();
        let target_edges = degs.iter().sum::<usize>() / 2;
        let g = configuration_from_degrees(&degs, &mut rng).unwrap();
        assert!(
            g.edge_count() as f64 > 0.9 * target_edges as f64,
            "erased too many: {} of {target_edges}",
            g.edge_count()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = powerlaw_configuration(300, 2.2, 2, 40, &mut StdRng::seed_from_u64(9)).unwrap();
        let g2 = powerlaw_configuration(300, 2.2, 2, 40, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(g1.edges(), g2.edges());
    }
}
