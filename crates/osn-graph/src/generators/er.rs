//! Erdős–Rényi random graphs.

use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Samples `G(n, p)`: each of the `n·(n−1)/2` possible edges exists
/// independently with probability `p`.
///
/// Uses geometric edge skipping, so the running time is
/// `O(n + expected edges)` rather than `O(n²)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]` or
/// not finite.
///
/// # Examples
///
/// ```
/// use osn_graph::generators::erdos_renyi_gnp;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let g = erdos_renyi_gnp(100, 0.05, &mut rng)?;
/// assert_eq!(g.node_count(), 100);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn erdos_renyi_gnp<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            what: "edge probability p",
            requirement: "must be within [0, 1]",
        });
    }
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return Ok(b.build());
    }
    if p == 1.0 {
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                b.add_edge(NodeId::new(i), NodeId::new(j))?;
            }
        }
        return Ok(b.build());
    }
    // Batagelj–Brandes skipping over the strictly-lower-triangular pairs.
    let lnq = (1.0 - p).ln();
    let (mut v, mut w) = (1usize, -1i64);
    while v < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        w += 1 + (r.ln() / lnq).floor() as i64;
        while w >= v as i64 && v < n {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            b.add_edge(NodeId::from(v), NodeId::from(w as usize))?;
        }
    }
    Ok(b.build())
}

/// Samples `G(n, m)`: a graph with exactly `m` distinct edges chosen
/// uniformly among all simple graphs with `n` nodes and `m` edges.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m` exceeds `n·(n−1)/2`.
///
/// # Examples
///
/// ```
/// use osn_graph::generators::erdos_renyi_gnm;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let g = erdos_renyi_gnm(50, 200, &mut rng)?;
/// assert_eq!(g.edge_count(), 200);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max_edges {
        return Err(GraphError::InvalidParameter {
            what: "edge count m",
            requirement: "must be at most n*(n-1)/2",
        });
    }
    let mut b = GraphBuilder::with_edge_capacity(n, m);
    // Rejection sampling is fine while m is far below the maximum; fall
    // back to dense enumeration + partial shuffle when the graph is dense.
    if (m as f64) < 0.5 * max_edges as f64 {
        while b.edge_count() < m {
            let a = rng.gen_range(0..n as u32);
            let c = rng.gen_range(0..n as u32);
            if a != c {
                b.add_edge(NodeId::new(a), NodeId::new(c))?;
            }
        }
    } else {
        let mut all: Vec<(u32, u32)> = Vec::with_capacity(max_edges);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                all.push((i, j));
            }
        }
        // Partial Fisher–Yates: the first m entries become a uniform
        // m-subset.
        for i in 0..m {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
            let (a, c) = all[i];
            b.add_edge(NodeId::new(a), NodeId::new(c))?;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(erdos_renyi_gnp(10, -0.1, &mut rng).is_err());
        assert!(erdos_renyi_gnp(10, 1.5, &mut rng).is_err());
        assert!(erdos_renyi_gnp(10, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_gnp(10, 0.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 0);
        let g = erdos_renyi_gnp(10, 1.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 45);
    }

    #[test]
    fn gnp_edge_count_is_near_expectation() {
        let mut rng = StdRng::seed_from_u64(2);
        let (n, p) = (500, 0.02);
        let g = erdos_renyi_gnp(n, p, &mut rng).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let sd = (expected * (1.0 - p)).sqrt();
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 6.0 * sd,
            "edge count {got} too far from expectation {expected}"
        );
    }

    #[test]
    fn gnm_produces_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(n, m) in &[(10usize, 0usize), (10, 45), (20, 30), (30, 300)] {
            let g = erdos_renyi_gnm(n, m, &mut rng).unwrap();
            assert_eq!(g.edge_count(), m, "n={n} m={m}");
            assert_eq!(g.node_count(), n);
        }
    }

    #[test]
    fn gnm_rejects_impossible_edge_count() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(erdos_renyi_gnm(4, 7, &mut rng).is_err());
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let g1 = erdos_renyi_gnp(200, 0.03, &mut StdRng::seed_from_u64(99)).unwrap();
        let g2 = erdos_renyi_gnp(200, 0.03, &mut StdRng::seed_from_u64(99)).unwrap();
        assert_eq!(g1.edges(), g2.edges());
        let g3 = erdos_renyi_gnm(200, 300, &mut StdRng::seed_from_u64(99)).unwrap();
        let g4 = erdos_renyi_gnm(200, 300, &mut StdRng::seed_from_u64(99)).unwrap();
        assert_eq!(g3.edges(), g4.edges());
    }
}
