//! Random-graph generators.
//!
//! These provide the synthetic stand-ins for the SNAP datasets used in the
//! ACCU paper (Facebook / Slashdot / Twitter / DBLP): preferential
//! attachment for heavy-tailed social networks, a power-law configuration
//! model, small-world rewiring, Erdős–Rényi baselines, planted-partition
//! and overlapping-community (AGM) models for collaboration networks,
//! and R-MAT for Graph500-style benchmark graphs.
//!
//! All generators are deterministic given the RNG state, so experiments
//! are reproducible from a seed.

mod agm;
mod ba;
mod community;
mod config_model;
mod er;
mod rmat;
mod ws;

pub use agm::{community_affiliation, AgmParams};
pub use ba::barabasi_albert;
pub use community::{planted_partition, PlantedPartition};
pub use config_model::{powerlaw_configuration, powerlaw_degree_sequence};
pub use er::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use rmat::{rmat, RmatParams};
pub use ws::watts_strogatz;
