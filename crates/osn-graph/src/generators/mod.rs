//! Random-graph generators.
//!
//! These provide the synthetic stand-ins for the SNAP datasets used in the
//! ACCU paper (Facebook / Slashdot / Twitter / DBLP): preferential
//! attachment for heavy-tailed social networks, a power-law configuration
//! model, small-world rewiring, Erdős–Rényi baselines, planted-partition
//! and overlapping-community (AGM) models for collaboration networks,
//! and R-MAT for Graph500-style benchmark graphs.
//!
//! All generators are deterministic given the RNG state, so experiments
//! are reproducible from a seed.

mod agm;
mod ba;
mod community;
mod config_model;
mod er;
mod rmat;
mod ws;

use crate::GraphError;

/// Guards a requested node count against the dense `u32` id space,
/// returning the count as `u32` so callers narrow through a checked
/// value instead of a silent `as` cast.
pub(crate) fn check_node_count(n: usize) -> Result<u32, GraphError> {
    u32::try_from(n).map_err(|_| GraphError::TooManyNodes {
        limit: u32::MAX as usize,
    })
}

/// Guards a requested edge count against the dense `u32`
/// [`EdgeId`](crate::EdgeId) space: ≥4-billion-edge requests fail with
/// a typed error instead of truncating during id assignment.
pub(crate) fn check_edge_count(m: u128) -> Result<usize, GraphError> {
    if m > u32::MAX as u128 {
        return Err(GraphError::TooManyEdges {
            requested: m,
            limit: u32::MAX as usize,
        });
    }
    Ok(m as usize)
}

pub use agm::{community_affiliation, AgmParams};
pub use ba::barabasi_albert;
pub use community::{planted_partition, PlantedPartition};
pub use config_model::{powerlaw_configuration, powerlaw_degree_sequence};
pub use er::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use rmat::{rmat, RmatParams};
pub use ws::watts_strogatz;
