//! R-MAT (recursive matrix) graphs — the generator family behind many
//! SNAP-style benchmark graphs (Graph500 uses it too).

use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Parameters of the R-MAT recursive quadrant distribution.
///
/// The adjacency matrix is split into quadrants with probabilities
/// `(a, b, c, d)`, recursively, to place each edge. `a + b + c + d`
/// must be 1 (within tolerance); `a > d` yields skewed, heavy-tailed
/// graphs. The classic parameterization is `(0.57, 0.19, 0.19, 0.05)`.
///
/// # Examples
///
/// ```
/// use osn_graph::generators::RmatParams;
/// let p = RmatParams::new(0.57, 0.19, 0.19, 0.05)?;
/// assert!((p.a() - 0.57).abs() < 1e-12);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    a: f64,
    b: f64,
    c: f64,
    d: f64,
}

impl RmatParams {
    /// Creates validated R-MAT quadrant probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if any probability is
    /// negative or the four do not sum to 1 (tolerance `1e-9`).
    pub fn new(a: f64, b: f64, c: f64, d: f64) -> Result<Self, GraphError> {
        if [a, b, c, d].iter().any(|p| !(0.0..=1.0).contains(p)) {
            return Err(GraphError::InvalidParameter {
                what: "R-MAT quadrant probability",
                requirement: "each must lie in [0, 1]",
            });
        }
        if ((a + b + c + d) - 1.0).abs() > 1e-9 {
            return Err(GraphError::InvalidParameter {
                what: "R-MAT quadrant probabilities",
                requirement: "must sum to 1",
            });
        }
        Ok(RmatParams { a, b, c, d })
    }

    /// The classic skewed parameterization `(0.57, 0.19, 0.19, 0.05)`.
    pub fn classic() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }

    /// Quadrant probability `a` (top-left: hub-to-hub).
    pub fn a(&self) -> f64 {
        self.a
    }
}

/// Samples an undirected R-MAT graph with `2^scale` nodes and
/// (approximately) `edge_factor · 2^scale` distinct edges.
///
/// Edges are drawn by recursive quadrant descent; self-loops and
/// duplicates are redrawn up to a retry budget, so the realized edge
/// count can fall slightly short on dense/skewed settings.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `scale` is 0 or exceeds
/// 30.
///
/// # Examples
///
/// ```
/// use osn_graph::generators::{rmat, RmatParams};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let g = rmat(10, 8, RmatParams::classic(), &mut rng)?;
/// assert_eq!(g.node_count(), 1024);
/// assert!(g.edge_count() > 7_000);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn rmat<R: Rng + ?Sized>(
    scale: u32,
    edge_factor: usize,
    params: RmatParams,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if scale == 0 || scale > 30 {
        return Err(GraphError::InvalidParameter {
            what: "R-MAT scale",
            requirement: "must be in 1..=30",
        });
    }
    let n = 1usize << scale;
    let target = super::check_edge_count((edge_factor as u128) * (n as u128))?;
    let mut builder = GraphBuilder::with_edge_capacity(n, target);
    let ab = params.a + params.b;
    let a_frac = params.a / ab;
    let c_frac = params.c / (params.c + params.d);
    let mut budget = target * 8; // retry budget for loops/duplicates
    let mut added = 0usize;
    while added < target && budget > 0 {
        budget -= 1;
        let (mut lo_u, mut lo_v) = (0usize, 0usize);
        let mut half = n >> 1;
        while half > 0 {
            let r: f64 = rng.gen();
            let (down, right) = if r < ab {
                (false, r >= a_frac * ab)
            } else {
                (true, (r - ab) >= c_frac * (1.0 - ab))
            };
            if down {
                lo_u += half;
            }
            if right {
                lo_v += half;
            }
            half >>= 1;
        }
        if lo_u != lo_v && builder.add_edge(NodeId::from(lo_u), NodeId::from(lo_v))? {
            added += 1;
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_validate() {
        assert!(RmatParams::new(0.5, 0.5, 0.5, 0.5).is_err());
        assert!(RmatParams::new(-0.1, 0.5, 0.3, 0.3).is_err());
        assert!(RmatParams::new(0.25, 0.25, 0.25, 0.25).is_ok());
    }

    #[test]
    fn scale_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(rmat(0, 4, RmatParams::classic(), &mut rng).is_err());
        assert!(rmat(31, 4, RmatParams::classic(), &mut rng).is_err());
    }

    #[test]
    fn node_count_is_power_of_two() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = rmat(8, 4, RmatParams::classic(), &mut rng).unwrap();
        assert_eq!(g.node_count(), 256);
        assert!(g.edge_count() > 256 * 3);
    }

    #[test]
    fn classic_parameters_are_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let skewed = rmat(10, 8, RmatParams::classic(), &mut rng).unwrap();
        let uniform = rmat(
            10,
            8,
            RmatParams::new(0.25, 0.25, 0.25, 0.25).unwrap(),
            &mut rng,
        )
        .unwrap();
        assert!(
            skewed.max_degree() > 2 * uniform.max_degree(),
            "skewed max {} vs uniform max {}",
            skewed.max_degree(),
            uniform.max_degree()
        );
    }

    #[test]
    fn huge_edge_requests_fail_with_typed_error() {
        let mut rng = StdRng::seed_from_u64(4);
        // 2³⁰ nodes × 5000 ≈ 5.4·10¹² edges: over the u32 id space.
        let err = rmat(30, 5_000, RmatParams::classic(), &mut rng).unwrap_err();
        assert!(matches!(err, GraphError::TooManyEdges { .. }), "{err}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = rmat(7, 4, RmatParams::classic(), &mut StdRng::seed_from_u64(3)).unwrap();
        let g2 = rmat(7, 4, RmatParams::classic(), &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(g1.edges(), g2.edges());
    }
}
