//! Watts–Strogatz small-world graphs.

use std::collections::HashSet;

use rand::Rng;

use crate::{Edge, Graph, GraphBuilder, GraphError, NodeId};

/// Samples a Watts–Strogatz small-world graph.
///
/// Starts from a ring lattice where every node is connected to its `k`
/// nearest neighbors (`k` must be even), then rewires each lattice edge
/// with probability `beta`: the far endpoint is replaced by a uniformly
/// random node, keeping the graph simple. A rewire that cannot find a
/// valid endpoint (after bounded retries) keeps the lattice edge, so the
/// result always has exactly `n·k/2` edges. `beta = 0` is the pure
/// lattice (high clustering, long paths); `beta = 1` approaches a random
/// graph.
///
/// Useful in ACCU experiments as a high-clustering contrast: mutual-friend
/// counts — the quantity cautious users threshold on — are much larger
/// here than in Erdős–Rényi graphs of the same density.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k` is odd or zero, `k >=
/// n`, or `beta` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use osn_graph::generators::watts_strogatz;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let g = watts_strogatz(100, 6, 0.1, &mut rng)?;
/// assert_eq!(g.edge_count(), 300);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if k == 0 || !k.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            what: "lattice degree k",
            requirement: "must be a positive even number",
        });
    }
    if k >= n {
        return Err(GraphError::InvalidParameter {
            what: "lattice degree k",
            requirement: "must be smaller than n",
        });
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameter {
            what: "rewiring probability beta",
            requirement: "must be within [0, 1]",
        });
    }
    // Full lattice first, then in-place rewiring against the live edge
    // set: a rewire either succeeds fully or keeps the lattice edge, so
    // the edge count is exactly n*k/2.
    let mut edges: Vec<Edge> = Vec::with_capacity(n * k / 2);
    let mut present: HashSet<Edge> = HashSet::with_capacity(n * k / 2);
    for v in 0..n {
        for d in 1..=(k / 2) {
            let e = Edge::new(NodeId::from(v), NodeId::from((v + d) % n));
            if present.insert(e) {
                edges.push(e);
            }
        }
    }
    #[allow(clippy::needless_range_loop)] // edges[i] is reassigned in the body
    for i in 0..edges.len() {
        if !rng.gen_bool(beta) {
            continue;
        }
        let old = edges[i];
        let u = old.lo();
        for _ in 0..32 {
            let cand = NodeId::new(rng.gen_range(0..n as u32));
            let new = Edge::new(u, cand);
            if cand != u && !present.contains(&new) {
                present.remove(&old);
                present.insert(new);
                edges[i] = new;
                break;
            }
        }
    }
    let mut b = GraphBuilder::with_edge_capacity(n, edges.len());
    for e in edges {
        b.add_edge(e.lo(), e.hi())?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::global_clustering_coefficient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(watts_strogatz(10, 3, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(10, 0, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(10, 10, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(10, 4, 1.5, &mut rng).is_err());
    }

    #[test]
    fn beta_zero_is_exact_lattice() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(20, 4, 0.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 40);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(g.has_edge(NodeId::new(19), NodeId::new(0)));
    }

    #[test]
    fn edge_count_is_exactly_preserved_under_rewiring() {
        for seed in 0..5u64 {
            for &beta in &[0.1, 0.5, 1.0] {
                let mut rng = StdRng::seed_from_u64(seed);
                let g = watts_strogatz(200, 6, beta, &mut rng).unwrap();
                assert_eq!(g.edge_count(), 600, "seed={seed} beta={beta}");
            }
        }
    }

    #[test]
    fn lattice_clusters_more_than_fully_rewired() {
        let c_lattice = global_clustering_coefficient(
            &watts_strogatz(300, 8, 0.0, &mut StdRng::seed_from_u64(3)).unwrap(),
        );
        let c_random = global_clustering_coefficient(
            &watts_strogatz(300, 8, 1.0, &mut StdRng::seed_from_u64(3)).unwrap(),
        );
        assert!(
            c_lattice > 2.0 * c_random,
            "lattice C={c_lattice} should dominate rewired C={c_random}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = watts_strogatz(50, 4, 0.2, &mut StdRng::seed_from_u64(11)).unwrap();
        let g2 = watts_strogatz(50, 4, 0.2, &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn tiny_graph_rewires_without_panic() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = watts_strogatz(4, 2, 1.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 4);
    }
}
