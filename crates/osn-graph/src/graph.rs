//! Immutable CSR-backed undirected graph.

use std::fmt;

use crate::{Edge, NodeId};

/// Identifier of an edge in a [`Graph`].
///
/// Edge ids are dense indices `0..edge_count`, assigned in canonical
/// (sorted `(lo, hi)`) edge order. They let callers attach per-edge data
/// (e.g. existence probabilities) in flat arrays.
///
/// # Examples
///
/// ```
/// use osn_graph::{GraphBuilder, NodeId};
///
/// let g = GraphBuilder::from_edges(3, [(0u32, 1u32), (1, 2)])?;
/// let id = g.edge_id(NodeId::new(1), NodeId::new(2)).unwrap();
/// assert_eq!(g.edge(id).endpoints(), (NodeId::new(1), NodeId::new(2)));
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        EdgeId(index)
    }

    /// Returns the id as a `usize` suitable for indexing slices.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for EdgeId {
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    fn from(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32::MAX"))
    }
}

impl From<EdgeId> for usize {
    #[inline]
    fn from(id: EdgeId) -> Self {
        id.index()
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An immutable undirected simple graph in compressed sparse row form.
///
/// Built via [`GraphBuilder`](crate::GraphBuilder). Per node, neighbors
/// are stored sorted, which makes adjacency queries `O(log deg)` and
/// mutual-friend counting a linear merge. Every edge also carries a dense
/// [`EdgeId`] so per-edge attributes (the ACCU link-existence
/// probabilities) can live in flat `Vec`s owned by the caller.
///
/// # Examples
///
/// ```
/// use osn_graph::{GraphBuilder, NodeId};
///
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (2, 3)])?;
/// assert_eq!(g.degree(NodeId::new(0)), 2);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
/// assert!(!g.has_edge(NodeId::new(1), NodeId::new(3)));
/// let neigh: Vec<_> = g.neighbors(NodeId::new(0)).to_vec();
/// assert_eq!(neigh, vec![NodeId::new(1), NodeId::new(2)]);
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR row offsets; length `node_count + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists; length `2 * edge_count`.
    targets: Vec<NodeId>,
    /// Edge id parallel to `targets`.
    target_edges: Vec<EdgeId>,
    /// Canonical edge list sorted by `(lo, hi)`; index = `EdgeId`.
    edges: Vec<Edge>,
}

impl Graph {
    /// Builds from an already sorted, deduplicated, validated edge list.
    ///
    /// Callers outside the crate should use
    /// [`GraphBuilder`](crate::GraphBuilder) instead.
    pub(crate) fn from_sorted_dedup_edges(node_count: usize, edges: Vec<Edge>) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be sorted+dedup"
        );
        let mut deg = vec![0usize; node_count];
        for e in &edges {
            deg[e.lo().index()] += 1;
            deg[e.hi().index()] += 1;
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![NodeId::default(); acc];
        let mut target_edges = vec![EdgeId::default(); acc];
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId::from(i);
            let (a, b) = e.endpoints();
            targets[cursor[a.index()]] = b;
            target_edges[cursor[a.index()]] = id;
            cursor[a.index()] += 1;
            targets[cursor[b.index()]] = a;
            target_edges[cursor[b.index()]] = id;
            cursor[b.index()] += 1;
        }
        // Each row is already sorted: edges are processed in canonical
        // order, so for a fixed node the lo-endpoint targets arrive in
        // increasing hi order — but hi-endpoint targets (the lo side)
        // interleave, so sort each row with its parallel edge ids.
        for v in 0..node_count {
            let (s, e) = (offsets[v], offsets[v + 1]);
            let row: &mut [NodeId] = &mut targets[s..e];
            if !row.is_sorted() {
                let mut paired: Vec<(NodeId, EdgeId)> = row
                    .iter()
                    .copied()
                    .zip(target_edges[s..e].iter().copied())
                    .collect();
                paired.sort_unstable();
                for (i, (t, id)) in paired.into_iter().enumerate() {
                    targets[s + i] = t;
                    target_edges[s + i] = id;
                }
            }
        }
        Graph {
            offsets,
            targets,
            target_edges,
            edges,
        }
    }

    /// The raw CSR arrays `(offsets, targets, target_edges, edges)` —
    /// what the `.accg` store serializes.
    pub(crate) fn csr_parts(&self) -> (&[usize], &[NodeId], &[EdgeId], &[Edge]) {
        (
            &self.offsets,
            &self.targets,
            &self.target_edges,
            &self.edges,
        )
    }

    /// Assembles a graph directly from CSR arrays.
    ///
    /// The caller must have fully validated the invariants
    /// (`store::load_graph_bytes` does); only cheap shape checks are
    /// asserted here.
    pub(crate) fn from_raw_csr(
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
        target_edges: Vec<EdgeId>,
        edges: Vec<Edge>,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().expect("non-empty"), targets.len());
        debug_assert_eq!(targets.len(), target_edges.len());
        debug_assert_eq!(targets.len(), 2 * edges.len());
        Graph {
            offsets,
            targets,
            target_edges,
            edges,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all node ids `0..node_count`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId::new)
    }

    /// The canonical sorted edge list; `edges()[id.index()] == edge(id)`.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Returns the edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let (s, e) = self.row(v);
        &self.targets[s..e]
    }

    /// Sorted neighbors of `v` paired with the connecting edge ids.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbor_entries(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let (s, e) = self.row(v);
        self.targets[s..e]
            .iter()
            .copied()
            .zip(self.target_edges[s..e].iter().copied())
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let (s, e) = self.row(v);
        e - s
    }

    /// Returns `true` if the edge `(a, b)` exists.
    ///
    /// Runs in `O(log min(deg(a), deg(b)))`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.edge_id(a, b).is_some()
    }

    /// Returns the id of the edge `(a, b)` if it exists.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn edge_id(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        if a == b {
            return None;
        }
        // Search in the smaller adjacency row.
        let (v, w) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        let (s, e) = self.row(v);
        let row = &self.targets[s..e];
        row.binary_search(&w).ok().map(|i| self.target_edges[s + i])
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.offsets[v + 1] - self.offsets[v])
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.node_count() as f64
        }
    }

    #[inline]
    fn row(&self, v: NodeId) -> (usize, usize) {
        (self.offsets[v.index()], self.offsets[v.index() + 1])
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path4() -> Graph {
        GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn csr_layout_matches_edges() {
        let g = path4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(NodeId::new(0)), &[NodeId::new(1)]);
        assert_eq!(
            g.neighbors(NodeId::new(1)),
            &[NodeId::new(0), NodeId::new(2)]
        );
        assert_eq!(
            g.neighbors(NodeId::new(2)),
            &[NodeId::new(1), NodeId::new(3)]
        );
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn edge_ids_are_canonical_order() {
        let g = path4();
        for (i, e) in g.edges().iter().enumerate() {
            let id = g.edge_id(e.lo(), e.hi()).unwrap();
            assert_eq!(id.index(), i);
            assert_eq!(g.edge(id), *e);
        }
    }

    #[test]
    fn edge_id_is_symmetric_and_absent_for_non_edges() {
        let g = path4();
        assert_eq!(
            g.edge_id(NodeId::new(0), NodeId::new(1)),
            g.edge_id(NodeId::new(1), NodeId::new(0))
        );
        assert_eq!(g.edge_id(NodeId::new(0), NodeId::new(3)), None);
        assert_eq!(g.edge_id(NodeId::new(2), NodeId::new(2)), None);
    }

    #[test]
    fn neighbor_entries_pair_targets_with_edges() {
        let g = path4();
        for v in g.nodes() {
            for (w, id) in g.neighbor_entries(v) {
                assert!(g.edge(id).touches(v));
                assert_eq!(g.edge(id).other(v), Some(w));
            }
        }
    }

    #[test]
    fn neighbors_are_sorted_in_star_graph() {
        // Star with center 5 inserted in scrambled order: exercises the
        // per-row sort fix-up path.
        let g =
            GraphBuilder::from_edges(6, [(5u32, 3u32), (5, 0), (5, 4), (5, 1), (5, 2)]).unwrap();
        let n: Vec<u32> = g
            .neighbors(NodeId::new(5))
            .iter()
            .map(|v| v.as_u32())
            .collect();
        assert_eq!(n, vec![0, 1, 2, 3, 4]);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn empty_and_isolated_nodes() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(NodeId::new(1)), 0);
        assert!(g.neighbors(NodeId::new(2)).is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn nodes_iterator_is_exact() {
        let g = path4();
        let ids: Vec<NodeId> = g.nodes().collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[3], NodeId::new(3));
    }

    #[test]
    fn debug_shows_counts() {
        let g = path4();
        let s = format!("{g:?}");
        assert!(s.contains("nodes: 4") && s.contains("edges: 3"));
    }
}
