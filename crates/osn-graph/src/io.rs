//! Edge-list I/O in the SNAP text format.
//!
//! SNAP files are whitespace-separated `u v` pairs, one per line, with
//! `#`-prefixed comment lines. [`read_edge_list`] accepts arbitrary
//! (sparse) node ids and compacts them to dense `0..n` ids, returning the
//! mapping; that lets the real Facebook/Slashdot/Twitter/DBLP downloads
//! drop in for the synthetic stand-ins.
//!
//! The loaders are *streaming and bounds-checked*: lines are assembled
//! byte-by-byte against a length cap (a single pathological line cannot
//! exhaust memory), node/edge counts are checked against configurable
//! limits, and CRLF endings, comments, duplicate edges and self-loops
//! are handled by [`EdgeListOptions`] policy rather than by accident.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Read, Write};

use crate::{Graph, GraphBuilder, GraphError, IoError, NodeId};

/// Dense node ids are `u32`, so a loader can address at most this many
/// distinct labels before compaction would silently alias them.
const DENSE_ID_LIMIT: usize = u32::MAX as usize;

/// How duplicate edges (in either direction) are treated on read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Keep the first occurrence, silently drop repeats. SNAP's directed
    /// datasets (Slashdot, Twitter) list both directions, so this is the
    /// default.
    #[default]
    Dedup,
    /// Fail with [`IoError::DuplicateEdge`] on the first repeat.
    Reject,
}

/// How self-loops `v v` are treated on read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelfLoopPolicy {
    /// Silently drop self-loops; ACCU friendship is irreflexive.
    #[default]
    Drop,
    /// Fail with [`IoError::SelfLoopEdge`] on the first self-loop.
    Reject,
}

/// Bounds and policies for [`read_edge_list_with`].
///
/// The defaults reproduce [`read_edge_list`]'s behavior: dedup
/// duplicates, drop self-loops, cap lines at 4 KiB, and allow any node
/// or edge count the dense `u32` id space can address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeListOptions {
    /// Maximum number of *distinct* node labels accepted. Clamped to the
    /// `u32` dense-id space; exceeding that hard limit yields
    /// [`GraphError::TooManyNodes`] instead of silent id aliasing.
    pub max_nodes: usize,
    /// Maximum number of accepted (post-policy) edges.
    pub max_edges: usize,
    /// Maximum line length in bytes, excluding the terminator. Longer
    /// lines yield [`IoError::LineTooLong`] without being buffered.
    pub max_line_len: usize,
    /// Policy for duplicate edges.
    pub duplicates: DuplicatePolicy,
    /// Policy for self-loops.
    pub self_loops: SelfLoopPolicy,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        EdgeListOptions {
            max_nodes: DENSE_ID_LIMIT,
            max_edges: usize::MAX,
            max_line_len: 4096,
            duplicates: DuplicatePolicy::Dedup,
            self_loops: SelfLoopPolicy::Drop,
        }
    }
}

impl EdgeListOptions {
    /// Strict variant: reject duplicate edges and self-loops instead of
    /// silently normalizing them. Useful when the producer is this crate
    /// ([`write_edge_list`] emits canonical lists) and any anomaly means
    /// corruption.
    pub fn strict() -> Self {
        EdgeListOptions {
            duplicates: DuplicatePolicy::Reject,
            self_loops: SelfLoopPolicy::Reject,
            ..EdgeListOptions::default()
        }
    }
}

/// A graph read from an edge list, plus the original node labels.
#[derive(Debug, Clone)]
pub struct LabeledGraph {
    /// The compacted graph with dense ids `0..n`.
    pub graph: Graph,
    /// `labels[i]` is the original id of dense node `i`, in first-seen order.
    pub labels: Vec<u64>,
}

/// Reads one line from `reader` into `buf` (terminator excluded),
/// enforcing the byte cap. Returns `Ok(false)` at EOF with nothing read.
///
/// This never buffers more than `max_line_len` bytes of the line, so an
/// adversarial input without newlines cannot exhaust memory.
fn read_capped_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max_line_len: usize,
    lineno: usize,
) -> Result<bool, IoError> {
    buf.clear();
    let mut saw_any = false;
    loop {
        let (done, used) = {
            let available = reader.fill_buf()?;
            if available.is_empty() {
                (true, 0)
            } else {
                saw_any = true;
                match available.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        if buf.len() + pos > max_line_len {
                            return Err(IoError::LineTooLong {
                                line: lineno,
                                limit: max_line_len,
                            });
                        }
                        buf.extend_from_slice(&available[..pos]);
                        (true, pos + 1)
                    }
                    None => {
                        if buf.len() + available.len() > max_line_len {
                            return Err(IoError::LineTooLong {
                                line: lineno,
                                limit: max_line_len,
                            });
                        }
                        buf.extend_from_slice(available);
                        (false, available.len())
                    }
                }
            }
        };
        reader.consume(used);
        if done {
            return Ok(saw_any || !buf.is_empty());
        }
    }
}

/// Interns `label`, handing out dense ids in first-seen order, with both
/// the configured and the hard `u32` cap enforced *before* narrowing.
fn intern_label(
    ids: &mut HashMap<u64, u32>,
    labels: &mut Vec<u64>,
    label: u64,
    max_nodes: usize,
) -> Result<u32, IoError> {
    if let Some(&id) = ids.get(&label) {
        return Ok(id);
    }
    if labels.len() >= DENSE_ID_LIMIT {
        return Err(IoError::Graph(GraphError::TooManyNodes {
            limit: DENSE_ID_LIMIT,
        }));
    }
    if labels.len() >= max_nodes {
        return Err(IoError::LimitExceeded {
            what: "node",
            limit: max_nodes,
        });
    }
    let id = labels.len() as u32;
    labels.push(label);
    ids.insert(label, id);
    Ok(id)
}

/// Reads a whitespace-separated edge list (SNAP format) from `reader`
/// with default [`EdgeListOptions`].
///
/// * Lines starting with `#` or `%` and blank lines are skipped; CRLF
///   endings and a missing final newline are accepted.
/// * Node ids may be arbitrary `u64`s; they are compacted densely.
/// * Duplicate edges (in either direction) and self-loops are dropped —
///   SNAP's directed datasets (Slashdot, Twitter) list both directions,
///   and the ACCU model treats friendship as undirected.
///
/// # Errors
///
/// Returns [`IoError::Parse`] for malformed lines, [`IoError::Io`] for
/// underlying read failures, and the bounds errors documented on
/// [`read_edge_list_with`].
///
/// # Examples
///
/// ```
/// use osn_graph::io::read_edge_list;
///
/// let data = "# comment\n10 20\n20 30\n30 10\n10 10\n";
/// let lg = read_edge_list(data.as_bytes())?;
/// assert_eq!(lg.graph.node_count(), 3);
/// assert_eq!(lg.graph.edge_count(), 3); // self-loop dropped
/// assert_eq!(lg.labels, vec![10, 20, 30]);
/// # Ok::<(), osn_graph::IoError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<LabeledGraph, IoError> {
    read_edge_list_with(reader, &EdgeListOptions::default())
}

/// Reads a whitespace-separated edge list under explicit bounds and
/// policies.
///
/// The parse is streaming: one capped line buffer is reused, so memory
/// is `O(nodes + edges)` regardless of how the input is malformed.
///
/// # Errors
///
/// * [`IoError::Parse`] — a non-comment line is not two integers.
/// * [`IoError::InvalidUtf8`] — a line holds invalid UTF-8.
/// * [`IoError::LineTooLong`] — a line exceeds `max_line_len` bytes.
/// * [`IoError::LimitExceeded`] — more distinct nodes than `max_nodes`,
///   or more accepted edges than `max_edges`.
/// * [`GraphError::TooManyNodes`] (wrapped) — more distinct labels than
///   dense `u32` ids can address.
/// * [`IoError::DuplicateEdge`] / [`IoError::SelfLoopEdge`] — under the
///   respective `Reject` policies.
/// * [`IoError::Io`] — underlying read failure.
///
/// # Examples
///
/// ```
/// use osn_graph::io::{read_edge_list_with, EdgeListOptions};
/// use osn_graph::IoError;
///
/// let opts = EdgeListOptions { max_nodes: 2, ..EdgeListOptions::default() };
/// let err = read_edge_list_with("1 2\n2 3\n".as_bytes(), &opts).unwrap_err();
/// assert!(matches!(err, IoError::LimitExceeded { what: "node", .. }));
/// ```
pub fn read_edge_list_with<R: Read>(
    reader: R,
    opts: &EdgeListOptions,
) -> Result<LabeledGraph, IoError> {
    let mut reader = BufReader::new(reader);
    let mut ids: HashMap<u64, u32> = HashMap::new();
    let mut labels: Vec<u64> = Vec::new();
    let mut raw_edges: Vec<(u32, u32)> = Vec::new();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let reject_dups = opts.duplicates == DuplicatePolicy::Reject;
    let mut buf: Vec<u8> = Vec::new();
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        if !read_capped_line(&mut reader, &mut buf, opts.max_line_len, lineno)? {
            break;
        }
        let line = std::str::from_utf8(&buf).map_err(|_| IoError::InvalidUtf8 { line: lineno })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u64> { tok.and_then(|t| t.parse().ok()) };
        let (a, b) = match (parse(parts.next()), parse(parts.next())) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(IoError::Parse {
                    line: lineno,
                    content: trimmed.chars().take(80).collect(),
                })
            }
        };
        if a == b {
            match opts.self_loops {
                SelfLoopPolicy::Drop => continue,
                SelfLoopPolicy::Reject => {
                    return Err(IoError::SelfLoopEdge {
                        line: lineno,
                        node: a,
                    })
                }
            }
        }
        let da = intern_label(&mut ids, &mut labels, a, opts.max_nodes)?;
        let db = intern_label(&mut ids, &mut labels, b, opts.max_nodes)?;
        if reject_dups {
            let key = (da.min(db), da.max(db));
            if !seen.insert(key) {
                return Err(IoError::DuplicateEdge { line: lineno, a, b });
            }
        }
        if raw_edges.len() >= opts.max_edges {
            return Err(IoError::LimitExceeded {
                what: "edge",
                limit: opts.max_edges,
            });
        }
        raw_edges.push((da, db));
    }
    let mut builder = GraphBuilder::with_edge_capacity(labels.len(), raw_edges.len());
    for (a, b) in raw_edges {
        builder.add_edge(NodeId::new(a), NodeId::new(b))?;
    }
    Ok(LabeledGraph {
        graph: builder.build(),
        labels,
    })
}

/// Writes `g` as a SNAP-style edge list: one `lo hi` pair per line,
/// canonical order, preceded by a comment header.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Examples
///
/// ```
/// use osn_graph::{io::{read_edge_list, write_edge_list}, GraphBuilder};
///
/// let g = GraphBuilder::from_edges(3, [(0u32, 1u32), (1, 2)])?;
/// let mut buf = Vec::new();
/// write_edge_list(&g, &mut buf)?;
/// let back = read_edge_list(&buf[..])?;
/// assert_eq!(back.graph.edge_count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<(), IoError> {
    writeln!(
        writer,
        "# osn-graph edge list: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    )?;
    for e in g.edges() {
        writeln!(writer, "{} {}", e.lo(), e.hi())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_comments_blanks_and_directed_duplicates() {
        let data = "# header\n% other comment\n\n1 2\n2 1\n2 3\n";
        let lg = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(lg.graph.node_count(), 3);
        assert_eq!(lg.graph.edge_count(), 2);
    }

    #[test]
    fn compacts_sparse_ids_in_first_seen_order() {
        let data = "1000 5\n5 77\n";
        let lg = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(lg.labels, vec![1000, 5, 77]);
        assert!(lg.graph.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(lg.graph.has_edge(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn rejects_malformed_lines_with_location() {
        let data = "1 2\noops\n";
        let err = read_edge_list(data.as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "oops");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn round_trip_preserves_structure() {
        let g = GraphBuilder::from_edges(5, [(0u32, 3u32), (3, 4), (1, 2), (0, 1)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.graph.edge_count(), g.edge_count());
        assert_eq!(back.graph.node_count(), g.node_count());
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let lg = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(lg.graph.node_count(), 0);
        assert_eq!(lg.graph.edge_count(), 0);
    }

    #[test]
    fn self_loops_are_dropped() {
        let lg = read_edge_list("7 7\n7 8\n".as_bytes()).unwrap();
        assert_eq!(lg.graph.edge_count(), 1);
    }

    #[test]
    fn accepts_crlf_line_endings() {
        let data = "# header\r\n1 2\r\n2 3\r\n";
        let lg = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(lg.graph.node_count(), 3);
        assert_eq!(lg.graph.edge_count(), 2);
    }

    #[test]
    fn accepts_truncated_final_line() {
        let lg = read_edge_list("1 2\n2 3".as_bytes()).unwrap();
        assert_eq!(lg.graph.edge_count(), 2);
    }

    #[test]
    fn whitespace_only_lines_are_skipped() {
        let lg = read_edge_list("  \t \n1 2\n \n".as_bytes()).unwrap();
        assert_eq!(lg.graph.edge_count(), 1);
    }

    #[test]
    fn rejects_overlong_lines_without_buffering() {
        let mut data = String::from("1 2\n");
        data.push('#');
        data.push_str(&"x".repeat(10_000));
        data.push('\n');
        let opts = EdgeListOptions {
            max_line_len: 256,
            ..EdgeListOptions::default()
        };
        let err = read_edge_list_with(data.as_bytes(), &opts).unwrap_err();
        match err {
            IoError::LineTooLong { line, limit } => {
                assert_eq!(line, 2);
                assert_eq!(limit, 256);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_invalid_utf8_with_location() {
        let data: &[u8] = b"1 2\n\xff\xfe 3\n";
        let err = read_edge_list(data).unwrap_err();
        assert!(matches!(err, IoError::InvalidUtf8 { line: 2 }));
    }

    #[test]
    fn enforces_node_cap() {
        let opts = EdgeListOptions {
            max_nodes: 3,
            ..EdgeListOptions::default()
        };
        assert!(read_edge_list_with("1 2\n2 3\n".as_bytes(), &opts).is_ok());
        let err = read_edge_list_with("1 2\n3 4\n".as_bytes(), &opts).unwrap_err();
        assert!(matches!(
            err,
            IoError::LimitExceeded {
                what: "node",
                limit: 3
            }
        ));
    }

    #[test]
    fn enforces_edge_cap() {
        let opts = EdgeListOptions {
            max_edges: 2,
            ..EdgeListOptions::default()
        };
        let err = read_edge_list_with("1 2\n2 3\n3 1\n".as_bytes(), &opts).unwrap_err();
        assert!(matches!(
            err,
            IoError::LimitExceeded {
                what: "edge",
                limit: 2
            }
        ));
    }

    #[test]
    fn strict_options_reject_duplicates_and_self_loops() {
        let strict = EdgeListOptions::strict();
        let err = read_edge_list_with("1 2\n2 1\n".as_bytes(), &strict).unwrap_err();
        match err {
            IoError::DuplicateEdge { line, a, b } => {
                assert_eq!(line, 2);
                assert_eq!((a, b), (2, 1));
            }
            other => panic!("unexpected error {other:?}"),
        }
        let err = read_edge_list_with("5 5\n".as_bytes(), &strict).unwrap_err();
        assert!(matches!(err, IoError::SelfLoopEdge { line: 1, node: 5 }));
    }

    #[test]
    fn duplicate_rejection_is_direction_insensitive_but_lenient_default() {
        // Default policy dedups silently, matching SNAP's directed lists.
        let lg = read_edge_list("1 2\n2 1\n1 2\n".as_bytes()).unwrap();
        assert_eq!(lg.graph.edge_count(), 1);
    }

    #[test]
    fn written_lists_pass_strict_reading() {
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list_with(&buf[..], &EdgeListOptions::strict()).unwrap();
        assert_eq!(back.graph.edge_count(), 3);
    }
}
