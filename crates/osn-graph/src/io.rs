//! Edge-list I/O in the SNAP text format.
//!
//! SNAP files are whitespace-separated `u v` pairs, one per line, with
//! `#`-prefixed comment lines. [`read_edge_list`] accepts arbitrary
//! (sparse) node ids and compacts them to dense `0..n` ids, returning the
//! mapping; that lets the real Facebook/Slashdot/Twitter/DBLP downloads
//! drop in for the synthetic stand-ins.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

use crate::{Graph, GraphBuilder, IoError, NodeId};

/// A graph read from an edge list, plus the original node labels.
#[derive(Debug, Clone)]
pub struct LabeledGraph {
    /// The compacted graph with dense ids `0..n`.
    pub graph: Graph,
    /// `labels[i]` is the original id of dense node `i`, in first-seen order.
    pub labels: Vec<u64>,
}

/// Reads a whitespace-separated edge list (SNAP format) from `reader`.
///
/// * Lines starting with `#` or `%` and blank lines are skipped.
/// * Node ids may be arbitrary `u64`s; they are compacted densely.
/// * Duplicate edges (in either direction) and self-loops are dropped —
///   SNAP's directed datasets (Slashdot, Twitter) list both directions,
///   and the ACCU model treats friendship as undirected.
///
/// # Errors
///
/// Returns [`IoError::Parse`] for malformed lines and [`IoError::Io`]
/// for underlying read failures.
///
/// # Examples
///
/// ```
/// use osn_graph::io::read_edge_list;
///
/// let data = "# comment\n10 20\n20 30\n30 10\n10 10\n";
/// let lg = read_edge_list(data.as_bytes())?;
/// assert_eq!(lg.graph.node_count(), 3);
/// assert_eq!(lg.graph.edge_count(), 3); // self-loop dropped
/// assert_eq!(lg.labels, vec![10, 20, 30]);
/// # Ok::<(), osn_graph::IoError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<LabeledGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut ids: HashMap<u64, u32> = HashMap::new();
    let mut labels: Vec<u64> = Vec::new();
    let mut raw_edges: Vec<(u32, u32)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u64> { tok.and_then(|t| t.parse().ok()) };
        let (a, b) = match (parse(parts.next()), parse(parts.next())) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    content: trimmed.chars().take(80).collect(),
                })
            }
        };
        let mut dense = |label: u64| -> u32 {
            *ids.entry(label).or_insert_with(|| {
                labels.push(label);
                (labels.len() - 1) as u32
            })
        };
        let (da, db) = (dense(a), dense(b));
        if da != db {
            raw_edges.push((da, db));
        }
    }
    let mut builder = GraphBuilder::with_edge_capacity(labels.len(), raw_edges.len());
    for (a, b) in raw_edges {
        builder.add_edge(NodeId::new(a), NodeId::new(b))?;
    }
    Ok(LabeledGraph {
        graph: builder.build(),
        labels,
    })
}

/// Writes `g` as a SNAP-style edge list: one `lo hi` pair per line,
/// canonical order, preceded by a comment header.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Examples
///
/// ```
/// use osn_graph::{io::{read_edge_list, write_edge_list}, GraphBuilder};
///
/// let g = GraphBuilder::from_edges(3, [(0u32, 1u32), (1, 2)])?;
/// let mut buf = Vec::new();
/// write_edge_list(&g, &mut buf)?;
/// let back = read_edge_list(&buf[..])?;
/// assert_eq!(back.graph.edge_count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<(), IoError> {
    writeln!(
        writer,
        "# osn-graph edge list: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    )?;
    for e in g.edges() {
        writeln!(writer, "{} {}", e.lo(), e.hi())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_comments_blanks_and_directed_duplicates() {
        let data = "# header\n% other comment\n\n1 2\n2 1\n2 3\n";
        let lg = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(lg.graph.node_count(), 3);
        assert_eq!(lg.graph.edge_count(), 2);
    }

    #[test]
    fn compacts_sparse_ids_in_first_seen_order() {
        let data = "1000 5\n5 77\n";
        let lg = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(lg.labels, vec![1000, 5, 77]);
        assert!(lg.graph.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(lg.graph.has_edge(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn rejects_malformed_lines_with_location() {
        let data = "1 2\noops\n";
        let err = read_edge_list(data.as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "oops");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn round_trip_preserves_structure() {
        let g = GraphBuilder::from_edges(5, [(0u32, 3u32), (3, 4), (1, 2), (0, 1)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.graph.edge_count(), g.edge_count());
        assert_eq!(back.graph.node_count(), g.node_count());
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let lg = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(lg.graph.node_count(), 0);
        assert_eq!(lg.graph.edge_count(), 0);
    }

    #[test]
    fn self_loops_are_dropped() {
        let lg = read_edge_list("7 7\n7 8\n".as_bytes()).unwrap();
        assert_eq!(lg.graph.edge_count(), 1);
    }
}
