//! # osn-graph
//!
//! Undirected graph substrate for the ACCU reproduction (*Adaptive
//! Crawling with Cautious Users*, ICDCS 2019): compact CSR storage,
//! random-graph generators that stand in for the paper's SNAP datasets,
//! the graph algorithms the crawling policies need (PageRank, degrees,
//! mutual-friend counting, clustering), and SNAP-format edge-list I/O.
//!
//! The crate is deliberately self-contained — no graph library
//! dependencies — and optimized for the access patterns of the ACCU
//! simulator: sorted adjacency (binary-search edge queries, linear-merge
//! common-neighbor counts) and dense [`EdgeId`]s so per-edge attributes
//! like link-existence probabilities live in flat arrays.
//!
//! ## Quick start
//!
//! ```
//! use osn_graph::{algo, generators, GraphBuilder, NodeId};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Build by hand...
//! let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 0)])?;
//! assert_eq!(algo::mutual_friend_count(&g, NodeId::new(0), NodeId::new(1)), 1);
//!
//! // ...or generate a social-network stand-in.
//! let mut rng = StdRng::seed_from_u64(42);
//! let social = generators::barabasi_albert(1_000, 8, &mut rng)?;
//! let pr = algo::pagerank(&social, &algo::PageRankConfig::new());
//! assert_eq!(pr.len(), 1_000);
//! # Ok::<(), osn_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod algo;
mod builder;
mod error;
pub mod generators;
mod graph;
pub mod io;
mod node;
pub mod sampling;
pub mod store;

pub use builder::GraphBuilder;
pub use error::{GraphError, IoError};
pub use graph::{EdgeId, Graph};
pub use node::{Edge, NodeId};
pub use store::StoreError;
