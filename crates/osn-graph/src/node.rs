//! Node identifiers.
//!
//! Nodes are dense indices in `0..n`. [`NodeId`] is a newtype over `u32`
//! so that node identifiers cannot be confused with arbitrary counters or
//! degrees at API boundaries, while staying `Copy` and 4 bytes wide (the
//! paper's largest network, DBLP, has 317k nodes — far below `u32::MAX`).

use std::fmt;

/// Identifier of a node in a [`Graph`](crate::Graph).
///
/// `NodeId` values are dense: a graph with `n` nodes has exactly the ids
/// `0..n`. Construct one with [`NodeId::new`] or via `From<u32>` /
/// `From<usize>`.
///
/// # Examples
///
/// ```
/// use osn_graph::NodeId;
///
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(u32::from(v), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw `u32` index.
    ///
    /// # Examples
    ///
    /// ```
    /// # use osn_graph::NodeId;
    /// assert_eq!(NodeId::new(3).index(), 3);
    /// ```
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the id as a `usize` suitable for indexing slices.
    ///
    /// # Examples
    ///
    /// ```
    /// # use osn_graph::NodeId;
    /// let degrees = [0u32, 2, 5];
    /// assert_eq!(degrees[NodeId::new(2).index()], 5);
    /// ```
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

impl From<usize> for NodeId {
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    fn from(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(id: NodeId) -> Self {
        id.index()
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An undirected edge as an unordered pair of node ids.
///
/// The pair is stored in canonical (sorted) order, so `Edge::new(a, b) ==
/// Edge::new(b, a)` and edges hash consistently regardless of the order
/// the endpoints were supplied in.
///
/// # Examples
///
/// ```
/// use osn_graph::{Edge, NodeId};
///
/// let e1 = Edge::new(NodeId::new(4), NodeId::new(1));
/// let e2 = Edge::new(NodeId::new(1), NodeId::new(4));
/// assert_eq!(e1, e2);
/// assert_eq!(e1.lo(), NodeId::new(1));
/// assert_eq!(e1.hi(), NodeId::new(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    lo: NodeId,
    hi: NodeId,
}

impl Edge {
    /// Creates the canonical edge between `a` and `b`.
    ///
    /// Self-loops are representable (`a == b`) but rejected by
    /// [`GraphBuilder`](crate::GraphBuilder).
    #[inline]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        if a <= b {
            Edge { lo: a, hi: b }
        } else {
            Edge { lo: b, hi: a }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub const fn lo(self) -> NodeId {
        self.lo
    }

    /// The larger endpoint.
    #[inline]
    pub const fn hi(self) -> NodeId {
        self.hi
    }

    /// Returns both endpoints as `(lo, hi)`.
    #[inline]
    pub const fn endpoints(self) -> (NodeId, NodeId) {
        (self.lo, self.hi)
    }

    /// Returns `true` if `v` is one of the endpoints.
    ///
    /// # Examples
    ///
    /// ```
    /// # use osn_graph::{Edge, NodeId};
    /// let e = Edge::new(NodeId::new(0), NodeId::new(2));
    /// assert!(e.touches(NodeId::new(2)));
    /// assert!(!e.touches(NodeId::new(1)));
    /// ```
    #[inline]
    pub fn touches(self, v: NodeId) -> bool {
        self.lo == v || self.hi == v
    }

    /// Given one endpoint, returns the other.
    ///
    /// Returns `None` if `v` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, v: NodeId) -> Option<NodeId> {
        if v == self.lo {
            Some(self.hi)
        } else if v == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Returns `true` if this edge is a self-loop.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.lo == self.hi
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.lo, self.hi)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.lo, self.hi)
    }
}

impl From<(NodeId, NodeId)> for Edge {
    fn from((a, b): (NodeId, NodeId)) -> Self {
        Edge::new(a, b)
    }
}

impl From<(u32, u32)> for Edge {
    fn from((a, b): (u32, u32)) -> Self {
        Edge::new(NodeId::new(a), NodeId::new(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_conversions() {
        let v = NodeId::new(42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(usize::from(v), 42);
        assert_eq!(NodeId::from(42u32), v);
        assert_eq!(NodeId::from(42usize), v);
    }

    #[test]
    fn node_id_orders_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    fn node_id_debug_is_nonempty() {
        assert_eq!(format!("{:?}", NodeId::new(3)), "n3");
        assert_eq!(format!("{}", NodeId::new(3)), "3");
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn node_id_from_huge_usize_panics() {
        let _ = NodeId::from(usize::MAX);
    }

    #[test]
    fn edge_is_canonical() {
        let e1 = Edge::new(NodeId::new(9), NodeId::new(3));
        let e2 = Edge::new(NodeId::new(3), NodeId::new(9));
        assert_eq!(e1, e2);
        assert_eq!(e1.lo(), NodeId::new(3));
        assert_eq!(e1.hi(), NodeId::new(9));
        assert_eq!(e1.endpoints(), (NodeId::new(3), NodeId::new(9)));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(NodeId::new(1), NodeId::new(5));
        assert_eq!(e.other(NodeId::new(1)), Some(NodeId::new(5)));
        assert_eq!(e.other(NodeId::new(5)), Some(NodeId::new(1)));
        assert_eq!(e.other(NodeId::new(2)), None);
    }

    #[test]
    fn edge_touches_and_loop() {
        let e = Edge::new(NodeId::new(2), NodeId::new(2));
        assert!(e.is_loop());
        assert!(e.touches(NodeId::new(2)));
        let e = Edge::from((0u32, 7u32));
        assert!(!e.is_loop());
        assert!(e.touches(NodeId::new(7)));
        assert!(!e.touches(NodeId::new(6)));
    }

    #[test]
    fn edge_display_and_debug() {
        let e = Edge::new(NodeId::new(2), NodeId::new(1));
        assert_eq!(format!("{e}"), "1-2");
        assert_eq!(format!("{e:?}"), "(1-2)");
    }
}
