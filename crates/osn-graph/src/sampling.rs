//! Graph sampling and subgraph extraction.
//!
//! When real SNAP datasets are available they are usually too large for
//! laptop-scale ACCU experiments; these helpers cut density-faithful
//! samples: induced subgraphs on arbitrary node sets, uniform node
//! samples, and BFS (snowball) samples that preserve local structure —
//! the right choice for mutual-friend-sensitive workloads.

use std::collections::VecDeque;

use rand::Rng;

use crate::{Graph, GraphBuilder, NodeId};

/// A sampled subgraph with the mapping back to the original node ids.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The extracted graph with dense ids `0..k`.
    pub graph: Graph,
    /// `original[i]` is the id in the source graph of sampled node `i`.
    pub original: Vec<NodeId>,
}

/// Extracts the subgraph induced by `nodes` (duplicates ignored).
///
/// # Panics
///
/// Panics if any node is out of range for `g`.
///
/// # Examples
///
/// ```
/// use osn_graph::{sampling::induced_subgraph, GraphBuilder, NodeId};
///
/// let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3)])?;
/// let sub = induced_subgraph(&g, &[NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
/// assert_eq!(sub.graph.node_count(), 3);
/// assert_eq!(sub.graph.edge_count(), 2); // 1-2 and 2-3 survive
/// # Ok::<(), osn_graph::GraphError>(())
/// ```
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> Subgraph {
    let mut dense = vec![u32::MAX; g.node_count()];
    let mut original = Vec::with_capacity(nodes.len());
    for &v in nodes {
        if dense[v.index()] == u32::MAX {
            dense[v.index()] = original.len() as u32;
            original.push(v);
        }
    }
    let mut b = GraphBuilder::new(original.len());
    for (i, &v) in original.iter().enumerate() {
        for &w in g.neighbors(v) {
            let dw = dense[w.index()];
            if dw != u32::MAX && (dw as usize) > i {
                b.add_edge(NodeId::from(i), NodeId::new(dw))
                    .expect("induced edges are valid");
            }
        }
    }
    Subgraph {
        graph: b.build(),
        original,
    }
}

/// Samples `count` distinct nodes uniformly and returns their induced
/// subgraph. If `count >= n` the whole graph is returned.
pub fn uniform_node_sample<R: Rng + ?Sized>(g: &Graph, count: usize, rng: &mut R) -> Subgraph {
    let n = g.node_count();
    let mut ids: Vec<NodeId> = g.nodes().collect();
    let count = count.min(n);
    // Partial Fisher–Yates.
    for i in 0..count {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    ids.truncate(count);
    ids.sort_unstable();
    induced_subgraph(g, &ids)
}

/// BFS (snowball) sample: grows breadth-first from a random seed until
/// `count` nodes are collected, restarting from fresh random seeds if a
/// component is exhausted. Preserves local clustering and mutual-friend
/// structure far better than uniform node sampling.
pub fn bfs_sample<R: Rng + ?Sized>(g: &Graph, count: usize, rng: &mut R) -> Subgraph {
    let n = g.node_count();
    let count = count.min(n);
    let mut taken = vec![false; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(count);
    let mut queue = VecDeque::new();
    while order.len() < count {
        if queue.is_empty() {
            // Restart from a random untaken node.
            let remaining = n - order.len();
            let mut pick = rng.gen_range(0..remaining);
            let seed = g
                .nodes()
                .filter(|v| !taken[v.index()])
                .find(|_| {
                    if pick == 0 {
                        true
                    } else {
                        pick -= 1;
                        false
                    }
                })
                .expect("an untaken node exists");
            taken[seed.index()] = true;
            order.push(seed);
            queue.push_back(seed);
            continue;
        }
        let v = queue.pop_front().expect("queue non-empty");
        for &w in g.neighbors(v) {
            if order.len() == count {
                break;
            }
            if !taken[w.index()] {
                taken[w.index()] = true;
                order.push(w);
                queue.push_back(w);
            }
        }
    }
    order.sort_unstable();
    induced_subgraph(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::global_clustering_coefficient;
    use crate::generators::barabasi_albert;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = GraphBuilder::from_edges(5, [(0u32, 1u32), (1, 2), (2, 3), (3, 4)]).unwrap();
        let sub = induced_subgraph(&g, &[NodeId::new(0), NodeId::new(1), NodeId::new(3)]);
        assert_eq!(sub.graph.node_count(), 3);
        assert_eq!(sub.graph.edge_count(), 1); // only 0-1
        assert_eq!(
            sub.original,
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]
        );
    }

    #[test]
    fn induced_subgraph_dedups_nodes() {
        let g = GraphBuilder::from_edges(3, [(0u32, 1u32)]).unwrap();
        let sub = induced_subgraph(&g, &[NodeId::new(1), NodeId::new(1), NodeId::new(0)]);
        assert_eq!(sub.graph.node_count(), 2);
        assert_eq!(sub.graph.edge_count(), 1);
    }

    #[test]
    fn uniform_sample_sizes() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = barabasi_albert(200, 3, &mut rng).unwrap();
        let sub = uniform_node_sample(&g, 50, &mut rng);
        assert_eq!(sub.graph.node_count(), 50);
        let sub = uniform_node_sample(&g, 1_000, &mut rng);
        assert_eq!(sub.graph.node_count(), 200); // clamped
    }

    #[test]
    fn bfs_sample_is_connected_enough() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = barabasi_albert(500, 4, &mut rng).unwrap();
        let sub = bfs_sample(&g, 100, &mut rng);
        assert_eq!(sub.graph.node_count(), 100);
        // Snowball samples retain far more edges than uniform samples of
        // the same size.
        let uni = uniform_node_sample(&g, 100, &mut rng);
        assert!(
            sub.graph.edge_count() > 2 * uni.graph.edge_count(),
            "bfs {} vs uniform {}",
            sub.graph.edge_count(),
            uni.graph.edge_count()
        );
    }

    #[test]
    fn bfs_sample_preserves_clustering_structure() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = crate::generators::watts_strogatz(400, 8, 0.05, &mut rng).unwrap();
        let full_c = global_clustering_coefficient(&g);
        let sub = bfs_sample(&g, 120, &mut rng);
        let sub_c = global_clustering_coefficient(&sub.graph);
        assert!(sub_c > 0.5 * full_c, "sample C {sub_c} vs full C {full_c}");
    }

    #[test]
    fn bfs_sample_restarts_across_components() {
        let g = GraphBuilder::from_edges(6, [(0u32, 1u32), (2, 3), (4, 5)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let sub = bfs_sample(&g, 6, &mut rng);
        assert_eq!(sub.graph.node_count(), 6);
        assert_eq!(sub.graph.edge_count(), 3);
    }

    #[test]
    fn mapping_round_trips_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = barabasi_albert(100, 3, &mut rng).unwrap();
        let sub = bfs_sample(&g, 40, &mut rng);
        for e in sub.graph.edges() {
            let a = sub.original[e.lo().index()];
            let b = sub.original[e.hi().index()];
            assert!(g.has_edge(a, b), "sampled edge missing in source");
        }
    }
}
