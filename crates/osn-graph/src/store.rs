//! Versioned, checksummed on-disk CSR graph store (`.accg`).
//!
//! Serializes a [`Graph`]'s CSR arrays verbatim so that multi-million-
//! node generated graphs can be packed once and reloaded in milliseconds
//! instead of regenerated per run. Layout (all integers little-endian):
//!
//! | bytes  | field                                                     |
//! |--------|-----------------------------------------------------------|
//! | 0..8   | magic `"ACCGRPH\0"`                                       |
//! | 8..12  | format version (`u32`, currently 1)                       |
//! | 12..16 | reserved (must be 0)                                      |
//! | 16..24 | node count `n` (`u64`)                                    |
//! | 24..32 | edge count `m` (`u64`)                                    |
//! | 32..40 | payload checksum (`u64`)                                  |
//! | 40..   | offsets `(n+1)×u64` · targets `2m×u32` · edge ids `2m×u32`|
//!
//! The canonical edge list is *not* stored: [`load_graph_bytes`]
//! re-derives it while validating the adjacency, proving every CSR
//! invariant the crate's kernels rely on — monotone offsets, strictly
//! sorted rows, no self-loops, symmetric entries, and edge ids in
//! canonical `(lo, hi)` order. A file that decodes successfully is
//! therefore indistinguishable from the same graph built through
//! [`GraphBuilder`](crate::GraphBuilder).
//!
//! The checksum is a four-lane interleaved splitmix64 fold of the
//! payload seeded with the counts, so corruption detection runs near
//! memory bandwidth instead of being serialized on the mixer's latency
//! chain. The loader is byte-slice backed; the crate forbids `unsafe`,
//! so arrays are decoded, never reinterpreted in place — each array in
//! a tight branch-free pass followed by separate validation scans.
//! [`load_graph_bytes_trusted`] skips only the structural
//! cross-consistency scan (checksum and bounds checks always run) for
//! the steady-state reload of files the caller packed itself.
//!
//! # Examples
//!
//! ```
//! use osn_graph::{store, GraphBuilder};
//!
//! let g = GraphBuilder::from_edges(3, [(0u32, 1u32), (1, 2)])?;
//! let bytes = store::pack_graph(&g);
//! let back = store::load_graph_bytes(&bytes)?;
//! assert_eq!(g, back);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::error::Error as StdError;
use std::fmt;
use std::io;
use std::path::Path;

use crate::{Edge, EdgeId, Graph, NodeId};

/// The 8-byte magic prefix of every `.accg` file.
pub const STORE_MAGIC: [u8; 8] = *b"ACCGRPH\0";

/// The current (and only) supported format version.
pub const STORE_VERSION: u32 = 1;

/// Conventional file extension for packed graphs.
pub const STORE_EXTENSION: &str = "accg";

const HEADER_LEN: usize = 40;
/// Node and edge counts are capped at the dense `u32` id space.
const ID_LIMIT: u64 = u32::MAX as u64;

/// Errors produced while packing or loading `.accg` graph stores.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An underlying file-system failure.
    Io(io::Error),
    /// The input does not start with [`STORE_MAGIC`].
    BadMagic,
    /// The input declares a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// The input is shorter than its header-declared size.
    Truncated {
        /// Bytes the header implies.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// The payload violates a CSR invariant (details in `what`).
    Corrupt {
        /// Human-readable description of the violated invariant.
        what: &'static str,
    },
    /// A declared count exceeds the dense `u32` id space.
    TooLarge {
        /// Which count, e.g. `"node count"`.
        what: &'static str,
        /// The declared value.
        value: u64,
        /// The maximum representable value.
        limit: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not an .accg graph store (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => {
                write!(f, "format version {found} unsupported (max {supported})")
            }
            StoreError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated store: {actual} bytes, header implies {expected}"
                )
            }
            StoreError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: header {stored:#018x}, payload {computed:#018x}"
                )
            }
            StoreError::Corrupt { what } => write!(f, "corrupt store: {what}"),
            StoreError::TooLarge { what, value, limit } => {
                write!(f, "{what} {value} exceeds the {limit} id-space limit")
            }
        }
    }
}

impl StdError for StoreError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// splitmix64 finalizer — the word mixer of the payload checksum.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Word-wise checksum over the payload, seeded with the header counts
/// so count/payload mismatches cannot cancel. Four interleaved lanes
/// hide the mixer's latency chain (a single serial fold runs ~4× slower
/// than memory bandwidth); every word still lands in exactly one lane
/// position, so any bit flip changes the digest. The trailing partial
/// word (if any) is zero-padded — unambiguous because the payload
/// length is itself determined by the mixed-in counts.
fn payload_checksum(payload: &[u8], node_count: u64, edge_count: u64) -> u64 {
    let mut lanes = ChecksumLanes::new(node_count, edge_count);
    lanes.update(payload);
    lanes.finish()
}

/// Incremental state of the payload checksum, so the streaming file
/// loader can fold each buffer as it arrives. Feeding the payload in
/// any chunking whose non-final pieces are multiples of 32 bytes yields
/// the same digest as [`payload_checksum`] over the whole slice.
struct ChecksumLanes {
    lanes: [u64; 4],
    /// Sub-block remainder; only the final `update` may leave one.
    tail: [u8; 32],
    tail_len: usize,
}

impl ChecksumLanes {
    fn new(node_count: u64, edge_count: u64) -> Self {
        let seed = mix64(node_count ^ mix64(edge_count ^ u64::from_le_bytes(STORE_MAGIC)));
        ChecksumLanes {
            lanes: [
                seed,
                seed.rotate_left(16),
                seed.rotate_left(32),
                seed.rotate_left(48),
            ],
            tail: [0u8; 32],
            tail_len: 0,
        }
    }

    fn update(&mut self, chunk: &[u8]) {
        debug_assert_eq!(self.tail_len, 0, "only the final chunk may be partial");
        let mut blocks = chunk.chunks_exact(32);
        for b in &mut blocks {
            for (k, lane) in self.lanes.iter_mut().enumerate() {
                let word = u64::from_le_bytes(b[k * 8..k * 8 + 8].try_into().expect("8 bytes"));
                *lane = mix64(*lane ^ word);
            }
        }
        let rem = blocks.remainder();
        self.tail[..rem.len()].copy_from_slice(rem);
        self.tail_len = rem.len();
    }

    fn finish(self) -> u64 {
        let [l0, l1, l2, l3] = self.lanes;
        let mut h = mix64(l0 ^ mix64(l1 ^ mix64(l2 ^ l3)));
        let rem = &self.tail[..self.tail_len];
        let mut words = rem.chunks_exact(8);
        for c in &mut words {
            h = mix64(h ^ u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")));
        }
        let part = words.remainder();
        if !part.is_empty() {
            let mut buf = [0u8; 8];
            buf[..part.len()].copy_from_slice(part);
            h = mix64(h ^ u64::from_le_bytes(buf));
        }
        h
    }
}

/// Serializes `graph` into the `.accg` byte format.
///
/// Infallible: every [`Graph`] is representable (dense ids already fit
/// `u32` by construction).
pub fn pack_graph(graph: &Graph) -> Vec<u8> {
    let (offsets, targets, target_edges, _) = graph.csr_parts();
    let n = graph.node_count() as u64;
    let m = graph.edge_count() as u64;
    let payload_len = offsets.len() * 8 + targets.len() * 4 + target_edges.len() * 4;
    let mut out = Vec::with_capacity(HEADER_LEN + payload_len);
    out.extend_from_slice(&STORE_MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&n.to_le_bytes());
    out.extend_from_slice(&m.to_le_bytes());
    out.extend_from_slice(&[0u8; 8]); // checksum backpatched below
    for &o in offsets {
        out.extend_from_slice(&(o as u64).to_le_bytes());
    }
    for &t in targets {
        out.extend_from_slice(&t.as_u32().to_le_bytes());
    }
    for &e in target_edges {
        out.extend_from_slice(&(e.index() as u32).to_le_bytes());
    }
    let sum = payload_checksum(&out[HEADER_LEN..], n, m);
    out[32..40].copy_from_slice(&sum.to_le_bytes());
    out
}

#[inline]
fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

#[inline]
fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Decodes and fully validates an `.accg` byte slice into a [`Graph`].
///
/// After the header, checksum and range checks, two passes over the
/// adjacency re-derive the canonical edge list while proving every CSR
/// invariant: iterating rows in node order with strictly ascending
/// targets visits each edge's `(lo, hi)` occurrence in canonical order
/// — those entries must carry sequential edge ids (pass 1) — and each
/// `(hi, lo)` mirror must point back at an identical derived edge
/// (pass 2; row ordering and self-loop checks live there too, and fan
/// out across threads on large graphs). Any violation yields a typed
/// [`StoreError`]; arbitrary bytes can never panic or produce a graph
/// that differs from a [`GraphBuilder`](crate::GraphBuilder) build.
///
/// # Errors
///
/// Returns the [`StoreError`] variant describing the first defect found.
pub fn load_graph_bytes(bytes: &[u8]) -> Result<Graph, StoreError> {
    load_graph_impl(bytes, true)
}

/// Decodes an `.accg` byte slice, skipping the structural
/// cross-consistency scan (pass 2 of [`load_graph_bytes`]).
///
/// The checksum and every bounds check still run, so accidental
/// corruption is caught and the result can never panic or index out of
/// bounds — but a *crafted* file that passes the checksum could yield a
/// graph whose adjacency is unsorted, asymmetric, or disagrees with its
/// edge ids. Use this for files you packed yourself (the steady-state
/// reload path of benchmarks and experiment runners); use
/// [`load_graph_bytes`] for untrusted input.
///
/// # Errors
///
/// Returns the [`StoreError`] variant describing the first defect found.
pub fn load_graph_bytes_trusted(bytes: &[u8]) -> Result<Graph, StoreError> {
    load_graph_impl(bytes, false)
}

/// Header checks shared by the slice and streaming loaders: magic,
/// version, reserved word, count limits, and the exact total length the
/// header implies versus `total_len`. Returns `(n, m, stored checksum)`.
fn parse_header(header: &[u8; HEADER_LEN], total_len: u64) -> Result<(u64, u64, u64), StoreError> {
    if header[..8] != STORE_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = read_u32(header, 8);
    if version != STORE_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: STORE_VERSION,
        });
    }
    if read_u32(header, 12) != 0 {
        return Err(StoreError::Corrupt {
            what: "reserved header field is not zero",
        });
    }
    let n64 = read_u64(header, 16);
    let m64 = read_u64(header, 24);
    let stored = read_u64(header, 32);
    if n64 > ID_LIMIT {
        return Err(StoreError::TooLarge {
            what: "node count",
            value: n64,
            limit: ID_LIMIT,
        });
    }
    if m64 > ID_LIMIT {
        return Err(StoreError::TooLarge {
            what: "edge count",
            value: m64,
            limit: ID_LIMIT,
        });
    }
    // No overflow: n, m ≤ 2³² − 1, so the sum stays far below 2⁶⁴.
    let expected = HEADER_LEN as u64 + (n64 + 1) * 8 + m64 * 16;
    if total_len < expected {
        return Err(StoreError::Truncated {
            expected,
            actual: total_len,
        });
    }
    if total_len > expected {
        return Err(StoreError::Corrupt {
            what: "trailing bytes after payload",
        });
    }
    Ok((n64, m64, stored))
}

fn load_graph_impl(bytes: &[u8], verify: bool) -> Result<Graph, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN as u64,
            actual: bytes.len() as u64,
        });
    }
    let header: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("header length");
    let (n64, m64, stored) = parse_header(header, bytes.len() as u64)?;
    let payload = &bytes[HEADER_LEN..];
    let n = n64 as usize;
    let m = m64 as usize;
    let half_edges = 2 * m;
    let targets_at = (n + 1) * 8;
    let edge_ids_at = targets_at + half_edges * 4;

    // Bulk-decode each array in a tight exact-size pass, then validate
    // with separate slice scans. Keeping error branches out of the
    // decode loops lets them run at memory bandwidth; the range checks
    // become vectorizable max-reductions. The checksum and the two u32
    // arrays are mutually independent, so they run on scoped threads —
    // the loader's critical path is the widest single array, not the
    // sum of all four passes.
    let (computed, raw_targets, max_target, raw_edge_ids, max_edge_id, offsets64) =
        std::thread::scope(|s| {
            let checksum = s.spawn(|| payload_checksum(payload, n64, m64));
            let targets = s.spawn(|| decode_u32_array(&payload[targets_at..edge_ids_at]));
            let edge_ids = s.spawn(|| decode_u32_array(&payload[edge_ids_at..]));
            // Offsets are decoded as `u64` on this thread so their
            // checks run pre-truncation even where `usize` is narrower.
            let offsets64: Vec<u64> = payload[..targets_at]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
                .collect();
            let (raw_targets, max_target) = targets.join().expect("decode thread");
            let (raw_edge_ids, max_edge_id) = edge_ids.join().expect("decode thread");
            let computed = checksum.join().expect("checksum thread");
            (
                computed,
                raw_targets,
                max_target,
                raw_edge_ids,
                max_edge_id,
                offsets64,
            )
        });
    assemble_graph(
        verify,
        n64,
        m64,
        stored,
        computed,
        offsets64,
        raw_targets,
        max_target,
        raw_edge_ids,
        max_edge_id,
    )
}

/// Validation-and-assembly tail shared by the slice and streaming
/// loaders: checksum comparison, offset/bounds checks, the lossless
/// narrowings, pass 1 (edge derivation) and — when `verify` — pass 2.
#[allow(clippy::too_many_arguments)]
fn assemble_graph(
    verify: bool,
    n64: u64,
    m64: u64,
    stored: u64,
    computed: u64,
    offsets64: Vec<u64>,
    raw_targets: Vec<u32>,
    max_target: u32,
    raw_edge_ids: Vec<u32>,
    max_edge_id: u32,
) -> Result<Graph, StoreError> {
    let n = n64 as usize;
    let m = m64 as usize;
    let half_edges = 2 * m;
    if computed != stored {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    if offsets64[0] != 0 {
        return Err(StoreError::Corrupt {
            what: "first CSR offset is not zero",
        });
    }
    if offsets64[n] != half_edges as u64 {
        return Err(StoreError::Corrupt {
            what: "final CSR offset does not equal 2·edge_count",
        });
    }
    if offsets64.windows(2).any(|w| w[0] > w[1]) {
        return Err(StoreError::Corrupt {
            what: "CSR offsets decrease",
        });
    }
    if !raw_targets.is_empty() && u64::from(max_target) >= n64 {
        return Err(StoreError::Corrupt {
            what: "neighbor id out of range",
        });
    }
    if !raw_edge_ids.is_empty() && u64::from(max_edge_id) >= m64 {
        return Err(StoreError::Corrupt {
            what: "edge id out of range",
        });
    }
    // Lossless narrowings: monotone offsets pinned at 0 and 2m bound
    // every entry, and the id wrappers share the u32 representation (the
    // in-place collects cost nothing).
    let offsets: Vec<usize> = offsets64.into_iter().map(|v| v as usize).collect();
    let targets: Vec<NodeId> = raw_targets.into_iter().map(NodeId::new).collect();
    let target_edges: Vec<EdgeId> = raw_edge_ids.into_iter().map(EdgeId::new).collect();

    // Pass 1 — canonical edge derivation (see the item docs): entries
    // with `w > v`, visited in row order, must carry sequential edge
    // ids. Runs sequentially because each push depends on the running
    // edge count.
    let mut edges: Vec<Edge> = Vec::with_capacity(m);
    if verify {
        for (v, pair) in offsets.windows(2).enumerate() {
            let vid = NodeId::from(v);
            let vu = vid.as_u32();
            let row_targets = &targets[pair[0]..pair[1]];
            let row_edges = &target_edges[pair[0]..pair[1]];
            for (&w, &id) in row_targets.iter().zip(row_edges) {
                if w.as_u32() > vu {
                    if id.index() != edges.len() {
                        return Err(StoreError::Corrupt {
                            what: "edge ids out of canonical order",
                        });
                    }
                    edges.push(Edge::new(vid, w));
                }
            }
        }
    } else {
        // Trusted fast path: in any well-formed file rows are sorted,
        // so the canonical entries form each row's suffix — binary
        // search for it and skip the mirror prefix entirely. A crafted
        // unsorted file lands a non-canonical entry in the suffix,
        // which the `w > v` guard converts into a typed error, so even
        // here nothing can panic or go out of bounds.
        for (v, pair) in offsets.windows(2).enumerate() {
            let vid = NodeId::from(v);
            let vu = vid.as_u32();
            let row_targets = &targets[pair[0]..pair[1]];
            let row_edges = &target_edges[pair[0]..pair[1]];
            let first = row_targets.partition_point(|w| w.as_u32() <= vu);
            for (&w, &id) in row_targets[first..].iter().zip(&row_edges[first..]) {
                if w.as_u32() <= vu || id.index() != edges.len() {
                    return Err(StoreError::Corrupt {
                        what: "edge ids out of canonical order",
                    });
                }
                edges.push(Edge::new(vid, w));
            }
        }
    }
    if edges.len() != m {
        return Err(StoreError::Corrupt {
            what: "edge count disagrees with adjacency",
        });
    }

    // Pass 2 — row validation (strict ordering, self-loops, mirror
    // agreement) reads the finished edge list, so it fans out over
    // near-equal-entry row chunks. A corrupt row fails in whichever
    // chunk holds it; any failure rejects the file. The trusted path
    // skips this pass: the checksum already catches accidental
    // corruption, and every access above is bounds-checked.
    if verify {
        let workers = if half_edges >= PARALLEL_VALIDATE_MIN {
            std::thread::available_parallelism().map_or(1, |p| p.get().min(8))
        } else {
            1
        };
        let chunks = balanced_row_chunks(&offsets, workers);
        if let [rows] = chunks.as_slice() {
            validate_rows(&offsets, &targets, &target_edges, &edges, rows.clone())?;
        } else {
            let results = std::thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|rows| {
                        let rows = rows.clone();
                        s.spawn(|| validate_rows(&offsets, &targets, &target_edges, &edges, rows))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("validate thread"))
                    .collect::<Vec<_>>()
            });
            for r in results {
                r?;
            }
        }
    }
    Ok(Graph::from_raw_csr(offsets, targets, target_edges, edges))
}

/// Adjacency-entry count below which pass-2 validation stays on the
/// calling thread (thread spawns would outweigh the scan).
const PARALLEL_VALIDATE_MIN: usize = 1 << 20;

/// Decodes a little-endian `u32` array in one branch-free pass,
/// returning the values and their maximum (0 when empty). The slice
/// length must be a multiple of four. Eight-wide blocks with per-slot
/// max accumulators let the whole pass — decode and reduction — run at
/// memory bandwidth instead of re-reading the array for the max.
fn decode_u32_array(bytes: &[u8]) -> (Vec<u32>, u32) {
    let mut vals: Vec<u32> = Vec::with_capacity(bytes.len() / 4);
    let max = decode_u32_append(bytes, &mut vals);
    (vals, max)
}

/// Appends the little-endian `u32`s in `bytes` to `out`, returning the
/// maximum appended value (0 when empty).
fn decode_u32_append(bytes: &[u8], out: &mut Vec<u32>) -> u32 {
    let mut maxes = [0u32; 8];
    let mut blocks = bytes.chunks_exact(32);
    for b in &mut blocks {
        let mut w = [0u32; 8];
        for (k, slot) in w.iter_mut().enumerate() {
            *slot = u32::from_le_bytes(b[k * 4..k * 4 + 4].try_into().expect("4 bytes"));
            maxes[k] = maxes[k].max(*slot);
        }
        out.extend_from_slice(&w);
    }
    let mut max = maxes.iter().copied().fold(0, u32::max);
    for c in blocks.remainder().chunks_exact(4) {
        let v = u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes"));
        max = max.max(v);
        out.push(v);
    }
    max
}

/// Splits rows `0..n` into at most `pieces` contiguous ranges holding
/// roughly equal numbers of adjacency entries (degree-balanced, so one
/// hub-heavy range cannot straggle).
fn balanced_row_chunks(offsets: &[usize], pieces: usize) -> Vec<std::ops::Range<usize>> {
    let n = offsets.len() - 1;
    let total = offsets[n];
    let mut chunks = Vec::with_capacity(pieces);
    let mut start = 0usize;
    for k in 1..=pieces {
        let end = if k == pieces {
            n
        } else {
            let goal = (total as u128 * k as u128 / pieces as u128) as usize;
            offsets.partition_point(|&o| o < goal).min(n).max(start)
        };
        if end > start || (k == pieces && chunks.is_empty()) {
            chunks.push(start..end);
            start = end;
        }
    }
    chunks
}

/// Pass-2 row validation: strict target ordering, no self-loops, and
/// every mirror entry (`w < v`) agreeing with its derived edge. Safe to
/// run concurrently over disjoint row ranges — all inputs are shared
/// read-only slices.
fn validate_rows(
    offsets: &[usize],
    targets: &[NodeId],
    target_edges: &[EdgeId],
    edges: &[Edge],
    rows: std::ops::Range<usize>,
) -> Result<(), StoreError> {
    for v in rows {
        let vid = NodeId::from(v);
        let vu = vid.as_u32();
        let row_targets = &targets[offsets[v]..offsets[v + 1]];
        let row_edges = &target_edges[offsets[v]..offsets[v + 1]];
        // `prev_plus1` encodes the strict-order check without an Option
        // (targets are < n ≤ u32::MAX, so the +1 cannot overflow).
        let mut prev_plus1 = 0u32;
        for (&w, &id) in row_targets.iter().zip(row_edges) {
            let wu = w.as_u32();
            if wu < prev_plus1 {
                return Err(StoreError::Corrupt {
                    what: "adjacency row not strictly sorted",
                });
            }
            prev_plus1 = wu + 1;
            if wu == vu {
                return Err(StoreError::Corrupt {
                    what: "self-loop in adjacency",
                });
            }
            if wu < vu {
                // Mirror entry: the canonical (lo, hi) occurrence lives
                // in row `w` (< v) and was derived in pass 1.
                match edges.get(id.index()) {
                    Some(e) if *e == Edge::new(w, vid) => {}
                    _ => {
                        return Err(StoreError::Corrupt {
                            what: "mirror adjacency entry disagrees with its edge id",
                        })
                    }
                }
            }
        }
    }
    Ok(())
}

/// Packs `graph` and writes it to `path` (conventionally `*.accg`).
///
/// # Errors
///
/// Returns [`StoreError::Io`] on file-system failures.
pub fn write_graph_file(path: impl AsRef<Path>, graph: &Graph) -> Result<(), StoreError> {
    std::fs::write(path, pack_graph(graph))?;
    Ok(())
}

/// Reads and fully validates a packed graph from `path`.
///
/// Streams the file through a fixed cache-sized buffer, folding the
/// checksum and decoding the arrays per chunk, so the whole file is
/// never materialized in memory — on bandwidth-bound machines this is
/// markedly faster than read-then-decode.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on file-system failures and the other
/// [`StoreError`] variants on malformed content.
pub fn read_graph_file(path: impl AsRef<Path>) -> Result<Graph, StoreError> {
    read_graph_impl(path.as_ref(), true)
}

/// Reads a packed graph from `path` via the trusted fast path
/// ([`load_graph_bytes_trusted`]): checksum and bounds checks only, no
/// structural cross-consistency scan. Streams like [`read_graph_file`].
///
/// # Errors
///
/// Returns [`StoreError::Io`] on file-system failures and the other
/// [`StoreError`] variants on malformed content.
pub fn read_graph_file_trusted(path: impl AsRef<Path>) -> Result<Graph, StoreError> {
    read_graph_impl(path.as_ref(), false)
}

/// Streaming buffer length: multiple of 32 (checksum block) and of 8
/// (entry alignment), small enough to stay cache-resident so decode
/// reads come from cache rather than DRAM.
const STREAM_BUF_LEN: usize = 1 << 22;

fn read_graph_impl(path: &Path, verify: bool) -> Result<Graph, StoreError> {
    use std::io::Read;

    let mut file = std::fs::File::open(path)?;
    let total_len = file.metadata()?.len();
    if total_len < HEADER_LEN as u64 {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN as u64,
            actual: total_len,
        });
    }
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header)?;
    let (n64, m64, stored) = parse_header(&header, total_len)?;
    let n = n64 as usize;
    let m = m64 as usize;
    let half_edges = 2 * m;
    let targets_at = (n + 1) * 8;
    let edge_ids_at = targets_at + half_edges * 4;
    let payload_len = edge_ids_at + half_edges * 4;

    // Every section boundary is a multiple of 8 ((n+1)·8 and 8m), and
    // every non-final chunk is a multiple of the buffer length, so the
    // per-section subranges below always land on entry boundaries.
    let mut lanes = ChecksumLanes::new(n64, m64);
    let mut offsets64: Vec<u64> = Vec::with_capacity(n + 1);
    let mut raw_targets: Vec<u32> = Vec::with_capacity(half_edges);
    let mut raw_edge_ids: Vec<u32> = Vec::with_capacity(half_edges);
    let mut max_target = 0u32;
    let mut max_edge_id = 0u32;
    let mut buf = vec![0u8; STREAM_BUF_LEN.min(payload_len.max(8))];
    let mut pos = 0usize;
    while pos < payload_len {
        let want = buf.len().min(payload_len - pos);
        let chunk = &mut buf[..want];
        file.read_exact(chunk)?;
        lanes.update(chunk);
        let mut s = 0usize;
        while s < chunk.len() {
            let at = pos + s;
            if at < targets_at {
                let take = (targets_at - at).min(chunk.len() - s);
                for c in chunk[s..s + take].chunks_exact(8) {
                    offsets64.push(u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")));
                }
                s += take;
            } else if at < edge_ids_at {
                let take = (edge_ids_at - at).min(chunk.len() - s);
                max_target =
                    max_target.max(decode_u32_append(&chunk[s..s + take], &mut raw_targets));
                s += take;
            } else {
                let take = chunk.len() - s;
                max_edge_id =
                    max_edge_id.max(decode_u32_append(&chunk[s..s + take], &mut raw_edge_ids));
                s += take;
            }
        }
        pos += want;
    }
    let computed = lanes.finish();
    assemble_graph(
        verify,
        n64,
        m64,
        stored,
        computed,
        offsets64,
        raw_targets,
        max_target,
        raw_edge_ids,
        max_edge_id,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, GraphBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_graph() -> Graph {
        generators::barabasi_albert(200, 4, &mut StdRng::seed_from_u64(7)).unwrap()
    }

    #[test]
    fn round_trips_bit_identically() {
        for g in [
            sample_graph(),
            GraphBuilder::new(0).build(),
            GraphBuilder::new(5).build(),
            GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3), (0, 3)]).unwrap(),
        ] {
            let bytes = pack_graph(&g);
            let back = load_graph_bytes(&bytes).unwrap();
            assert_eq!(g, back);
            // Packing the reloaded graph reproduces the exact bytes.
            assert_eq!(bytes, pack_graph(&back));
        }
    }

    #[test]
    fn trusted_path_round_trips_and_still_checksums() {
        let g = sample_graph();
        let bytes = pack_graph(&g);
        assert_eq!(load_graph_bytes_trusted(&bytes).unwrap(), g);
        // Bit flips are still rejected — the trusted path keeps the
        // checksum and bounds checks, skipping only pass 2.
        let mut flipped = bytes.clone();
        flipped[HEADER_LEN + 5] ^= 0x10;
        assert!(matches!(
            load_graph_bytes_trusted(&flipped),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        let err = load_graph_bytes_trusted(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, StoreError::Truncated { .. }));
    }

    #[test]
    fn file_round_trip() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join(format!("accg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.accg");
        write_graph_file(&path, &g).unwrap();
        let back = read_graph_file(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_file_loader_rejects_corruption() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join(format!("accg-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let clean = pack_graph(&g);

        let path = dir.join("trunc.accg");
        std::fs::write(&path, &clean[..clean.len() - 5]).unwrap();
        assert!(matches!(
            read_graph_file(&path),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            read_graph_file_trusted(&path),
            Err(StoreError::Truncated { .. })
        ));

        let path = dir.join("flip.accg");
        let mut flipped = clean.clone();
        flipped[HEADER_LEN + 21] ^= 0x04;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            read_graph_file(&path),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            read_graph_file_trusted(&path),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        let path = dir.join("ok.accg");
        std::fs::write(&path, &clean).unwrap();
        assert_eq!(read_graph_file(&path).unwrap(), g);
        assert_eq!(read_graph_file_trusted(&path).unwrap(), g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let g = sample_graph();
        let mut bytes = pack_graph(&g);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            load_graph_bytes(&bytes),
            Err(StoreError::BadMagic)
        ));
        let mut bytes = pack_graph(&g);
        bytes[8] = 99;
        let sum = payload_checksum(&bytes[HEADER_LEN..], 200, g.edge_count() as u64);
        bytes[32..40].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            load_graph_bytes(&bytes),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_prefix_length() {
        let bytes = pack_graph(&sample_graph());
        for len in [
            0,
            7,
            HEADER_LEN - 1,
            HEADER_LEN,
            HEADER_LEN + 9,
            bytes.len() - 1,
        ] {
            let err = load_graph_bytes(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated { .. }),
                "prefix {len}: {err}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = pack_graph(&sample_graph());
        bytes.push(0);
        assert!(matches!(
            load_graph_bytes(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn checksum_catches_payload_bitflips() {
        let clean = pack_graph(&sample_graph());
        for at in [HEADER_LEN, HEADER_LEN + 13, clean.len() - 1] {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x20;
            assert!(
                matches!(
                    load_graph_bytes(&bytes),
                    Err(StoreError::ChecksumMismatch { .. })
                ),
                "flip at {at} undetected"
            );
        }
    }

    #[test]
    fn rejects_oversized_counts() {
        let g = GraphBuilder::new(1).build();
        let mut bytes = pack_graph(&g);
        bytes[16..24].copy_from_slice(&(ID_LIMIT + 1).to_le_bytes());
        assert!(matches!(
            load_graph_bytes(&bytes),
            Err(StoreError::TooLarge { .. })
        ));
    }

    /// Re-checksums a tampered payload so the structural validators
    /// (not the checksum) are what reject it.
    fn reseal(bytes: &mut [u8]) {
        let n = read_u64(bytes, 16);
        let m = read_u64(bytes, 24);
        let sum = payload_checksum(&bytes[HEADER_LEN..], n, m);
        bytes[32..40].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn structural_validation_rejects_resealed_corruption() {
        let g = GraphBuilder::from_edges(3, [(0u32, 1u32), (1, 2)]).unwrap();
        // Self-loop: first adjacency target of node 0 becomes 0.
        let mut bytes = pack_graph(&g);
        let targets_at = HEADER_LEN + 4 * 8;
        bytes[targets_at..targets_at + 4].copy_from_slice(&0u32.to_le_bytes());
        reseal(&mut bytes);
        assert!(matches!(
            load_graph_bytes(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
        // Out-of-range neighbor id.
        let mut bytes = pack_graph(&g);
        bytes[targets_at..targets_at + 4].copy_from_slice(&7u32.to_le_bytes());
        reseal(&mut bytes);
        assert!(matches!(
            load_graph_bytes(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
        // Decreasing offsets.
        let mut bytes = pack_graph(&g);
        bytes[HEADER_LEN + 8..HEADER_LEN + 16].copy_from_slice(&4u64.to_le_bytes());
        reseal(&mut bytes);
        assert!(matches!(
            load_graph_bytes(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
        // Swapped edge ids break the canonical-order / mirror checks.
        // Entries 1 and 2 are the two halves of node 1's row (ids 0
        // and 1); swapping makes its mirror entry point forward.
        let mut bytes = pack_graph(&g);
        let ids_at = HEADER_LEN + 4 * 8 + 4 * 4 + 4;
        let (a, b) = (read_u32(&bytes, ids_at), read_u32(&bytes, ids_at + 4));
        assert_ne!(a, b);
        bytes[ids_at..ids_at + 4].copy_from_slice(&b.to_le_bytes());
        bytes[ids_at + 4..ids_at + 8].copy_from_slice(&a.to_le_bytes());
        reseal(&mut bytes);
        assert!(matches!(
            load_graph_bytes(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        let e = StoreError::Truncated {
            expected: 100,
            actual: 10,
        };
        assert!(e.to_string().contains("100"));
        let e = StoreError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("mismatch"));
        assert!(StoreError::from(io::Error::other("boom"))
            .to_string()
            .contains("boom"));
    }
}
