//! Property tests for the `.accg` CSR store: pack → load bit-identity
//! across every scale-tier generator family, through the in-memory
//! loaders and the streaming file loader alike.

use osn_graph::generators::{self, RmatParams};
use osn_graph::{store, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_graph(family: usize, seed: u64, n: usize, m: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    match family {
        0 => generators::barabasi_albert(n.max(m + 1), m, &mut rng).expect("ba"),
        1 => generators::watts_strogatz(n.max(8), (2 * m).clamp(2, 6), 0.1, &mut rng).expect("ws"),
        2 => {
            let max_deg = (n / 2).clamp(3, 24);
            generators::powerlaw_configuration(n, 2.5, 1, max_deg, &mut rng).expect("config")
        }
        _ => generators::rmat(
            4 + (n % 3) as u32,
            m.max(2),
            RmatParams::classic(),
            &mut rng,
        )
        .expect("rmat"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Pack → load is bit-identical for every family, on both the
    /// fully-verified and the trusted loader, and re-packing the loaded
    /// graph reproduces the byte image exactly (the format is a
    /// function of the graph, nothing else).
    #[test]
    fn pack_load_round_trips_bit_identically(
        family in 0usize..4,
        seed in 0u64..10_000,
        n in 16usize..240,
        m in 1usize..5,
    ) {
        let g = sample_graph(family, seed, n, m);
        let bytes = store::pack_graph(&g);
        let verified = store::load_graph_bytes(&bytes).expect("verified load");
        let trusted = store::load_graph_bytes_trusted(&bytes).expect("trusted load");
        prop_assert_eq!(&verified, &g);
        prop_assert_eq!(&trusted, &g);
        prop_assert_eq!(store::pack_graph(&verified), bytes);
    }

    /// The streaming file loader agrees with the slice loaders on the
    /// same random graphs.
    #[test]
    fn file_loaders_match_slice_loaders(
        family in 0usize..4,
        seed in 0u64..10_000,
        n in 16usize..160,
    ) {
        let g = sample_graph(family, seed, n, 3);
        let path = std::env::temp_dir().join(format!(
            "accg_prop_{family}_{seed}_{n}_{}.accg",
            std::process::id()
        ));
        store::write_graph_file(&path, &g).expect("write");
        let verified = store::read_graph_file(&path).expect("verified file load");
        let trusted = store::read_graph_file_trusted(&path).expect("trusted file load");
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(&verified, &g);
        prop_assert_eq!(&trusted, &g);
    }

    /// Any single bit flip anywhere in the image is rejected by both
    /// loaders — the interleaved checksum (or a header / structural
    /// check) always catches it.
    #[test]
    fn single_bit_flips_are_always_rejected(
        seed in 0u64..10_000,
        byte_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let g = sample_graph(0, seed, 48, 2);
        let mut bytes = store::pack_graph(&g);
        let i = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[i] ^= 1 << bit;
        prop_assert!(store::load_graph_bytes(&bytes).is_err());
        prop_assert!(store::load_graph_bytes_trusted(&bytes).is_err());
    }

    /// Every strict prefix of the image is rejected as truncated or
    /// otherwise corrupt — by the slice loaders and the streaming file
    /// loader alike.
    #[test]
    fn truncations_are_always_rejected(
        seed in 0u64..10_000,
        len_frac in 0.0f64..1.0,
    ) {
        let g = sample_graph(0, seed, 48, 2);
        let bytes = store::pack_graph(&g);
        let len = ((bytes.len() - 1) as f64 * len_frac) as usize;
        prop_assert!(store::load_graph_bytes(&bytes[..len]).is_err());
        prop_assert!(store::load_graph_bytes_trusted(&bytes[..len]).is_err());
        let path = std::env::temp_dir().join(format!(
            "accg_trunc_{seed}_{len}_{}.accg",
            std::process::id()
        ));
        std::fs::write(&path, &bytes[..len]).expect("write truncated");
        let verified = store::read_graph_file(&path);
        let trusted = store::read_graph_file_trusted(&path);
        let _ = std::fs::remove_file(&path);
        prop_assert!(verified.is_err());
        prop_assert!(trusted.is_err());
    }
}
