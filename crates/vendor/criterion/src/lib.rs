//! Offline vendored stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! The build environment has no network access, so this crate provides a
//! minimal-but-honest timing harness with the criterion 0.5 API subset
//! the ACCU benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed
//! samples, and prints min/median/mean to stdout. There are no plots,
//! no statistical regression analysis, and no saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter, scoped by the group name.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the timing loop of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples after one warm-up
    /// call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up (also primes caches/allocations)
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{label:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            sorted.len()
        );
    }
}

/// The top-level benchmark manager.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults to 100 samples; 10 keeps the no-analysis
        // stand-in quick while median/min stay stable.
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line filtering is not
    /// implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.default_sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&id.name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.name));
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.name));
        self
    }

    /// Ends the group (upstream flushes reports here; ours are
    /// printed eagerly).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        c.bench_function("counting", |b| {
            b.iter(|| calls += 1);
        });
        // 1 warm-up + default samples.
        assert_eq!(calls, 11);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
    }
}
