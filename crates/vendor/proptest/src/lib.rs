//! Offline vendored stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no network access, so this crate implements
//! the subset of the proptest 1.x API that the ACCU workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, [`collection::vec`],
//! [`strategy::Just`], [`any`], the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_oneof!`] macros, and
//! [`test_runner::ProptestConfig`].
//!
//! Semantics differ from upstream in one deliberate way: failures panic
//! immediately with the failing assertion (no shrinking, no persisted
//! regressions). Case generation is deterministic — every run draws the
//! same seeded sequence — so failures are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy trait, adapters, and the concrete strategy types.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<W, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> W,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then draws from the strategy
        /// `f` builds from it.
        fn prop_flat_map<W, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            W: Strategy,
            F: Fn(Self::Value) -> W,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, W> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> W,
    {
        type Value = W;

        fn generate(&self, rng: &mut TestRng) -> W {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, W> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        W: Strategy,
        F: Fn(S::Value) -> W,
    {
        type Value = W::Value;

        fn generate(&self, rng: &mut TestRng) -> W::Value {
            let mid = self.inner.generate(rng);
            (self.f)(mid).generate(rng)
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally weighted boxed alternatives
    /// (the [`prop_oneof!`](crate::prop_oneof) backend).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("options", &self.options.len())
                .finish()
        }
    }

    impl<V> Union<V> {
        /// Creates a union over the given alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Full-range strategy for a primitive type (the [`crate::any`]
    /// backend).
    #[derive(Debug, Clone)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: rand::Standardable> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    macro_rules! range_strategies {
        (int: $($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(int: u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies ([`collection::vec`]).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-of-low, exclusive-of-high length range.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Creates a strategy generating vectors of `element` with a length
    /// in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-runner configuration and the RNG driving generation.
pub mod test_runner {
    pub use rand::SeedableRng;

    /// The generator used to drive strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of cases generated per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the offline suite quick
            // while still exploring a meaningful sample.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Full-range strategy for a primitive type.
pub fn any<T: rand::Standardable>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `cases` seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases as u64 {
                let mut __rng =
                    <$crate::test_runner::TestRng as $crate::test_runner::SeedableRng>::
                        seed_from_u64(0xACC0_7E57u64 ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure; this
/// vendored stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_vec_and_map() {
        let mut rng =
            <crate::test_runner::TestRng as crate::test_runner::SeedableRng>::seed_from_u64(1);
        let s = (0u32..5, (0.0f64..=1.0).prop_map(|x| x * 2.0));
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 5);
            assert!((0.0..=2.0).contains(&b));
        }
        let v = collection::vec(0usize..10, 3usize).generate(&mut rng);
        assert_eq!(v.len(), 3);
        let v = collection::vec(0usize..10, 0..6).generate(&mut rng);
        assert!(v.len() < 6);
    }

    #[test]
    fn flat_map_threads_intermediate() {
        let mut rng =
            <crate::test_runner::TestRng as crate::test_runner::SeedableRng>::seed_from_u64(2);
        let s = (1usize..4).prop_flat_map(|n| collection::vec(0usize..10, n));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_just() {
        let mut rng =
            <crate::test_runner::TestRng as crate::test_runner::SeedableRng>::seed_from_u64(3);
        let s = prop_oneof![Just(1usize), Just(2usize), (5usize..7)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2));
        assert!(seen.iter().all(|&x| x == 1 || x == 2 || x == 5 || x == 6));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0u32..10, v in collection::vec(any::<u64>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4, "len was {}", v.len());
            prop_assert_eq!(x as u64 + 1, u64::from(x) + 1);
        }
    }
}
