//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API subset).
//!
//! The build environment has no network access and no registry cache, so
//! the workspace cannot download the real `rand`. This crate implements
//! exactly the surface the ACCU workspace uses — [`Rng::gen`],
//! [`Rng::gen_range`] (half-open and inclusive integer/float ranges),
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`]
//! and [`rngs::SmallRng`] — on top of a xoshiro256++ generator seeded
//! via SplitMix64.
//!
//! Streams are deterministic per seed (the property every experiment and
//! test in this workspace relies on) but intentionally do **not** match
//! the upstream crate's streams bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's full range.
pub trait Standardable {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! int_standardable {
    ($($t:ty),*) => {$(
        impl Standardable for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_standardable!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standardable for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standardable for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standardable for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts, mirroring rand 0.8's
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough bounded integer draw (Lemire-style multiply is
/// unnecessary here; modulo bias over a 64-bit source is ≤ 2⁻⁴⁰ for
/// every span this workspace uses).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Use 64 fresh bits; bias is span/2^64 which is negligible for the
    // graph-sized spans used here.
    rng.next_u64() % span
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return <$t as Standardable>::draw(rng);
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standardable>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standardable>::draw(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// The user-facing generator interface (rand 0.8 `Rng` subset).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its full/unit range.
    fn gen<T: Standardable>(&mut self) -> T {
        T::draw(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        <f64 as Standardable>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed (rand 0.8 subset).
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public-domain constants).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// xoshiro256++ core shared by [`StdRng`] and [`SmallRng`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_bytes(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                let mut sm = SplitMix64(0xDEAD_BEEF);
                for word in &mut s {
                    *word = sm.next();
                }
            }
            Xoshiro256 { s }
        }

        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Drop-in for `rand::rngs::StdRng`: seeded, deterministic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(Xoshiro256::from_bytes(seed))
        }
    }

    /// Drop-in for `rand::rngs::SmallRng`: same core, distinct stream
    /// (the seed is perturbed so `SmallRng` and `StdRng` with equal
    /// seeds do not correlate).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(mut seed: Self::Seed) -> Self {
            seed[0] ^= 0x53; // decorrelate from StdRng at the same seed
            SmallRng(Xoshiro256::from_bytes(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..=5);
            assert!(y <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn unit_floats_and_bools() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut trues = 0usize;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            if rng.gen_bool(0.3) {
                trues += 1;
            }
        }
        assert!(
            (2_500..3_500).contains(&trues),
            "gen_bool(0.3) gave {trues}/10000"
        );
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_range_draws_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        assert_ne!(a, b);
        let _: u32 = rng.gen();
        let _: usize = rng.gen();
    }

    #[test]
    fn small_and_std_streams_differ() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(11);
        let v = takes_dynish(&mut rng);
        assert!(v < 100);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }
}
