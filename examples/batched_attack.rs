//! Batched requests vs full adaptivity — an ablation of the paper's
//! one-request-at-a-time observation model (cf. the parallel-batching
//! regime of the related ICDCS'17 work).
//!
//! Sends the same budget in batches of 1 (fully adaptive), 5, 25 and 100
//! and reports the benefit lost to reduced adaptivity.
//!
//! Run with `cargo run --release --example batched_attack`.

use accu::core::policy::{run_batched_abm, AbmWeights};
use accu::datasets::{apply_protocol, DatasetSpec, ProtocolConfig};
use accu::Realization;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 100;
    let runs = 6;
    let mut rng = StdRng::seed_from_u64(17);
    let graph = DatasetSpec::slashdot().scaled(0.02).generate(&mut rng)?;
    let protocol = ProtocolConfig {
        cautious_count: 20,
        ..ProtocolConfig::default()
    };
    let instance = apply_protocol(graph, &protocol, &mut rng)?;
    println!(
        "batched ABM on {} users ({} cautious), budget {k}, {} realizations\n",
        instance.node_count(),
        instance.cautious_users().len(),
        runs
    );

    let realizations: Vec<Realization> = (0..runs)
        .map(|_| Realization::sample(&instance, &mut rng))
        .collect();

    println!(
        "{:>6}  {:>10}  {:>16}  {:>8}",
        "batch", "E[benefit]", "cautious friends", "rounds"
    );
    let mut fully_adaptive = None;
    for batch in [1usize, 5, 25, 100] {
        let mut benefit = 0.0;
        let mut cautious = 0.0;
        let mut rounds = 0usize;
        for real in &realizations {
            let out = run_batched_abm(&instance, real, AbmWeights::balanced(), k, batch);
            benefit += out.total_benefit;
            cautious += out.cautious_friends as f64;
            rounds = out.rounds.len();
        }
        benefit /= runs as f64;
        cautious /= runs as f64;
        println!("{batch:>6}  {benefit:>10.1}  {cautious:>16.2}  {rounds:>8}");
        if batch == 1 {
            fully_adaptive = Some(benefit);
        } else if let Some(base) = fully_adaptive {
            let loss = 100.0 * (base - benefit) / base;
            println!("{:>6}  (adaptivity loss vs batch=1: {loss:.1}%)", "");
        }
    }
    println!(
        "\nbatching compresses the attack into fewer observation rounds at the cost of\n\
         later, less-informed decisions — the trade-off motivating adaptive crawling."
    );
    Ok(())
}
