//! The defender's view: how much does cautiousness actually protect?
//!
//! The paper motivates cautious users as a *defense* against socialbot
//! crawling. This example quantifies that defense on a Facebook-like
//! network: it sweeps the mutual-friend threshold (as a fraction of
//! degree) and measures how often the high-value users fall to an ABM
//! attacker, plus the attacker's total haul.
//!
//! Run with `cargo run --release --example defense_hardening`.

use accu::datasets::{apply_protocol, DatasetSpec, ProtocolConfig};
use accu::policy::{Abm, AbmWeights};
use accu::{run_attack, Realization};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 150;
    let runs = 8;
    println!("defense analysis: ABM attacker vs increasingly cautious high-value users\n");
    println!(
        "{:>11}  {:>14}  {:>16}  {:>12}",
        "θ fraction", "E[benefit]", "cautious falls", "exposure %"
    );

    let mut previous_falls = f64::INFINITY;
    for tf in [0.1, 0.2, 0.3, 0.5, 0.7, 0.9] {
        let mut rng = StdRng::seed_from_u64(99); // same worlds per setting
        let graph = DatasetSpec::facebook().scaled(0.3).generate(&mut rng)?;
        let protocol = ProtocolConfig {
            cautious_count: 25,
            threshold_fraction: tf,
            ..ProtocolConfig::default()
        };
        let instance = apply_protocol(graph, &protocol, &mut rng)?;
        let cautious_total = instance.cautious_users().len() as f64;

        let mut benefit_sum = 0.0;
        let mut falls_sum = 0.0;
        let mut abm = Abm::new(AbmWeights::balanced());
        for _ in 0..runs {
            let realization = Realization::sample(&instance, &mut rng);
            let outcome = run_attack(&instance, &realization, &mut abm, k);
            benefit_sum += outcome.total_benefit;
            falls_sum += outcome.cautious_friends as f64;
        }
        let mean_benefit = benefit_sum / runs as f64;
        let mean_falls = falls_sum / runs as f64;
        let exposure = 100.0 * mean_falls / cautious_total;
        println!(
            "{:>10.0}%  {:>14.1}  {:>16.2}  {:>11.1}%",
            tf * 100.0,
            mean_benefit,
            mean_falls,
            exposure
        );
        // Hardening should never *help* the attacker reach cautious users.
        assert!(
            mean_falls <= previous_falls + 1e-9,
            "raising thresholds must not increase cautious compromises"
        );
        previous_falls = mean_falls;
    }

    println!(
        "\ntakeaway: raising the mutual-friend threshold monotonically cuts the number of\n\
         compromised high-value users; the attacker's residual benefit comes from the\n\
         reckless population (cf. the paper's Fig. 6/7 sensitivity analysis)."
    );
    Ok(())
}
