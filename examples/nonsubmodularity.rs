//! A guided tour of the paper's theory on a toy instance:
//!
//! 1. the Fig. 1 counterexample to adaptive submodularity;
//! 2. the adaptive submodular ratio `λ` by brute force vs the Lemma 4
//!    closed form;
//! 3. the `1 − e^{−λ}` guarantee of Theorem 1, validated against the
//!    exhaustively optimal adaptive policy.
//!
//! Run with `cargo run --example nonsubmodularity`.

use accu::policy::pure_greedy;
use accu::theory::{
    adaptive_submodular_ratio, enumerate_realizations, exact_marginal_gain, greedy_ratio,
    lemma4_lambda, optimal_adaptive_benefit,
};
use accu::{
    run_attack, AccuInstanceBuilder, GraphBuilder, NodeId, Observation, Realization, UserClass,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Fig. 1 counterexample -------------------------------------
    let g = GraphBuilder::from_edges(2, [(0u32, 1u32)])?;
    let fig1 = AccuInstanceBuilder::new(g)
        .user_class(NodeId::new(0), UserClass::cautious(1))
        .benefits(NodeId::new(0), 2.0, 1.0)
        .build()?;
    let empty = Observation::for_instance(&fig1);
    let d0 = exact_marginal_gain(&fig1, &empty, NodeId::new(0))?;
    let real = Realization::from_parts(&fig1, vec![true], vec![false, true])?;
    let mut grown = Observation::for_instance(&fig1);
    grown.record_acceptance(NodeId::new(1), &fig1, &real);
    let d1 = exact_marginal_gain(&fig1, &grown, NodeId::new(0))?;
    println!("1. Fig. 1 counterexample: Δ(v_c|∅) = {d0}, Δ(v_c|ω') = {d1}");
    println!("   gain GREW as the observation grew → not adaptive submodular\n");

    // --- 2. λ: brute force vs Lemma 4 ---------------------------------
    // Pendant cautious user, B_fof ≡ 0 so the closed form is exact.
    let g = GraphBuilder::from_edges(3, [(0u32, 1u32), (0, 2)])?;
    let inst = AccuInstanceBuilder::new(g)
        .user_class(NodeId::new(1), UserClass::cautious(1))
        .benefits(NodeId::new(0), 3.0, 0.0)
        .benefits(NodeId::new(1), 10.0, 0.0)
        .benefits(NodeId::new(2), 2.0, 0.0)
        .build()?;
    let brute = adaptive_submodular_ratio(&inst)?;
    let closed = lemma4_lambda(inst.graph(), inst.benefits(), NodeId::new(1), 1);
    println!("2. adaptive submodular ratio λ: brute force {brute:.4}, Lemma 4 {closed:.4}");
    println!(
        "   Theorem 1 guarantee: greedy ≥ (1 − e^{{-λ}})·OPT = {:.4}·OPT\n",
        greedy_ratio(brute)
    );

    // --- 3. validate the bound against the true optimum ----------------
    let ensemble = enumerate_realizations(&inst)?;
    for k in 1..=3usize {
        let opt = optimal_adaptive_benefit(&inst, k)?;
        let greedy_value: f64 = ensemble
            .iter()
            .map(|(real, prob)| {
                let mut greedy = pure_greedy();
                prob * run_attack(&inst, real, &mut greedy, k).total_benefit
            })
            .sum();
        let bound = greedy_ratio(brute) * opt;
        println!(
            "3. k={k}: OPT = {opt:.3}, greedy = {greedy_value:.3}, bound = {bound:.3}  {}",
            if greedy_value + 1e-9 >= bound {
                "✓ holds"
            } else {
                "✗ VIOLATED"
            }
        );
        assert!(greedy_value + 1e-9 >= bound, "Theorem 1 must hold");
    }
    Ok(())
}
