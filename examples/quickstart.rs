//! Quickstart: build a tiny social network by hand, mark one high-value
//! user as cautious, and watch ABM unlock them.
//!
//! Run with `cargo run --example quickstart`.

use accu::policy::{Abm, AbmWeights};
use accu::{run_attack, AccuInstanceBuilder, GraphBuilder, NodeId, Realization, UserClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6-user network: hub 0 connects leaves 1-4; user 5 is a cautious
    // executive connected to 1, 2 and 3 who only accepts requests from
    // someone sharing at least two mutual friends.
    let graph = GraphBuilder::from_edges(
        6,
        [(0u32, 1u32), (0, 2), (0, 3), (0, 4), (5, 1), (5, 2), (5, 3)],
    )?;
    let executive = NodeId::new(5);
    let instance = AccuInstanceBuilder::new(graph)
        .uniform_edge_probability(0.9) // the attacker's map is slightly uncertain
        .user_class(executive, UserClass::cautious(2))
        .benefits(executive, 50.0, 1.0) // befriending the executive is the prize
        .build()?;

    println!("network: {:?}", instance);
    println!("cautious users: {:?}", instance.cautious_users());

    // Sample one world (which edges really exist, who would accept) and
    // run the paper's ABM policy with a budget of 4 requests.
    let mut rng = StdRng::seed_from_u64(7);
    let realization = Realization::sample(&instance, &mut rng);
    let mut abm = Abm::new(AbmWeights::balanced());
    let outcome = run_attack(&instance, &realization, &mut abm, 4);

    println!("\nattack trace:");
    for r in &outcome.trace {
        println!(
            "  request {} -> user {} ({}) : {}  (marginal +{:.1}, total {:.1})",
            r.step + 1,
            r.target,
            if r.cautious { "cautious" } else { "reckless" },
            if r.accepted { "ACCEPTED" } else { "rejected" },
            r.gain.total(),
            r.cumulative_benefit,
        );
    }
    println!(
        "\ntotal benefit {:.1}; {} friends, {} of them cautious",
        outcome.total_benefit,
        outcome.friends.len(),
        outcome.cautious_friends
    );
    if outcome.cautious_friends > 0 {
        println!("the executive was unlocked by befriending their friends first ✓");
    }
    Ok(())
}
