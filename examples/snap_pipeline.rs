//! The real-data pipeline: write a network to disk in SNAP edge-list
//! format, load it back (largest component + BFS sampling), archive the
//! derived ACCU instance, and export an attack trace as CSV — everything
//! a study on the real SNAP downloads would do, demonstrated offline
//! with a synthetic network standing in for the download.
//!
//! Run with `cargo run --example snap_pipeline`.

use accu::core::io::{read_instance, write_instance, write_trace_csv};
use accu::datasets::{apply_protocol, load_snap_sampled, DatasetSpec, ProtocolConfig};
use accu::policy::{Abm, AbmWeights};
use accu::{run_attack, Realization};
use osn_graph::io::write_edge_list;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("accu-snap-pipeline");
    std::fs::create_dir_all(&dir)?;
    let mut rng = StdRng::seed_from_u64(2019);

    // 1. Stand-in for a SNAP download: synthesize and write an edge list.
    let full = DatasetSpec::facebook().scaled(0.5).generate(&mut rng)?;
    let edges_path = dir.join("facebook_combined.txt");
    write_edge_list(&full, File::create(&edges_path)?)?;
    println!(
        "wrote   {} ({} nodes, {} edges)",
        edges_path.display(),
        full.node_count(),
        full.edge_count()
    );

    // 2. Load it the way a real study would: largest component, then a
    //    BFS sample at working size.
    let sampled = load_snap_sampled(&edges_path, 600, &mut rng)?;
    println!(
        "sampled {} nodes, {} edges (BFS snowball preserves mutual-friend structure)",
        sampled.node_count(),
        sampled.edge_count()
    );

    // 3. Apply the paper's experiment protocol and archive the instance.
    let protocol = ProtocolConfig {
        cautious_count: 15,
        ..ProtocolConfig::default()
    };
    let instance = apply_protocol(sampled, &protocol, &mut rng)?;
    let inst_path = dir.join("instance.accu");
    write_instance(&instance, File::create(&inst_path)?)?;
    let reloaded = read_instance(File::open(&inst_path)?)?;
    assert_eq!(reloaded.node_count(), instance.node_count());
    assert_eq!(reloaded.cautious_users(), instance.cautious_users());
    println!(
        "archived {} and verified the round trip",
        inst_path.display()
    );

    // 4. Run one attack and export the trace.
    let realization = Realization::sample(&reloaded, &mut rng);
    let mut abm = Abm::new(AbmWeights::balanced());
    let outcome = run_attack(&reloaded, &realization, &mut abm, 60);
    let trace_path = dir.join("trace.csv");
    write_trace_csv(&outcome, File::create(&trace_path)?)?;
    println!(
        "attack: benefit {:.1}, {} friends ({} cautious); trace at {}",
        outcome.total_benefit,
        outcome.friends.len(),
        outcome.cautious_friends,
        trace_path.display()
    );
    Ok(())
}
