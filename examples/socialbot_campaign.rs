//! A full socialbot reconnaissance campaign on a Twitter-like network:
//! generate the dataset stand-in, apply the paper's experiment protocol,
//! and compare ABM against the PageRank / MaxDegree / Random baselines
//! over repeated Monte-Carlo attacks.
//!
//! Run with `cargo run --release --example socialbot_campaign`.

use accu::datasets::{apply_protocol, DatasetSpec, ProtocolConfig};
use accu::policy::{pure_greedy, Abm, AbmWeights, MaxDegree, PageRankPolicy, Random};
use accu::{expected_benefit, Policy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 150; // request budget
    let samples = 10; // Monte-Carlo realizations per policy

    let mut rng = StdRng::seed_from_u64(2019);
    let spec = DatasetSpec::twitter().scaled(0.02); // ~1.6k users
    let graph = spec.generate(&mut rng)?;
    println!(
        "campaign network: {} — {} users, {} friendships",
        spec.name(),
        graph.node_count(),
        graph.edge_count()
    );
    let protocol = ProtocolConfig {
        cautious_count: 30,
        ..ProtocolConfig::default()
    };
    let instance = apply_protocol(graph, &protocol, &mut rng)?;
    println!(
        "{} cautious users selected (degree band {:?}, thresholds at {:.0}% of degree)\n",
        instance.cautious_users().len(),
        protocol.degree_band,
        protocol.threshold_fraction * 100.0
    );

    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(Abm::new(AbmWeights::balanced())),
        Box::new(pure_greedy()),
        Box::new(PageRankPolicy::new()),
        Box::new(MaxDegree::new()),
        Box::new(Random::new(7)),
    ];

    println!(
        "{:>10}  {:>12}  {:>10}",
        "policy", "E[benefit]", "std error"
    );
    let mut results = Vec::new();
    for policy in policies.iter_mut() {
        // Same seed per policy: every policy faces identical worlds.
        let mut eval_rng = StdRng::seed_from_u64(555);
        let stats = expected_benefit(&instance, policy.as_mut(), k, samples, &mut eval_rng);
        println!(
            "{:>10}  {:>12.1}  {:>10.1}",
            policy.name(),
            stats.mean,
            stats.std_error
        );
        results.push((policy.name().to_string(), stats.mean));
    }

    results.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\nranking: {}",
        results
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(" > ")
    );
    assert_eq!(results[0].0, "ABM", "ABM should lead the ranking");
    println!("ABM leads, as in the paper's Fig. 2.");
    Ok(())
}
