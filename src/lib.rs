//! # accu
//!
//! Umbrella crate for the reproduction of **Adaptive Crawling with
//! Cautious Users** (Li, Pan, Tong & Pan, IEEE ICDCS 2019).
//!
//! This crate re-exports the whole stack:
//!
//! * [`graph`] ([`osn_graph`]) — the graph substrate: CSR storage,
//!   generators, algorithms, SNAP-format I/O;
//! * [`core`] ([`accu_core`]) — the ACCU model, the ABM policy and
//!   baselines, the adaptive simulator, and the approximation theory;
//! * [`datasets`] ([`accu_datasets`]) — Table I dataset stand-ins and
//!   the paper's experiment protocol.
//!
//! The most common items are also re-exported at the crate root.
//!
//! ## Example
//!
//! ```
//! use accu::datasets::{apply_protocol, DatasetSpec, ProtocolConfig};
//! use accu::policy::{Abm, AbmWeights};
//! use accu::{run_attack, Realization};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let graph = DatasetSpec::facebook().scaled(0.05).generate(&mut rng)?;
//! let instance = apply_protocol(
//!     graph,
//!     &ProtocolConfig { cautious_count: 5, ..ProtocolConfig::default() },
//!     &mut rng,
//! )?;
//! let realization = Realization::sample(&instance, &mut rng);
//! let mut abm = Abm::new(AbmWeights::balanced());
//! let outcome = run_attack(&instance, &realization, &mut abm, 30);
//! assert_eq!(outcome.requests_sent(), 30);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use accu_core as core;
pub use accu_datasets as datasets;
pub use osn_graph as graph;

pub use accu_core::{
    benefit_of_friend_set, benefit_of_request_set, cautious_risk_scores, expected_benefit,
    gatekeeper_scores, policy, resolve_acceptance, run_attack, run_attack_with_beliefs,
    run_omniscient_greedy, sample_outcomes, simulate_exposure, theory, AccuError, AccuInstance,
    AccuInstanceBuilder, AttackOutcome, AttackerView, BenefitSchedule, BenefitState,
    ExposureReport, MarginalGain, MonteCarloStats, Observation, Policy, Realization, RequestRecord,
    TraceAccumulator, UserClass,
};
pub use osn_graph::{Edge, EdgeId, Graph, GraphBuilder, GraphError, NodeId};
