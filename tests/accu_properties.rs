//! Property-based tests for the ACCU core invariants.

use accu::policy::{Abm, AbmWeights, MaxDegree, Random};
use accu::theory::exact_marginal_gain;
use accu::{
    benefit_of_friend_set, benefit_of_request_set, run_attack, AccuInstance, AccuInstanceBuilder,
    AttackerView, GraphBuilder, NodeId, Observation, Policy, Realization, UserClass,
};
use proptest::prelude::*;

/// Strategy: a random small ACCU instance plus a sampled realization.
fn arb_instance_and_realization() -> impl Strategy<Value = (AccuInstance, Realization)> {
    (3usize..10)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..20);
            let classes = proptest::collection::vec(
                prop_oneof![
                    (0.0f64..=1.0).prop_map(UserClass::reckless),
                    (1u32..3).prop_map(UserClass::cautious),
                    ((0.0f64..=0.5), (0.5f64..=1.0), 1u32..3)
                        .prop_map(|(q1, q2, t)| UserClass::hesitant(q1, q2, t)),
                    ((0.0f64..=0.5), (0.0f64..=0.4))
                        .prop_map(|(b, s)| UserClass::mutual_linear(b, s)),
                ],
                n,
            );
            let seeds = any::<u64>();
            (Just(n), edges, classes, seeds)
        })
        .prop_map(|(n, pairs, classes, seed)| {
            let mut b = GraphBuilder::new(n);
            for (x, y) in pairs {
                if x != y {
                    b.add_edge(NodeId::new(x), NodeId::new(y)).unwrap();
                }
            }
            let g = b.build();
            let m = g.edge_count();
            let mut builder = AccuInstanceBuilder::new(g)
                .user_classes(classes)
                .edge_probabilities(vec![0.7; m]);
            for i in 0..n {
                // Distinct benefits with a strict gap.
                builder = builder.benefits(NodeId::from(i), 2.0 + i as f64, 1.0);
            }
            let inst = builder.build().unwrap();
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let real = Realization::sample(&inst, &mut rng);
            (inst, real)
        })
}

proptest! {
    #[test]
    fn cumulative_benefit_matches_recomputation((inst, real) in arb_instance_and_realization()) {
        let mut abm = Abm::new(AbmWeights::balanced());
        let out = run_attack(&inst, &real, &mut abm, inst.node_count());
        let recomputed = benefit_of_friend_set(&inst, &real, &out.friends);
        prop_assert!((recomputed - out.total_benefit).abs() < 1e-9);
        // Marginals telescope.
        let sum: f64 = out.trace.iter().map(|r| r.gain.total()).sum();
        prop_assert!((sum - out.total_benefit).abs() < 1e-9);
    }

    #[test]
    fn set_semantics_dominate_sequential_execution((inst, real) in arb_instance_and_realization()) {
        // For the same request multiset, the order-free set semantics
        // (cautious users resolved last / fixpoint) can only do better
        // than any sequential order a policy produced.
        let mut policy = MaxDegree::new();
        let out = run_attack(&inst, &real, &mut policy, inst.node_count());
        let targets: Vec<NodeId> = out.trace.iter().map(|r| r.target).collect();
        let set_outcome = benefit_of_request_set(&inst, &real, &targets);
        prop_assert!(set_outcome.benefit + 1e-9 >= out.total_benefit,
            "set {} < sequential {}", set_outcome.benefit, out.total_benefit);
        // And all sequentially-accepted users are accepted under set
        // semantics too (monotonicity of the closure).
        for f in &out.friends {
            prop_assert!(set_outcome.accepted.contains(f));
        }
    }

    #[test]
    fn observed_mutual_counts_match_ground_truth((inst, real) in arb_instance_and_realization()) {
        let mut policy = Random::new(3);
        let mut obs = Observation::for_instance(&inst);
        policy.reset(&AttackerView::new(&inst, &obs));
        for _ in 0..inst.node_count() {
            let Some(t) = policy.select(&AttackerView::new(&inst, &obs)) else { break };
            let accepted = real.accepts_at(&inst, t, obs.mutual_friends(t));
            if accepted {
                obs.record_acceptance(t, &inst, &real);
            } else {
                obs.record_rejection(t);
            }
        }
        // Ground truth: for every node, count friends adjacent via
        // realized edges.
        for v in inst.graph().nodes() {
            let truth = obs
                .friends()
                .iter()
                .filter(|&&f| {
                    f != v && inst.graph().edge_id(f, v).is_some_and(|e| real.edge_exists(e))
                })
                .count() as u32;
            prop_assert_eq!(obs.mutual_friends(v), truth);
        }
    }

    #[test]
    fn abm_potentials_are_nonnegative_and_cached_consistently(
        (inst, real) in arb_instance_and_realization()
    ) {
        let mut abm = Abm::new(AbmWeights::new(0.7, 0.3));
        let mut obs = Observation::for_instance(&inst);
        abm.reset(&AttackerView::new(&inst, &obs));
        for _ in 0..inst.node_count().min(5) {
            let view = AttackerView::new(&inst, &obs);
            let Some(t) = abm.select(&view) else { break };
            let p = abm.potential_of(&view, t);
            prop_assert!(p >= 0.0, "negative potential {}", p);
            // The selected node maximizes the potential among candidates.
            for c in view.candidates() {
                prop_assert!(abm.potential_of(&view, c) <= p + 1e-9,
                    "candidate {} beats selection {}", c, t);
            }
            let accepted = real.accepts_at(&inst, t, obs.mutual_friends(t));
            let revealed = if accepted {
                obs.record_acceptance(t, &inst, &real)
            } else {
                obs.record_rejection(t);
                Vec::new()
            };
            abm.observe(&AttackerView::new(&inst, &obs), t, accepted, &revealed);
        }
    }

    #[test]
    fn instance_serialization_round_trips((inst, _) in arb_instance_and_realization()) {
        use accu::core::io::{read_instance, write_instance};
        let mut buf = Vec::new();
        write_instance(&inst, &mut buf).unwrap();
        let back = read_instance(&buf[..]).unwrap();
        prop_assert_eq!(back.node_count(), inst.node_count());
        prop_assert_eq!(back.graph().edges(), inst.graph().edges());
        for i in 0..inst.graph().edge_count() {
            let e = accu::EdgeId::from(i);
            prop_assert_eq!(back.edge_probability(e), inst.edge_probability(e));
        }
        for v in inst.graph().nodes() {
            prop_assert_eq!(back.user_class(v), inst.user_class(v));
            prop_assert_eq!(back.benefits().friend(v), inst.benefits().friend(v));
            prop_assert_eq!(
                back.benefits().friend_of_friend(v),
                inst.benefits().friend_of_friend(v)
            );
        }
    }

    #[test]
    fn strong_adaptive_monotonicity_of_marginals(seed in 0u64..40) {
        // Δ(u|ω) ≥ 0 for every u and reachable ω: befriending more never
        // hurts (f is monotone).
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (1, 2), (2, 3), (3, 0)]).unwrap();
        let inst = AccuInstanceBuilder::new(g)
            .uniform_edge_probability(0.5)
            .user_classes(vec![
                UserClass::reckless(0.5),
                UserClass::reckless(1.0),
                UserClass::cautious(1),
                UserClass::reckless(0.3),
            ])
            .benefits(NodeId::new(2), 9.0, 1.0)
            .build()
            .unwrap();
        let real = Realization::sample(&inst, &mut rng);
        let mut obs = Observation::for_instance(&inst);
        // Request nodes 0 and 1 in some realized order.
        for t in [NodeId::new(0), NodeId::new(1)] {
            let accepted = real.accepts_at(&inst, t, obs.mutual_friends(t));
            if accepted {
                obs.record_acceptance(t, &inst, &real);
            } else {
                obs.record_rejection(t);
            }
        }
        for u in [NodeId::new(2), NodeId::new(3)] {
            let d = exact_marginal_gain(&inst, &obs, u).unwrap();
            prop_assert!(d >= -1e-12, "Δ({}|ω) = {} negative", u, d);
        }
    }
}
