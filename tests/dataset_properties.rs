//! Property-based tests for the dataset layer: every generated instance
//! must satisfy the paper's §IV-A protocol invariants regardless of
//! scale, seed or parameter choices.

use accu::datasets::{apply_protocol, select_cautious_users, DatasetSpec, ProtocolConfig};
use accu::graph::generators::barabasi_albert;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn protocol_invariants_hold(
        seed in 0u64..1_000,
        cautious_count in 1usize..15,
        threshold_fraction in 0.05f64..0.95,
        cautious_benefit in 5.0f64..100.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = barabasi_albert(300, 6, &mut rng).unwrap();
        let cfg = ProtocolConfig {
            cautious_count,
            degree_band: (6, 60),
            threshold_fraction,
            cautious_friend_benefit: cautious_benefit,
            ..ProtocolConfig::default()
        };
        let inst = apply_protocol(graph, &cfg, &mut rng).unwrap();

        // Cautious users: within the requested count, in-band degrees,
        // pairwise non-adjacent, thresholds within [1, degree].
        prop_assert!(inst.cautious_users().len() <= cautious_count);
        for &v in inst.cautious_users() {
            let d = inst.graph().degree(v);
            prop_assert!((6..=60).contains(&d));
            let theta = inst.threshold(v).unwrap() as usize;
            prop_assert!(theta >= 1 && theta <= d, "θ={theta} degree={d}");
            prop_assert_eq!(inst.benefits().friend(v), cautious_benefit);
        }
        for (i, &a) in inst.cautious_users().iter().enumerate() {
            for &b in &inst.cautious_users()[i + 1..] {
                prop_assert!(!inst.graph().has_edge(a, b));
            }
        }
        // All probabilities are in [0, 1); benefits follow the protocol.
        for v in inst.graph().nodes() {
            if let Some(q) = inst.acceptance_probability(v) {
                prop_assert!((0.0..1.0).contains(&q));
                prop_assert_eq!(inst.benefits().friend(v), 2.0);
            }
            prop_assert_eq!(inst.benefits().friend_of_friend(v), 1.0);
        }
        for i in 0..inst.graph().edge_count() {
            let p = inst.edge_probability(osn_graph::EdgeId::from(i));
            prop_assert!((0.0..1.0).contains(&p));
        }
        // The paper's working assumptions hold by construction.
        prop_assert!(inst.check_paper_assumptions().is_empty());
    }

    #[test]
    fn cautious_selection_determinism_and_independence(seed in 0u64..500) {
        let mut rng1 = StdRng::seed_from_u64(seed);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let graph = barabasi_albert(200, 5, &mut rng1).unwrap();
        let graph2 = barabasi_albert(200, 5, &mut rng2).unwrap();
        let a = select_cautious_users(&graph, (5, 50), 12, &mut rng1);
        let b = select_cautious_users(&graph2, (5, 50), 12, &mut rng2);
        prop_assert_eq!(a.clone(), b, "same seed must select identically");
        // Sorted output, no duplicates.
        prop_assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scaled_specs_generate_requested_sizes(factor in 0.005f64..0.2) {
        let spec = DatasetSpec::slashdot().scaled(factor);
        let mut rng = StdRng::seed_from_u64(3);
        let g = spec.generate(&mut rng).unwrap();
        prop_assert_eq!(g.node_count(), spec.node_count());
        // Density stays within a factor-2 band of the full dataset's
        // (23.5 average degree).
        let avg = g.average_degree();
        prop_assert!((10.0..=40.0).contains(&avg), "avg degree {}", avg);
    }
}
