//! End-to-end integration tests spanning all crates: dataset generation
//! → protocol application → policy execution → metric aggregation.

use accu::datasets::{apply_protocol, DatasetSpec, ProtocolConfig};
use accu::policy::{pure_greedy, Abm, AbmWeights, MaxDegree, PageRankPolicy, Random};
use accu::{expected_benefit, run_attack, AccuInstance, Policy, Realization, TraceAccumulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_instance(seed: u64) -> AccuInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = DatasetSpec::facebook()
        .scaled(0.1)
        .generate(&mut rng)
        .unwrap();
    apply_protocol(
        graph,
        &ProtocolConfig {
            cautious_count: 10,
            ..ProtocolConfig::default()
        },
        &mut rng,
    )
    .unwrap()
}

#[test]
fn full_pipeline_produces_valid_traces() {
    let instance = small_instance(1);
    let mut rng = StdRng::seed_from_u64(2);
    let realization = Realization::sample(&instance, &mut rng);
    let mut abm = Abm::new(AbmWeights::balanced());
    let k = 50;
    let outcome = run_attack(&instance, &realization, &mut abm, k);
    assert_eq!(outcome.requests_sent(), k);
    // No target repeats.
    let mut targets: Vec<_> = outcome.trace.iter().map(|r| r.target).collect();
    targets.sort_unstable();
    targets.dedup();
    assert_eq!(targets.len(), k, "a target was requested twice");
    // Cumulative benefit is non-decreasing and ends at the total.
    for w in outcome.trace.windows(2) {
        assert!(w[1].cumulative_benefit >= w[0].cumulative_benefit - 1e-9);
    }
    assert!(
        (outcome.trace.last().unwrap().cumulative_benefit - outcome.total_benefit).abs() < 1e-9
    );
    // Friends are exactly the accepted targets.
    let accepted = outcome.trace.iter().filter(|r| r.accepted).count();
    assert_eq!(accepted, outcome.friends.len());
}

#[test]
fn policies_rank_as_in_the_paper() {
    let instance = small_instance(3);
    let k = 80;
    let samples = 6;
    let mut means = Vec::new();
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(Abm::new(AbmWeights::balanced())),
        Box::new(PageRankPolicy::new()),
        Box::new(MaxDegree::new()),
        Box::new(Random::new(1)),
    ];
    for p in policies.iter_mut() {
        let mut rng = StdRng::seed_from_u64(10); // identical worlds for all
        let stats = expected_benefit(&instance, p.as_mut(), k, samples, &mut rng);
        means.push((p.name().to_string(), stats.mean));
    }
    let abm = means[0].1;
    let random = means[3].1;
    assert!(abm > random, "ABM {abm} must beat Random {random}");
    // ABM must be at the top of the lineup.
    assert!(
        means.iter().all(|(_, m)| *m <= abm + 1e-9),
        "ABM must lead: {means:?}"
    );
}

#[test]
fn balanced_abm_beats_pure_greedy_on_cautious_heavy_network() {
    // High-value cautious users make the indirect term matter.
    let mut rng = StdRng::seed_from_u64(8);
    let graph = DatasetSpec::facebook()
        .scaled(0.1)
        .generate(&mut rng)
        .unwrap();
    let instance = apply_protocol(
        graph,
        &ProtocolConfig {
            cautious_count: 30,
            cautious_friend_benefit: 200.0,
            threshold_fraction: 0.2,
            ..ProtocolConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let k = 120;
    let samples = 6;
    let mut abm = Abm::new(AbmWeights::balanced());
    let mut greedy = pure_greedy();
    let mut rng_a = StdRng::seed_from_u64(77);
    let mut rng_g = StdRng::seed_from_u64(77);
    let abm_mean = expected_benefit(&instance, &mut abm, k, samples, &mut rng_a).mean;
    let greedy_mean = expected_benefit(&instance, &mut greedy, k, samples, &mut rng_g).mean;
    assert!(
        abm_mean > greedy_mean,
        "balanced ABM ({abm_mean}) should beat pure greedy ({greedy_mean}) here"
    );
}

#[test]
fn accumulator_statistics_are_coherent() {
    let instance = small_instance(4);
    let mut rng = StdRng::seed_from_u64(5);
    let k = 40;
    let mut acc = TraceAccumulator::new(k);
    let mut abm = Abm::new(AbmWeights::balanced());
    for _ in 0..5 {
        let realization = Realization::sample(&instance, &mut rng);
        acc.add(&run_attack(&instance, &realization, &mut abm, k));
    }
    assert_eq!(acc.runs(), 5);
    let curve = acc.mean_cumulative_benefit();
    assert_eq!(curve.len(), k);
    // The curve's final point equals the mean total benefit.
    assert!((curve[k - 1] - acc.mean_total_benefit()).abs() < 1e-9);
    // Marginal series sum (cautious + reckless) telescopes to the total.
    let marginal_sum: f64 = acc
        .mean_marginal_from_cautious()
        .iter()
        .zip(acc.mean_marginal_from_reckless())
        .map(|(c, r)| c + r)
        .sum();
    assert!((marginal_sum - acc.mean_total_benefit()).abs() < 1e-6);
    // Fractions are probabilities.
    assert!(acc
        .cautious_request_fraction()
        .iter()
        .all(|f| (0.0..=1.0).contains(f)));
}

#[test]
fn cautious_users_never_accept_below_threshold() {
    let instance = small_instance(6);
    let mut rng = StdRng::seed_from_u64(7);
    let realization = Realization::sample(&instance, &mut rng);
    let mut md = MaxDegree::new();
    let outcome = run_attack(&instance, &realization, &mut md, 200);
    // Replay the trace: every accepted cautious user must have had at
    // least θ mutual friends among the *previously accepted* users.
    let mut friends: Vec<accu::NodeId> = Vec::new();
    for r in &outcome.trace {
        if r.cautious {
            let theta = instance.threshold(r.target).unwrap();
            let mutual = friends
                .iter()
                .filter(|&&f| {
                    instance
                        .graph()
                        .edge_id(f, r.target)
                        .is_some_and(|e| realization.edge_exists(e))
                })
                .count() as u32;
            assert_eq!(
                r.accepted,
                mutual >= theta,
                "cautious acceptance must match the threshold rule"
            );
        }
        if r.accepted {
            friends.push(r.target);
        }
    }
}

#[test]
fn deterministic_replays_are_identical() {
    let instance = small_instance(9);
    let mut rng1 = StdRng::seed_from_u64(11);
    let mut rng2 = StdRng::seed_from_u64(11);
    let r1 = Realization::sample(&instance, &mut rng1);
    let r2 = Realization::sample(&instance, &mut rng2);
    let mut abm1 = Abm::new(AbmWeights::balanced());
    let mut abm2 = Abm::new(AbmWeights::balanced());
    let o1 = run_attack(&instance, &r1, &mut abm1, 60);
    let o2 = run_attack(&instance, &r2, &mut abm2, 60);
    assert_eq!(o1, o2);
}
