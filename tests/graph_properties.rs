//! Property-based tests for the graph substrate.

use std::collections::HashSet;

use osn_graph::algo::{
    bfs_distances, common_neighbors, connected_components, degree_histogram,
    global_clustering_coefficient, mutual_friend_count, pagerank, triangle_count, PageRankConfig,
};
use osn_graph::generators::{
    barabasi_albert, erdos_renyi_gnm, erdos_renyi_gnp, powerlaw_configuration, watts_strogatz,
};
use osn_graph::{Edge, Graph, GraphBuilder, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random simple graph as (node count, edge pairs).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..60).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (x, y) in pairs {
                if x != y {
                    b.add_edge(NodeId::new(x), NodeId::new(y)).unwrap();
                }
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted(g in arb_graph()) {
        for v in g.nodes() {
            let neigh = g.neighbors(v);
            prop_assert!(neigh.windows(2).all(|w| w[0] < w[1]), "row must be strictly sorted");
            for &w in neigh {
                prop_assert!(g.neighbors(w).contains(&v), "symmetry violated");
                prop_assert!(g.has_edge(v, w) && g.has_edge(w, v));
            }
        }
    }

    #[test]
    fn edge_ids_are_a_bijection(g in arb_graph()) {
        let mut seen = HashSet::new();
        for e in g.edges() {
            let id = g.edge_id(e.lo(), e.hi()).unwrap();
            prop_assert!(seen.insert(id), "duplicate edge id");
            prop_assert_eq!(g.edge(id), *e);
        }
        prop_assert_eq!(seen.len(), g.edge_count());
    }

    #[test]
    fn mutual_friends_match_naive_intersection(g in arb_graph()) {
        for a in g.nodes().take(6) {
            for b in g.nodes().take(6) {
                let na: HashSet<NodeId> = g.neighbors(a).iter().copied().collect();
                let nb: HashSet<NodeId> = g.neighbors(b).iter().copied().collect();
                let expected = na.intersection(&nb).count();
                prop_assert_eq!(mutual_friend_count(&g, a, b), expected);
                prop_assert_eq!(common_neighbors(&g, a, b).len(), expected);
            }
        }
    }

    #[test]
    fn bfs_distances_respect_edges(g in arb_graph()) {
        let src = NodeId::new(0);
        let d = bfs_distances(&g, src);
        prop_assert_eq!(d[0], 0);
        for e in g.edges() {
            let (a, b) = (d[e.lo().index()], d[e.hi().index()]);
            if a != u32::MAX && b != u32::MAX {
                prop_assert!(a.abs_diff(b) <= 1, "adjacent distances differ by more than 1");
            } else {
                prop_assert_eq!(a, b, "one endpoint reachable, the other not");
            }
        }
    }

    #[test]
    fn components_partition_the_nodes(g in arb_graph()) {
        let cc = connected_components(&g);
        prop_assert_eq!(cc.sizes().iter().sum::<usize>(), g.node_count());
        for e in g.edges() {
            prop_assert_eq!(cc.label(e.lo()), cc.label(e.hi()));
        }
    }

    #[test]
    fn histogram_counts_nodes(g in arb_graph()) {
        let hist = degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), g.node_count());
    }

    #[test]
    fn pagerank_is_a_distribution(g in arb_graph()) {
        let pr = pagerank(&g, &PageRankConfig::new());
        let sum: f64 = pr.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {}", sum);
        prop_assert!(pr.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn clustering_is_within_unit_interval(g in arb_graph()) {
        let c = global_clustering_coefficient(&g);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
        let _ = triangle_count(&g);
    }

    #[test]
    fn generators_produce_simple_graphs(seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graphs = vec![
            erdos_renyi_gnp(40, 0.1, &mut rng).unwrap(),
            erdos_renyi_gnm(40, 60, &mut rng).unwrap(),
            barabasi_albert(40, 3, &mut rng).unwrap(),
            watts_strogatz(40, 4, 0.3, &mut rng).unwrap(),
            powerlaw_configuration(40, 2.5, 1, 10, &mut rng).unwrap(),
        ];
        for g in graphs {
            // Simple: no self-loops, no duplicate edges.
            let mut seen = HashSet::new();
            for e in g.edges() {
                prop_assert!(!e.is_loop());
                prop_assert!(seen.insert(Edge::new(e.lo(), e.hi())));
            }
        }
    }

    #[test]
    fn io_round_trip(g in arb_graph()) {
        let mut buf = Vec::new();
        osn_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let back = osn_graph::io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(back.graph.edge_count(), g.edge_count());
        // Round-tripped edges match modulo the dense relabeling (labels
        // are original ids, first-seen order).
        for e in back.graph.edges() {
            let a = back.labels[e.lo().index()] as u32;
            let b = back.labels[e.hi().index()] as u32;
            prop_assert!(g.has_edge(NodeId::new(a), NodeId::new(b)));
        }
    }
}
