//! End-to-end tests of the generalized two-probability ("hesitant")
//! cautious model (paper §III-B) across the full stack.

use accu::core::theory::{
    adaptive_submodular_ratio, curvature_ratio, enumerate_realizations, optimal_adaptive_benefit,
    two_probability_delta_of,
};
use accu::policy::{pure_greedy, Abm, AbmWeights};
use accu::{
    expected_benefit, run_attack, AccuInstance, AccuInstanceBuilder, AttackerView, GraphBuilder,
    NodeId, Observation, Realization, UserClass,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Star: hub 0 (reckless, q=1), leaves 1-2 reckless, leaf 3 hesitant.
fn star_with_hesitant(q1: f64, q2: f64) -> AccuInstance {
    let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3)]).unwrap();
    AccuInstanceBuilder::new(g)
        .user_class(NodeId::new(3), UserClass::hesitant(q1, q2, 1))
        .benefits(NodeId::new(3), 20.0, 1.0)
        .build()
        .unwrap()
}

#[test]
fn hesitant_below_threshold_acceptance_is_possible() {
    // With q1 = 1 the hesitant user accepts even as a stranger.
    let inst = star_with_hesitant(1.0, 1.0);
    let real =
        Realization::from_parts_full(&inst, vec![true; 3], vec![true; 4], vec![true; 4]).unwrap();
    struct First;
    impl accu::Policy for First {
        fn name(&self) -> &str {
            "First"
        }
        fn reset(&mut self, _: &AttackerView<'_>) {}
        fn select(&mut self, view: &AttackerView<'_>) -> Option<NodeId> {
            view.candidates().max_by_key(|v| v.index()) // node 3 first
        }
    }
    let out = run_attack(&inst, &real, &mut First, 1);
    assert!(
        out.trace[0].accepted,
        "q1 = 1 hesitant user must accept a stranger"
    );
    assert_eq!(out.cautious_friends, 1);
}

#[test]
fn acceptance_belief_reflects_the_two_probabilities() {
    let inst = star_with_hesitant(0.25, 0.75);
    let mut obs = Observation::for_instance(&inst);
    {
        let view = AttackerView::new(&inst, &obs);
        assert_eq!(view.acceptance_belief(NodeId::new(3)), 0.25);
    }
    // Befriend the hub; leaf 3 reaches its threshold of 1.
    let real = Realization::from_parts(&inst, vec![true; 3], vec![true; 4]).unwrap();
    obs.record_acceptance(NodeId::new(0), &inst, &real);
    let view = AttackerView::new(&inst, &obs);
    assert_eq!(view.acceptance_belief(NodeId::new(3)), 0.75);
}

#[test]
fn abm_scores_hesitant_users_by_current_belief() {
    let inst = star_with_hesitant(0.25, 0.75);
    let obs = Observation::for_instance(&inst);
    let view = AttackerView::new(&inst, &obs);
    let abm = Abm::new(AbmWeights::new(1.0, 0.0));
    // P_D(3) = B_f(3) + B_fof(0) = 21; potential = q1 · 21.
    let p = abm.potential_of(&view, NodeId::new(3));
    assert!((p - 0.25 * 21.0).abs() < 1e-9, "p = {p}");
}

#[test]
fn monte_carlo_matches_analytic_single_user() {
    // One isolated hesitant user with θ=1: it can never reach the
    // threshold, so acceptance is always the q1 outcome.
    let g = GraphBuilder::new(1).build();
    let inst = AccuInstanceBuilder::new(g)
        .user_class(NodeId::new(0), UserClass::hesitant(0.3, 0.9, 1))
        .benefits(NodeId::new(0), 10.0, 0.0)
        .build()
        .unwrap();
    let mut greedy = pure_greedy();
    let mut rng = StdRng::seed_from_u64(3);
    let stats = expected_benefit(&inst, &mut greedy, 1, 20_000, &mut rng);
    assert!(
        (stats.mean - 3.0).abs() < 4.0 * stats.std_error.max(1e-3),
        "mean {} vs analytic 3.0",
        stats.mean
    );
}

#[test]
fn enumeration_is_a_probability_distribution_with_hesitant_users() {
    let inst = star_with_hesitant(0.2, 0.7);
    let ens = enumerate_realizations(&inst).unwrap();
    let total: f64 = ens.iter().map(|(_, p)| p).sum();
    assert!((total - 1.0).abs() < 1e-12, "total = {total}");
    // Hesitant user contributes three patterns → ensemble size 3 here
    // (all other variables are certain).
    assert_eq!(ens.len(), 3);
    for (real, p) in &ens {
        assert!(*p > 0.0);
        // Coupling: accepting below the threshold implies accepting at it.
        assert!(
            !real.accepts_at(&inst, NodeId::new(3), 0) || real.accepts_at(&inst, NodeId::new(3), 1)
        );
    }
}

#[test]
fn positive_q1_restores_a_finite_curvature_guarantee() {
    let det = star_with_hesitant(0.0, 1.0);
    assert_eq!(two_probability_delta_of(&det), None);
    let soft = star_with_hesitant(0.1, 1.0);
    let delta = two_probability_delta_of(&soft).expect("finite");
    assert_eq!(delta, 10.0);
    assert!((curvature_ratio(delta, 20) - 0.095).abs() < 5e-4);
}

#[test]
fn theorem1_still_holds_with_hesitant_users() {
    // The adaptive submodular ratio and Theorem 1 are model-agnostic:
    // verify greedy ≥ (1 − e^{−λ})·OPT on a hesitant instance.
    let inst = star_with_hesitant(0.5, 1.0);
    let lambda = adaptive_submodular_ratio(&inst).unwrap();
    assert!(lambda > 0.0);
    for k in 1..=3usize {
        let opt = optimal_adaptive_benefit(&inst, k).unwrap();
        let greedy: f64 = enumerate_realizations(&inst)
            .unwrap()
            .iter()
            .map(|(real, prob)| {
                let mut g = pure_greedy();
                prob * run_attack(&inst, real, &mut g, k).total_benefit
            })
            .sum();
        let bound = (1.0 - (-lambda).exp()) * opt;
        assert!(
            greedy + 1e-9 >= bound,
            "k={k}: greedy {greedy} below bound {bound} (λ={lambda}, opt={opt})"
        );
    }
}

#[test]
fn softer_thresholds_never_reduce_expected_benefit() {
    // Raising q1 (weakly) increases the attacker's expected benefit
    // under the same policy — checked by Monte Carlo with shared seeds.
    let mut means = Vec::new();
    for &q1 in &[0.0, 0.3, 0.8] {
        let inst = star_with_hesitant(q1, 1.0);
        let mut abm = Abm::new(AbmWeights::balanced());
        let mut rng = StdRng::seed_from_u64(42);
        means.push(expected_benefit(&inst, &mut abm, 2, 3_000, &mut rng).mean);
    }
    assert!(means[0] <= means[1] + 0.1, "{means:?}");
    assert!(means[1] <= means[2] + 0.1, "{means:?}");
}
