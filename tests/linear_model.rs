//! End-to-end tests of the empirical linear acceptance model
//! (`q(u) = min(1, base + slope · mutual)`) — the probabilistic model of
//! the earlier crawling papers the ACCU paper contrasts with.

use accu::core::theory::{adaptive_submodular_ratio, enumerate_realizations};
use accu::policy::{pure_greedy, Abm, AbmWeights};
use accu::{
    expected_benefit, run_attack, AccuInstance, AccuInstanceBuilder, AttackerView, GraphBuilder,
    NodeId, Observation, Realization, UserClass,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Star: hub 0 plus leaves; leaf 3 uses the linear model.
fn star_with_linear(base: f64, slope: f64) -> AccuInstance {
    let g = GraphBuilder::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3)]).unwrap();
    AccuInstanceBuilder::new(g)
        .user_class(NodeId::new(3), UserClass::mutual_linear(base, slope))
        .benefits(NodeId::new(3), 20.0, 1.0)
        .build()
        .unwrap()
}

#[test]
fn linear_users_are_not_cautious_class() {
    let inst = star_with_linear(0.1, 0.4);
    assert!(!inst.is_cautious(NodeId::new(3)));
    assert!(inst.cautious_users().is_empty());
    assert_eq!(inst.threshold(NodeId::new(3)), None);
}

#[test]
fn acceptance_belief_rises_with_each_friend() {
    let inst = star_with_linear(0.1, 0.4);
    let real = Realization::from_parts(&inst, vec![true; 3], vec![true; 4]).unwrap();
    let mut obs = Observation::for_instance(&inst);
    {
        let view = AttackerView::new(&inst, &obs);
        assert!((view.acceptance_belief(NodeId::new(3)) - 0.1).abs() < 1e-12);
    }
    obs.record_acceptance(NodeId::new(0), &inst, &real);
    let view = AttackerView::new(&inst, &obs);
    assert!((view.acceptance_belief(NodeId::new(3)) - 0.5).abs() < 1e-12);
}

#[test]
fn enumeration_partitions_by_mutual_band() {
    // Leaf 3 has degree 1 → levels {0.1, 0.5} → 3 bands; everything else
    // certain.
    let inst = star_with_linear(0.1, 0.4);
    let ens = enumerate_realizations(&inst).unwrap();
    assert_eq!(ens.len(), 3);
    let total: f64 = ens.iter().map(|(_, p)| p).sum();
    assert!((total - 1.0).abs() < 1e-12);
    // Masses are the band widths: 0.1, 0.4, 0.5.
    let mut masses: Vec<f64> = ens.iter().map(|(_, p)| *p).collect();
    masses.sort_by(f64::total_cmp);
    assert!((masses[0] - 0.1).abs() < 1e-12);
    assert!((masses[1] - 0.4).abs() < 1e-12);
    assert!((masses[2] - 0.5).abs() < 1e-12);
}

#[test]
fn monte_carlo_matches_analytic_two_step() {
    // Request hub (q=1) then leaf 3: leaf has 1 mutual friend, so it
    // accepts with 0.1 + 0.4 = 0.5.
    // E[benefit] = B_f(0)=2 + 2·B_fof (leaves 1,2) + B_fof(3)=1
    //              + 0.5·(B_f(3) − B_fof(3)) = 5 + 0.5·19 = 14.5.
    struct HubThenLeaf;
    impl accu::Policy for HubThenLeaf {
        fn name(&self) -> &str {
            "HubThenLeaf"
        }
        fn reset(&mut self, _: &AttackerView<'_>) {}
        fn select(&mut self, view: &AttackerView<'_>) -> Option<NodeId> {
            [NodeId::new(0), NodeId::new(3)]
                .into_iter()
                .find(|&u| !view.observation().was_requested(u))
        }
    }
    let inst = star_with_linear(0.1, 0.4);
    let mut rng = StdRng::seed_from_u64(5);
    let stats = expected_benefit(&inst, &mut HubThenLeaf, 2, 20_000, &mut rng);
    assert!(
        (stats.mean - 14.5).abs() < 4.0 * stats.std_error.max(1e-3),
        "mean {} vs analytic 14.5",
        stats.mean
    );
}

#[test]
fn linear_worst_case_lambda_matches_the_threshold_model() {
    // Instructive subtlety: λ is a *minimum over realizations*, and the
    // linear user's middle draw band ("reject at 0 mutual friends,
    // accept at 1") behaves exactly like a deterministic θ=1 cautious
    // user — so the worst-case adaptive submodular ratio is the same as
    // the threshold model's. The smoothing helps the *expected*
    // performance (see `greedy_value_monotone_in_slope`), not the
    // worst-case guarantee.
    let g = GraphBuilder::from_edges(3, [(0u32, 1u32), (0, 2)]).unwrap();
    let linear = AccuInstanceBuilder::new(g.clone())
        .user_class(NodeId::new(1), UserClass::mutual_linear(0.5, 0.5))
        .benefits(NodeId::new(1), 10.0, 1.0)
        .build()
        .unwrap();
    let cautious = AccuInstanceBuilder::new(g)
        .user_class(NodeId::new(1), UserClass::cautious(1))
        .benefits(NodeId::new(1), 10.0, 1.0)
        .build()
        .unwrap();
    let lambda_linear = adaptive_submodular_ratio(&linear).unwrap();
    let lambda_cautious = adaptive_submodular_ratio(&cautious).unwrap();
    assert!(
        (lambda_linear - lambda_cautious).abs() < 1e-12,
        "linear λ {lambda_linear} vs threshold λ {lambda_cautious}"
    );
    assert!(
        lambda_linear < 1.0,
        "the threshold-like band still breaks submodularity"
    );
}

#[test]
fn abm_still_runs_and_collects_on_linear_instances() {
    let mut rng = StdRng::seed_from_u64(11);
    let g = osn_graph::generators::barabasi_albert(100, 4, &mut rng).unwrap();
    use rand::Rng;
    let mut builder = AccuInstanceBuilder::new(g);
    for i in 0..100usize {
        builder = builder.user_class(
            NodeId::from(i),
            UserClass::mutual_linear(rng.gen_range(0.05..0.3), 0.1),
        );
    }
    let inst = builder.build().unwrap();
    let real = Realization::sample(&inst, &mut rng);
    let mut abm = Abm::new(AbmWeights::balanced());
    let out = run_attack(&inst, &real, &mut abm, 40);
    assert_eq!(out.requests_sent(), 40);
    assert!(out.total_benefit > 0.0);
    // No threshold users → no "cautious" friends by definition.
    assert_eq!(out.cautious_friends, 0);
    // Acceptance rate should exceed the base rate thanks to rising q.
    let accepted = out.trace.iter().filter(|r| r.accepted).count();
    assert!(accepted > 5, "only {accepted} acceptances");
}

#[test]
fn greedy_value_monotone_in_slope() {
    // Steeper acceptance growth can only help the attacker.
    let mut means = Vec::new();
    for &slope in &[0.0, 0.2, 0.6] {
        let inst = star_with_linear(0.1, slope);
        let mut greedy = pure_greedy();
        let mut rng = StdRng::seed_from_u64(21);
        means.push(expected_benefit(&inst, &mut greedy, 3, 4_000, &mut rng).mean);
    }
    assert!(means[0] <= means[1] + 0.2, "{means:?}");
    assert!(means[1] <= means[2] + 0.2, "{means:?}");
}
