//! Randomized validation of the paper's theory on small instances:
//! Theorem 1, Observation 1, Corollary 1 and the Lemma 5 bound, checked
//! against exhaustive ground truth across many random instances.

use accu::policy::pure_greedy;
use accu::theory::{
    adaptive_submodular_ratio, enumerate_realizations, greedy_ratio, lemma5_bound,
    optimal_adaptive_benefit,
};
use accu::{run_attack, AccuInstance, AccuInstanceBuilder, GraphBuilder, NodeId, UserClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exact expected value of the (deterministic) greedy policy.
fn exact_greedy_value(inst: &AccuInstance, k: usize) -> f64 {
    enumerate_realizations(inst)
        .unwrap()
        .iter()
        .map(|(real, prob)| {
            let mut g = pure_greedy();
            prob * run_attack(inst, real, &mut g, k).total_benefit
        })
        .sum()
}

/// Random small instance: 5 nodes, a few probabilistic edges, one
/// cautious user with θ = 1 and a strict benefit gap everywhere.
fn random_instance(rng: &mut StdRng) -> AccuInstance {
    loop {
        let n = 5;
        let mut b = GraphBuilder::new(n);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if rng.gen_bool(0.4) {
                    b.add_edge(NodeId::new(i), NodeId::new(j)).unwrap();
                }
            }
        }
        let g = b.build();
        // Pick a cautious user with at least one neighbor.
        let Some(cautious) = g.nodes().find(|&v| g.degree(v) >= 1) else {
            continue;
        };
        let m = g.edge_count();
        let mut builder = AccuInstanceBuilder::new(g);
        // A couple of uncertain variables, the rest certain, to keep
        // enumeration tiny but non-trivial.
        let probs: Vec<f64> = (0..m)
            .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.5 })
            .collect();
        builder = builder.edge_probabilities(probs);
        for i in 0..n {
            let v = NodeId::from(i);
            if v == cautious {
                builder = builder.user_class(v, UserClass::cautious(1)).benefits(
                    v,
                    rng.gen_range(5.0..20.0),
                    1.0,
                );
            } else {
                let q = if rng.gen_bool(0.5) { 1.0 } else { 0.6 };
                builder = builder
                    .user_class(v, UserClass::reckless(q))
                    .benefits(v, 2.0, 1.0);
            }
        }
        return builder.build().unwrap();
    }
}

#[test]
fn theorem1_holds_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(2019);
    for trial in 0..15 {
        let inst = random_instance(&mut rng);
        assert!(inst.benefits().has_strict_gap());
        let lambda = adaptive_submodular_ratio(&inst).unwrap();
        assert!(
            lambda > 0.0,
            "Corollary 1: λ must be positive (trial {trial})"
        );
        for k in 1..=3usize {
            let opt = optimal_adaptive_benefit(&inst, k).unwrap();
            let greedy = exact_greedy_value(&inst, k);
            let bound = greedy_ratio(lambda) * opt;
            assert!(
                greedy + 1e-9 >= bound,
                "trial {trial}, k={k}: greedy {greedy} < bound {bound} (λ={lambda}, opt={opt})"
            );
            assert!(
                opt + 1e-9 >= greedy,
                "trial {trial}, k={k}: optimal {opt} < greedy {greedy}"
            );
        }
    }
}

#[test]
fn observation1_lambda_is_one_without_cautious_users() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..10 {
        let n = 5;
        let mut b = GraphBuilder::new(n);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if rng.gen_bool(0.4) {
                    b.add_edge(NodeId::new(i), NodeId::new(j)).unwrap();
                }
            }
        }
        let m = b.edge_count();
        let inst = AccuInstanceBuilder::new(b.build())
            .edge_probabilities(
                (0..m)
                    .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.5 })
                    .collect(),
            )
            .build()
            .unwrap();
        let lambda = adaptive_submodular_ratio(&inst).unwrap();
        assert!(
            (lambda - 1.0).abs() < 1e-9,
            "Observation 1: λ = 1 without cautious users, got {lambda}"
        );
    }
}

#[test]
fn lemma5_upper_bounds_lambda_with_zero_fof() {
    // Shared-friend configurations with B_fof ≡ 0 (where the bound is
    // exact per the paper's derivation).
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..10 {
        let r = rng.gen_range(1..=3usize); // number of cautious users
        let n = r + 1;
        let mut b = GraphBuilder::new(n);
        for i in 1..=r {
            b.add_edge(NodeId::new(0), NodeId::from(i)).unwrap();
        }
        let mut builder = AccuInstanceBuilder::new(b.build());
        builder = builder.benefits(NodeId::new(0), rng.gen_range(1.0..4.0), 0.0);
        let mut cautious = Vec::new();
        for i in 1..=r {
            let v = NodeId::from(i);
            cautious.push(v);
            builder = builder.user_class(v, UserClass::cautious(1)).benefits(
                v,
                rng.gen_range(5.0..20.0),
                0.0,
            );
        }
        let inst = builder.build().unwrap();
        let bound = lemma5_bound(inst.graph(), inst.benefits(), NodeId::new(0), &cautious);
        let lambda = adaptive_submodular_ratio(&inst).unwrap();
        assert!(
            lambda <= bound + 1e-9,
            "Lemma 5 violated: λ={lambda} > bound={bound} (r={r})"
        );
    }
}

#[test]
fn pure_greedy_potential_equals_exact_marginal_gain() {
    // With w_D = 1, w_I = 0 the ABM potential is not an approximation:
    // since every friend's incident edges are revealed on acceptance,
    // friend-of-friend status is deterministic given ω, and the potential
    // q(u)·P_D(u) equals Δ(u|ω) exactly. This ties Algorithm 1 to the
    // theory it is analyzed with.
    use accu::policy::Policy;
    use accu::theory::exact_marginal_gain;
    use accu::{resolve_acceptance, AttackerView, Observation};

    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..10 {
        let inst = random_instance(&mut rng);
        let real = {
            let mut r = StdRng::seed_from_u64(rng.gen());
            accu::Realization::sample(&inst, &mut r)
        };
        let mut obs = Observation::for_instance(&inst);
        let greedy = pure_greedy();
        // Walk a short random-ish episode, checking the identity at
        // every reachable observation.
        let mut order = accu::policy::MaxDegree::new();
        order.reset(&AttackerView::new(&inst, &obs));
        for _ in 0..3 {
            {
                let view = AttackerView::new(&inst, &obs);
                for u in view.candidates() {
                    let potential = greedy.potential_of(&view, u);
                    let exact = exact_marginal_gain(&inst, &obs, u).unwrap();
                    assert!(
                        (potential - exact).abs() < 1e-9,
                        "potential {potential} != Δ {exact} for {u}"
                    );
                }
            }
            let Some(t) = order.select(&AttackerView::new(&inst, &obs)) else {
                break;
            };
            if resolve_acceptance(&inst, &obs, &real, t) {
                obs.record_acceptance(t, &inst, &real);
            } else {
                obs.record_rejection(t);
            }
        }
    }
}

#[test]
fn greedy_ratio_is_monotone_in_lambda() {
    let mut prev = 0.0;
    for i in 0..=10 {
        let r = greedy_ratio(i as f64 / 10.0);
        assert!(r >= prev);
        assert!((0.0..1.0).contains(&r));
        prev = r;
    }
}
